//! Live-engine node joins: a real threaded cluster (OS-thread workers,
//! bounded mailboxes) grows by one node mid-stream, in serial-router and
//! router-pool mode, and every document's delivered union must still equal
//! the brute-force match set — documents before, inside, and after the
//! handover window alike. The pool-mode case keeps publishers running
//! *through* the join, pinning the headline property: the ingest plane is
//! only fenced for the commit, never for the partition copy.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_runtime::{Engine, OverflowPolicy, RuntimeConfig};
use move_types::{DocId, FilterId, MatchSemantics, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

fn schemes(cfg: &SystemConfig) -> Vec<Box<dyn Dissemination + Send>> {
    vec![
        Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    ]
}

fn tight_config(publishers: usize) -> RuntimeConfig {
    RuntimeConfig {
        mailbox_capacity: 4,
        command_capacity: 8,
        overflow: OverflowPolicy::Block,
        batch_size: 2,
        flush_interval: Duration::from_millis(1),
        publishers,
        ..RuntimeConfig::default()
    }
}

/// Serial router: publish half the stream, join a node synchronously,
/// publish the rest. Every document must match exactly (`publish_sync`
/// compares inline), and the report must account the join.
#[test]
fn serial_join_mid_stream_delivers_exactly() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(250, 80, 0x10B);
    let docs = random_docs(60, 100, 12, 0x10B ^ 0xD0C);

    for mut scheme in schemes(&cfg) {
        for f in &filters {
            scheme.register(f).expect("register");
        }
        let name = scheme.name();
        let nodes = scheme.cluster().len();
        let engine = Engine::start(scheme, tight_config(1)).expect("engine starts");
        let (before, after) = docs.split_at(docs.len() / 2);
        for d in before {
            let got = engine.publish_sync(d.clone());
            let want = brute_force(&filters, d, MatchSemantics::Boolean);
            assert_eq!(got, want, "{name}: doc {} wrong pre-join", d.id());
        }
        let outcome = engine.join_node(0).expect("join commits");
        assert_eq!(
            outcome.node,
            NodeId(nodes as u32),
            "{name}: joins append to the membership"
        );
        if name != "rs" {
            assert!(
                outcome.partitions_moved >= 1,
                "{name}: a join must re-home at least one partition"
            );
        }
        for d in after {
            let got = engine.publish_sync(d.clone());
            let want = brute_force(&filters, d, MatchSemantics::Boolean);
            assert_eq!(got, want, "{name}: doc {} wrong post-join", d.id());
        }
        let report = engine.shutdown().expect("clean shutdown");
        assert_eq!(report.joins, 1, "{name}: the join must be committed");
        assert_eq!(report.partitions_moved, outcome.partitions_moved);
        assert_eq!(report.tasks_lost, 0, "{name}: fault-free run");
        assert_eq!(
            report.nodes.len(),
            nodes + 1,
            "{name}: the joiner reports its own counters"
        );
    }
}

/// Router pool: four publishers keep the stream flowing while the control
/// thread stages, windows, and commits a join. The join call itself waits
/// for the handover window to fill with live traffic, so this test is the
/// threaded proof that publishing continues during the copy. Every
/// document's delivered union must equal brute force.
#[test]
fn pool_join_under_sustained_publish_delivers_exactly() {
    const WINDOW: u64 = 30;
    let cfg = SystemConfig::small_test();
    let filters = random_filters(250, 80, 0x90B);
    let docs = random_docs(240, 100, 12, 0x90B ^ 0xD0C);

    for mut scheme in schemes(&cfg) {
        for f in &filters {
            scheme.register(f).expect("register");
        }
        let name = scheme.name();
        let engine = Arc::new(Engine::start(scheme, tight_config(4)).expect("engine starts"));
        let deliveries = engine.deliveries();

        // A quarter of the stream lands before the join is even staged; the
        // publisher thread then keeps the stream alive — recycling the doc
        // list if it runs dry, which is delivery-idempotent (same unions) —
        // until the join commits, so the handover window is guaranteed to
        // fill with live traffic however the threads race.
        let (head, tail) = docs.split_at(docs.len() / 4);
        for d in head {
            engine.publish(d.clone());
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let feeder = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let tail = tail.to_vec();
            let all = docs.clone();
            std::thread::spawn(move || {
                for d in tail {
                    engine.publish(d.clone());
                }
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for d in &all {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        engine.publish(d.clone());
                    }
                }
            })
        };
        let outcome = engine.join_node(WINDOW).expect("join commits under load");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(
            outcome.handover_docs >= WINDOW,
            "{name}: the handover window must have seen live traffic"
        );
        feeder.join().expect("publisher thread");

        let engine = Arc::into_inner(engine).expect("sole engine handle");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(engine.shutdown());
        });
        let report = match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(result) => result.expect("clean shutdown"),
            Err(_) => panic!("{name}: shutdown exceeded 120s, deadlock suspected"),
        };
        assert_eq!(report.joins, 1, "{name}: the join must be committed");
        assert!(
            report.docs_published >= docs.len() as u64,
            "{name}: the whole stream (plus recycled keep-alive traffic) published"
        );
        assert_eq!(report.tasks_shed, 0, "{name}: Block never sheds");
        assert_eq!(report.tasks_lost, 0, "{name}: fault-free run");

        let mut delivered: BTreeMap<DocId, BTreeSet<FilterId>> = BTreeMap::new();
        for d in deliveries.try_iter() {
            delivered.entry(d.doc).or_default().extend(d.matched);
        }
        for d in &docs {
            let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
                .into_iter()
                .collect();
            let got = delivered.remove(&d.id()).unwrap_or_default();
            assert_eq!(got, want, "{name}: doc {} wrong across the join", d.id());
        }
        assert!(delivered.is_empty(), "{name}: deliveries for unknown docs");
    }
}
