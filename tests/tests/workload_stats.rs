//! The generated workloads must reproduce §VI-A's published statistics at a
//! moderate scale (coarser tolerances than the design-level checks, since
//! these are empirical measurements of finite traces).

use move_stats::Summary;
use move_workload::{
    DatasetReport, DocReport, DocumentGenerator, FilterGenerator, FilterReport, MsnSpec,
    RankCoupling, TrecSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn msn_like_trace_matches_published_statistics() {
    let spec = MsnSpec::scaled(20_000);
    let gen = FilterGenerator::new(&spec).expect("calibratable");
    let mut rng = StdRng::seed_from_u64(1);
    let filters = gen.trace(60_000, &mut rng);
    let report = FilterReport::measure(&filters, spec.vocabulary, spec.top_k);

    assert!(
        (report.mean_terms - 2.843).abs() < 0.05,
        "mean {}",
        report.mean_terms
    );
    assert!((report.cumulative_123[0] - 0.3133).abs() < 0.015);
    assert!((report.cumulative_123[1] - 0.6775).abs() < 0.015);
    assert!((report.cumulative_123[2] - 0.8531).abs() < 0.015);
    assert!(
        (report.top_k_occurrence_share - 0.437).abs() < 0.06,
        "head share {}",
        report.top_k_occurrence_share
    );
    // Fig. 4's plateau: no term's popularity far exceeds the 10⁻² ceiling.
    let pop = FilterReport::popularity(&filters, spec.vocabulary);
    let max_pop = pop.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max_pop < 0.02,
        "max popularity {max_pop} above the Fig. 4 plateau"
    );
}

#[test]
fn wt_like_corpus_matches_published_statistics() {
    let spec = TrecSpec::wt().scaled(8_000);
    let gen = DocumentGenerator::new(&spec, RankCoupling::identity(8_000)).expect("calibratable");
    let mut rng = StdRng::seed_from_u64(2);
    let docs = gen.corpus(5_000, &mut rng);
    let report = DocReport::measure(&docs, 8_000);
    assert!(
        (report.mean_terms_per_doc - spec.mean_terms_per_doc).abs() / spec.mean_terms_per_doc
            < 0.15,
        "mean terms {}",
        report.mean_terms_per_doc
    );
    assert!(
        (report.frequency_entropy_nats - spec.frequency_entropy_nats).abs() < 0.3,
        "entropy {}",
        report.frequency_entropy_nats
    );
    // No term saturates: the max_rate cap holds empirically.
    let df = DocReport::doc_frequency(&docs, 8_000);
    let max_rate = *df.iter().max().unwrap() as f64 / docs.len() as f64;
    assert!(max_rate < spec.max_rate + 0.1, "max df rate {max_rate}");
}

#[test]
fn ap_is_flatter_and_larger_than_wt() {
    let ap_spec = TrecSpec::ap().scaled(8_000);
    let wt_spec = TrecSpec::wt().scaled(8_000);
    let mut rng = StdRng::seed_from_u64(3);
    let ap = DocumentGenerator::new(&ap_spec, RankCoupling::identity(8_000))
        .expect("calibratable")
        .corpus(500, &mut rng);
    let wt = DocumentGenerator::new(&wt_spec, RankCoupling::identity(8_000))
        .expect("calibratable")
        .corpus(500, &mut rng);
    let mean = |docs: &[move_types::Document]| {
        docs.iter().map(|d| d.distinct_terms() as f64).sum::<f64>() / docs.len() as f64
    };
    assert!(mean(&ap) > 5.0 * mean(&wt), "AP docs dwarf WT docs");
    let ap_rep = DocReport::measure(&ap, 8_000);
    let wt_rep = DocReport::measure(&wt, 8_000);
    assert!(
        ap_rep.frequency_entropy_nats > wt_rep.frequency_entropy_nats,
        "WT must be the skewer trace"
    );
}

#[test]
fn overlap_statistic_holds_in_combination() {
    let vocab = 10_000;
    let msn = MsnSpec::scaled(vocab);
    let trec = TrecSpec::wt().scaled(4_000);
    let mut rng = StdRng::seed_from_u64(4);
    let coupling =
        RankCoupling::with_overlap(4_000, vocab, trec.top_k, trec.top_k_overlap, &mut rng)
            .expect("valid coupling");
    let fgen = FilterGenerator::new(&msn).expect("calibratable");
    let dgen = DocumentGenerator::new(&trec, coupling).expect("calibratable");
    let filters = fgen.trace(80_000, &mut rng);
    let docs = dgen.corpus(6_000, &mut rng);
    let report = DatasetReport::measure(&filters, &docs, vocab, trec.top_k);
    assert!(
        (report.top_k_overlap - trec.top_k_overlap).abs() < 0.12,
        "measured overlap {} vs target {}",
        report.top_k_overlap,
        trec.top_k_overlap
    );
}

#[test]
fn document_lengths_disperse_with_lognormal_multiplier() {
    let spec = TrecSpec::wt().scaled(6_000);
    let gen = DocumentGenerator::new(&spec, RankCoupling::identity(6_000)).expect("calibratable");
    let mut rng = StdRng::seed_from_u64(5);
    let docs = gen.corpus(3_000, &mut rng);
    let lengths: Vec<f64> = docs.iter().map(|d| d.distinct_terms() as f64).collect();
    let s = Summary::of(&lengths);
    // σ = 0.6 log-normal ⇒ coefficient of variation well above a
    // Poisson-thin stream's.
    assert!(s.cv > 0.3, "length cv {} too tight", s.cv);
    assert!(
        s.max > 3.0 * s.mean.min(s.max),
        "no long documents generated"
    );
}
