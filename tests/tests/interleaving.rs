//! Schedule-permutation sweep over the live engine's router/worker
//! protocol: for every scheme, policy and seed, one deterministic
//! interleaving of router commands and worker message handling is
//! explored end to end (registration racing publishes, shutdown racing a
//! half-drained cluster, allocation refreshes landing mid-stream, and
//! shed-vs-block decisions at full mailboxes). Across **180 seeded
//! fault-free schedules** the run must terminate (no deadlock, enforced
//! inside the harness), never panic, and never lose a non-shed document.
//!
//! A further **102 fault-injected schedules** crash workers mid-stream
//! (crash-during-publish, crash-during-drain, crash racing a registration)
//! under both supervision stances: with restarts the oracle is documented
//! at-most-once (sound deliveries; exact for every document that lost no
//! task to a crash drain; `dispatched == executed + lost` balances
//! exactly), and under replica failover — including the
//! failover-then-the-node-returns transition — deliveries stay sound and
//! documents published after the cluster heals are delivered exactly.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_runtime::interleave::{run_schedule, InterleaveConfig, InterleaveReport, ScriptOp};
use move_runtime::{OverflowPolicy, SupervisionPolicy};
use move_types::{DocId, Filter, FilterId, MatchSemantics, NodeId, TermId};
use std::collections::{BTreeMap, BTreeSet};

enum Kind {
    Move,
    Il,
    Rs,
}

fn build(kind: &Kind, cfg: &SystemConfig) -> Box<dyn Dissemination + Send> {
    match kind {
        Kind::Move => Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        Kind::Il => Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        Kind::Rs => Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    }
}

/// Interleaves live registrations among the publishes: every third script
/// slot registers the next live filter, so documents race registrations
/// through the router's FIFO.
fn interleaved_script(live: &[Filter], docs: &[move_types::Document]) -> Vec<ScriptOp> {
    let mut script = Vec::with_capacity(live.len() + docs.len());
    let mut live_iter = live.iter();
    for (i, d) in docs.iter().enumerate() {
        if i % 3 == 0 {
            if let Some(f) = live_iter.next() {
                script.push(ScriptOp::Register(f.clone()));
            }
        }
        script.push(ScriptOp::Publish(d.clone()));
    }
    for f in live_iter {
        script.push(ScriptOp::Register(f.clone()));
    }
    script
}

/// The oracle: each published document must be delivered to exactly the
/// brute-force match set over the filters registered *before* it in the
/// script (plus the pre-registered ones) — the router channel is FIFO, so
/// registration order is part of the contract, whatever the schedule.
fn expected_sets(pre: &[Filter], script: &[ScriptOp]) -> BTreeMap<DocId, BTreeSet<FilterId>> {
    let mut known: Vec<Filter> = pre.to_vec();
    let mut out = BTreeMap::new();
    for op in script {
        match op {
            ScriptOp::Register(f) => known.push(f.clone()),
            ScriptOp::Unregister(id) => known.retain(|f| f.id() != *id),
            ScriptOp::Publish(d) => {
                let want: BTreeSet<FilterId> = brute_force(&known, d, MatchSemantics::Boolean)
                    .into_iter()
                    .collect();
                out.insert(d.id(), want);
            }
            // Faults change who answers, never what the answer is. (PinView
            // schedules use their own bracketing oracle — see the
            // `stale_snapshot_*` tests — so this exact-set oracle treats it
            // as a no-op and must not be combined with mid-pin registers.)
            // Joins likewise only move partitions between nodes: the
            // delivery set of every document is unchanged by a staged join,
            // its handover window, or its commit. A crashed match lane only
            // changes which lane executes the remaining units.
            ScriptOp::Crash(_)
            | ScriptOp::Restart(_)
            | ScriptOp::Delay { .. }
            | ScriptOp::PinView { .. }
            | ScriptOp::Join
            | ScriptOp::CommitJoin
            | ScriptOp::CrashLane { .. } => {}
        }
    }
    out
}

/// The base fault-mode oracle: every delivery is sound (a subset of the
/// brute-force match set — **zero false deliveries**, the acceptance
/// criterion), and the books balance step-for-step: the sim crashes a
/// worker and drops its mailbox in one atomic scheduler step, so
/// `dispatched == executed + lost` holds with equality, not approximately.
fn assert_sound(
    label: &str,
    expected: &BTreeMap<DocId, BTreeSet<FilterId>>,
    out: &InterleaveReport,
) {
    for (doc, got) in &out.delivered {
        let want = expected.get(doc).cloned().unwrap_or_default();
        assert!(
            got.is_subset(&want),
            "{label}: false delivery for doc {doc}: {got:?} vs {want:?}"
        );
    }
    let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
    let lost_in_queues: u64 = out.report.nodes.iter().map(|n| n.tasks_lost).sum();
    assert_eq!(
        out.report.tasks_dispatched,
        executed + lost_in_queues,
        "{label}: dispatched tasks must execute or be counted lost"
    );
}

/// The restart-mode delivery oracle: [`assert_sound`] plus exactness for
/// every document that lost no task to a crash drain or a shed — under
/// restart supervision routing never changes, so the *only* permitted gap
/// is a task that died inside a crashed worker's queue (documented
/// at-most-once), and the report must name those documents.
fn assert_at_most_once(
    label: &str,
    expected: &BTreeMap<DocId, BTreeSet<FilterId>>,
    out: &InterleaveReport,
) {
    assert_sound(label, expected, out);
    for (doc, want) in expected {
        if out.shed_docs.contains(doc) || out.lost_docs.contains(doc) {
            continue; // the documented at-most-once allowance
        }
        let got = out.delivered.get(doc).cloned().unwrap_or_default();
        assert_eq!(&got, want, "{label}: unaffected doc {doc} incomplete");
    }
}

/// 90 schedules (3 schemes × 30 seeds) under the blocking policy: complete
/// delivery for every document, nothing shed, at varying (tiny) virtual
/// mailbox capacities.
#[test]
fn block_policy_delivers_exactly_under_all_schedules() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &script);

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        for seed in 0..30u64 {
            let mut scheme = build(&kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 1 + (seed as usize % 3),
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
                ..InterleaveConfig::default()
            };
            let out = run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(out.shed_docs.is_empty(), "{name} shed under Block");
            assert_eq!(out.report.tasks_shed, 0, "{name} counted sheds under Block");
            assert_eq!(out.report.docs_published, docs.len() as u64);
            for d in &docs {
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                let want = &expected[&d.id()];
                assert_eq!(
                    &got,
                    want,
                    "{name} seed {seed}: doc {} delivered wrongly",
                    d.id()
                );
            }
        }
    }
}

/// 60 schedules (3 schemes × 20 seeds) under the shedding policy at
/// capacity 1: every delivery is sound, documents with no shed batch are
/// complete, and the dispatched/executed books balance.
#[test]
fn shed_policy_is_sound_and_balances_the_books() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &script);

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        for seed in 100..120u64 {
            let mut scheme = build(&kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 1,
                overflow: OverflowPolicy::Shed,
                batch_size: 1,
                ..InterleaveConfig::default()
            };
            let out = run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
            assert_eq!(
                out.report.tasks_dispatched, executed,
                "{name} seed {seed}: dispatched tasks must all execute"
            );
            for (doc, got) in &out.delivered {
                let want = &expected[doc];
                assert!(
                    got.is_subset(want),
                    "{name} seed {seed}: unsound delivery for doc {doc}"
                );
            }
            for d in &docs {
                if out.shed_docs.contains(&d.id()) {
                    continue; // partial delivery is the shed contract
                }
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                assert_eq!(
                    &got,
                    &expected[&d.id()],
                    "{name} seed {seed}: non-shed doc {} incomplete",
                    d.id()
                );
            }
        }
    }
}

/// 30 seeded schedules of MOVE with a hot-term workload and a short
/// refresh period: allocation updates land between queued batches on
/// every schedule, and delivery stays exact throughout — the
/// allocation-update-during-drain race.
#[test]
fn move_allocation_refresh_races_are_benign() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 5; // several refreshes inside the script
    let mut filters = random_filters(200, 50, 0xA110C);
    for (i, f) in filters.iter_mut().enumerate() {
        if i % 3 == 0 {
            *f = Filter::new(f.id(), f.terms().iter().copied().chain([TermId(0)]));
        }
    }
    let sample = random_docs(30, 60, 10, 0x5A);
    let docs = random_docs(25, 60, 10, 0xD0C);
    let script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &script);

    for seed in 200..230u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let icfg = InterleaveConfig {
            match_lanes: 1,
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1,
            ..InterleaveConfig::default()
        };
        let out = run_schedule(Box::new(scheme), script.clone(), &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            out.report.allocation_updates > 0,
            "seed {seed}: the refresh cycle never fired"
        );
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} lost deliveries across a refresh",
                d.id()
            );
        }
    }
}

/// 20 seeded schedules of the copy-on-write shard protocol's worst case:
/// live `RegisterFilter`s (which `Arc::make_mut` the worker's shard while
/// the supervisor journal still shares it) interleaved with
/// `AllocationUpdate`s (which replace the shard with a fresh `Arc`
/// snapshot) landing mid-drain between queued batches. Whatever the
/// interleaving, every document must be delivered to exactly the filters
/// registered before it in router order — shard sharing is never allowed
/// to make a worker serve a layout it was not shipped.
#[test]
fn registrations_race_arc_shard_refreshes_mid_drain() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 4; // refreshes land between the registrations
    let filters = random_filters(160, 50, 0xA2C);
    let docs = random_docs(24, 60, 10, 0xD0C2);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &script);

    for seed in 700..720u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in pre {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&docs);
        scheme.allocate().expect("allocate");
        let icfg = InterleaveConfig {
            match_lanes: 1,
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1,
            ..InterleaveConfig::default()
        };
        let out = run_schedule(Box::new(scheme), script.clone(), &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            out.report.allocation_updates > 0,
            "seed {seed}: no refresh landed, the race was not exercised"
        );
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} wrong across register/refresh race",
                d.id()
            );
        }
    }
}

/// 36 fault schedules (3 schemes × 12 seeds) under restart supervision:
/// two seeded crashes land mid-publish-stream and late (crash-during-drain
/// at shutdown), plus a scheduling delay and a racing `Restart`. The
/// supervisor must restart the dead workers from their registration
/// journals, and delivery must be exactly at-most-once: sound everywhere,
/// exact for every document that lost no task, books balanced exactly.
#[test]
fn crash_with_restart_is_at_most_once() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let base_script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &base_script);

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        let mut total_restarts = 0u64;
        for seed in 300..312u64 {
            let mut scheme = build(&kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let nodes = scheme.cluster().len() as u32;
            let name = scheme.name();
            let a = NodeId(seed as u32 % nodes);
            let b = NodeId((seed as u32 + 1) % nodes);
            let mut script = base_script.clone();
            let len = script.len();
            // Inserting fault ops shifts no register/publish past another,
            // so `expected` (computed on the fault-free script) still holds.
            script.insert(2 * len / 3, ScriptOp::Crash(b));
            script.insert(len / 3, ScriptOp::Delay { node: b, steps: 4 });
            script.insert(seed as usize % len, ScriptOp::Crash(a));
            script.push(ScriptOp::Restart(a));
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 1 + (seed as usize % 3),
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
                ..InterleaveConfig::default()
            };
            let out = run_schedule(scheme, script, &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(
                out.shed_docs.is_empty(),
                "{name} seed {seed}: Block must not shed"
            );
            assert_eq!(out.report.docs_published, docs.len() as u64);
            assert_at_most_once(&format!("{name} seed {seed}"), &expected, &out);
            total_restarts += out.report.restarts;
        }
        assert!(
            total_restarts > 0,
            "the 12-seed sweep never exercised a supervised restart"
        );
    }
}

/// 30 fault schedules of allocated MOVE (real replica grids) under the
/// failover policy: two crashes mid-stream, no restarts allowed. Stranded
/// documents must be re-routed through the scheme — which fails the hop
/// over to live replica rows — with zero false deliveries and balanced
/// books, and the sweep must actually exercise the failover path.
#[test]
fn failover_reroutes_documents_to_replicas() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids (replica rows)
    let filters = random_filters(200, 50, 0xF41);
    let sample = random_docs(30, 60, 10, 0x5A);
    let docs = random_docs(25, 60, 10, 0xD0C);
    let base_script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &base_script);

    let mut any_failover = false;
    for seed in 400..430u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let nodes = scheme.cluster().len() as u32;
        let a = NodeId(seed as u32 % nodes);
        let b = NodeId((seed as u32 + 3) % nodes);
        let mut script = base_script.clone();
        script.insert(15, ScriptOp::Crash(b));
        script.insert(1 + seed as usize % 10, ScriptOp::Crash(a));
        let icfg = InterleaveConfig {
            match_lanes: 1,
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1 + (seed as usize % 2),
            lane_cost_target: 1,
            supervision: SupervisionPolicy::failover(),
        };
        let out = run_schedule(Box::new(scheme), script, &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_sound(&format!("move seed {seed}"), &expected, &out);
        assert_eq!(
            out.report.restarts, 0,
            "seed {seed}: the failover policy must never restart"
        );
        any_failover |= out.report.failovers > 0;
    }
    assert!(
        any_failover,
        "the 30-seed sweep never exercised the failover path"
    );
}

/// 40 schedules (2 schemes × 20 seeds) of a routing snapshot pinned across
/// in-flight publishes: `PinView` freezes the router's view for the next N
/// documents, a live registration lands mid-pin, and the schedule races
/// worker drains against the stale-epoch routing. The registered filter's
/// term is outside the pre-registered vocabulary, so the stale bloom prunes
/// it **deterministically**: every pinned document is delivered to exactly
/// the pre-registration match set (the new filter is installed on its
/// workers but unreachable), and the first post-expiry document onward is
/// delivered to exactly the full set — the bracketing oracle for
/// stale-snapshot routing, collapsed to equalities by construction.
#[test]
fn stale_snapshot_suppresses_unpublished_terms_until_refresh() {
    const PINNED: usize = 8;
    let cfg = SystemConfig::small_test();
    let pre = random_filters(120, 50, 0xA11);
    let fresh_term = TermId(1_000); // outside every pre-filter's vocabulary
    let fresh = Filter::new(FilterId(9_999), [fresh_term]);

    // Every document carries the fresh term, so the fresh filter matches
    // all of them — once the view catches up.
    let docs: Vec<move_types::Document> = random_docs(16, 50, 9, 0xD0C)
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            move_types::Document::from_distinct_terms(
                i as u64,
                d.terms().iter().copied().chain([fresh_term]),
            )
        })
        .collect();

    let mut script: Vec<ScriptOp> = vec![
        ScriptOp::PinView {
            docs: PINNED as u64,
        },
        ScriptOp::Register(fresh.clone()),
    ];
    script.extend(docs.iter().map(|d| ScriptOp::Publish(d.clone())));

    for kind in [Kind::Move, Kind::Il] {
        for seed in 600..620u64 {
            let mut scheme = build(&kind, &cfg);
            for f in &pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 1 + (seed as usize % 3),
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
                ..InterleaveConfig::default()
            };
            let out = run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(out.shed_docs.is_empty(), "{name} shed under Block");
            for (i, d) in docs.iter().enumerate() {
                let mut want: BTreeSet<FilterId> = brute_force(&pre, d, MatchSemantics::Boolean)
                    .into_iter()
                    .collect();
                if i >= PINNED {
                    // The pin expired with the PINNED-th publish; the
                    // refreshed bloom now admits the fresh term.
                    want.insert(fresh.id());
                }
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                assert_eq!(
                    &got,
                    &want,
                    "{name} seed {seed}: doc {} (pinned={}) wrong under stale view",
                    d.id(),
                    i < PINNED
                );
            }
        }
    }
}

/// 20 schedules of the pin-vs-refresh race on allocated MOVE: the view is
/// pinned for far longer than the stream, but the allocation-refresh cycle
/// fires mid-pin — and a refresh **clears the pin early** (the control
/// plane never lets a re-allocated grid ship under a stale epoch). The
/// fresh filter is therefore suppressed exactly up to the first refresh
/// boundary and delivered exactly from the next document on.
#[test]
fn stale_snapshot_pin_is_cleared_by_an_allocation_refresh() {
    const REFRESH_EVERY: u64 = 6;
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = REFRESH_EVERY;
    let pre = random_filters(150, 50, 0xA11C);
    let fresh_term = TermId(1_000);
    let fresh = Filter::new(FilterId(9_999), [fresh_term]);
    let sample = random_docs(30, 60, 10, 0x5A);
    let docs: Vec<move_types::Document> = random_docs(18, 50, 9, 0xD0C3)
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            move_types::Document::from_distinct_terms(
                i as u64,
                d.terms().iter().copied().chain([fresh_term]),
            )
        })
        .collect();

    let mut script: Vec<ScriptOp> = vec![
        // Pinned past the end of the stream: only a refresh can unpin.
        ScriptOp::PinView { docs: 1_000 },
        ScriptOp::Register(fresh.clone()),
    ];
    script.extend(docs.iter().map(|d| ScriptOp::Publish(d.clone())));

    for seed in 650..670u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in &pre {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let icfg = InterleaveConfig {
            match_lanes: 1,
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1 + (seed as usize % 2),
            ..InterleaveConfig::default()
        };
        let out = run_schedule(Box::new(scheme), script.clone(), &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            out.report.allocation_updates > 0,
            "seed {seed}: no refresh fired, the pin was never cleared"
        );
        for (i, d) in docs.iter().enumerate() {
            let mut want: BTreeSet<FilterId> = brute_force(&pre, d, MatchSemantics::Boolean)
                .into_iter()
                .collect();
            // The refresh lands inside publish #REFRESH_EVERY, after that
            // document was already routed under the stale view — so the
            // fresh filter reaches document REFRESH_EVERY+1 onward.
            if i as u64 >= REFRESH_EVERY {
                want.insert(fresh.id());
            }
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &want,
                "seed {seed}: doc {} wrong across the pin/refresh boundary",
                d.id()
            );
        }
    }
}

/// 48 schedules (3 schemes × 16 seeds) of a node join landing mid-drain:
/// the join is staged a third of the way into the stream (worker mailboxes
/// still holding pre-join batches), the handover window spans a third of
/// the publishes, and the commit lands with batches in flight again. The
/// delivery-set-equivalence property: whatever the schedule, every document
/// is delivered to exactly the brute-force set — identical to what the same
/// script produces with the join ops stripped, i.e. pre-join ≡
/// post-join+rebalance ≡ brute force.
#[test]
fn join_during_drain_preserves_exact_delivery() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(21, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let base_script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &base_script);

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        let mut moved_any = false;
        for seed in 800..816u64 {
            let mut scheme = build(&kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let mut script = base_script.clone();
            let len = script.len();
            // Inserting join ops shifts no register/publish past another,
            // so `expected` (computed on the join-free script) still holds.
            script.insert(2 * len / 3, ScriptOp::CommitJoin);
            script.insert(len / 3, ScriptOp::Join);
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 1 + (seed as usize % 3),
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
                ..InterleaveConfig::default()
            };
            let out = run_schedule(scheme, script, &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(out.shed_docs.is_empty(), "{name} shed under Block");
            assert!(out.lost_docs.is_empty(), "{name} lost docs with no crash");
            assert_eq!(
                out.report.joins, 1,
                "{name} seed {seed}: join not committed"
            );
            moved_any |= out.report.partitions_moved > 0;
            for d in &docs {
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                assert_eq!(
                    &got,
                    &expected[&d.id()],
                    "{name} seed {seed}: doc {} wrong across the join",
                    d.id()
                );
            }
        }
        // RS streams nothing by design (flooded groups); the partition
        // schemes must actually re-home partitions onto the joiner.
        if !matches!(kind, Kind::Rs) {
            assert!(moved_any, "the sweep never moved a partition on a join");
        }
    }
}

/// 20 schedules of a join racing MOVE's allocation-refresh cycle: a short
/// refresh period fires re-allocations before, inside, and after the
/// handover window, so `AllocationUpdate`s (whole-shard replacement) and
/// the join's `InstallPartitions`/`RetirePartitions` land interleaved in
/// the same mailboxes. Delivery must stay exact on every schedule, and
/// both machineries must actually fire.
#[test]
fn join_races_an_allocation_refresh() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 5; // several refreshes inside the script
    let filters = random_filters(200, 50, 0xA110C);
    let sample = random_docs(30, 60, 10, 0x5A);
    let docs = random_docs(24, 60, 10, 0xD0C);
    let base_script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &base_script);

    for seed in 830..850u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let mut script = base_script.clone();
        let len = script.len();
        script.insert(2 * len / 3, ScriptOp::CommitJoin);
        script.insert(len / 3, ScriptOp::Join);
        let icfg = InterleaveConfig {
            match_lanes: 1,
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1,
            ..InterleaveConfig::default()
        };
        let out = run_schedule(Box::new(scheme), script, &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            out.report.allocation_updates > 0,
            "seed {seed}: the refresh cycle never fired"
        );
        assert_eq!(out.report.joins, 1, "seed {seed}: join not committed");
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} wrong across the join/refresh race",
                d.id()
            );
        }
    }
}

/// 32 fault schedules (2 schemes × 16 seeds) of the joining node crashing
/// inside its handover window, under the failover policy (no restarts).
/// The commit must refuse to retire the old copies — there is no rollback,
/// the old homes simply keep serving — so deliveries stay sound and every
/// document that lost no queued task to the crash drain is delivered
/// exactly (the moved terms' matches come from their old homes via the
/// double-route).
#[test]
fn crash_of_joining_node_keeps_old_homes_serving() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let base_script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &base_script);
    let joiner = NodeId(cfg.nodes as u32); // joins always append

    for kind in [Kind::Move, Kind::Il] {
        let mut any_crash_won = false;
        for seed in 860..876u64 {
            let mut scheme = build(&kind, &cfg);
            for f in &filters {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let mut script = base_script.clone();
            let len = script.len();
            script.insert(3 * len / 4, ScriptOp::CommitJoin);
            script.insert(len / 2, ScriptOp::Crash(joiner));
            script.insert(len / 4, ScriptOp::Join);
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 2,
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
                lane_cost_target: 1,
                supervision: SupervisionPolicy::failover(),
            };
            let out = run_schedule(scheme, script, &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_at_most_once(&format!("{name} seed {seed}"), &expected, &out);
            // The dead joiner must have blocked the commit: no retirement,
            // no counted join.
            assert_eq!(
                out.report.joins, 0,
                "{name} seed {seed}: committed a join whose node died"
            );
            any_crash_won |= !out.lost_docs.is_empty() || out.report.failovers > 0;
        }
        assert!(
            any_crash_won,
            "{kind}: the sweep never actually killed the joiner mid-window",
            kind = match kind {
                Kind::Move => "move",
                Kind::Il => "il",
                Kind::Rs => "rs",
            }
        );
    }
}

/// 36 fault schedules (3 schemes × 12 seeds) of the failover-then-return
/// transition: a node is crashed mid-stream under the failover policy,
/// traffic routes around the corpse, then the node is restarted from its
/// journal and readmitted to the membership. On every schedule where the
/// revival actually fired (the crash won the race to the `Restart` op),
/// documents published after the cluster healed must be delivered exactly.
#[test]
fn failover_then_original_node_returns() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let expected = expected_sets(
        &filters,
        &docs
            .iter()
            .map(|d| ScriptOp::Publish(d.clone()))
            .collect::<Vec<_>>(),
    );

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        let mut healed_seeds = 0u32;
        for seed in 500..512u64 {
            let mut scheme = build(&kind, &cfg);
            for f in &filters {
                scheme.register(f).expect("register");
            }
            let nodes = scheme.cluster().len() as u32;
            let name = scheme.name();
            let victim = NodeId(seed as u32 % nodes);
            let mut script: Vec<ScriptOp> = Vec::with_capacity(docs.len() + 2);
            for (i, d) in docs.iter().enumerate() {
                if i == 12 {
                    script.push(ScriptOp::Crash(victim));
                }
                if i == 16 {
                    script.push(ScriptOp::Restart(victim));
                }
                script.push(ScriptOp::Publish(d.clone()));
            }
            let icfg = InterleaveConfig {
                match_lanes: 1,
                seed,
                mailbox_capacity: 2,
                overflow: OverflowPolicy::Block,
                batch_size: 1,
                lane_cost_target: 1,
                supervision: SupervisionPolicy::failover(),
            };
            let out = run_schedule(scheme, script, &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_sound(&format!("{name} seed {seed}"), &expected, &out);
            if out.report.restarts >= 1 {
                healed_seeds += 1;
                // The cluster is whole again: the tail must be exact.
                for d in &docs[16..] {
                    if out.lost_docs.contains(&d.id()) || out.shed_docs.contains(&d.id()) {
                        continue;
                    }
                    let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                    assert_eq!(
                        &got,
                        &expected[&d.id()],
                        "{name} seed {seed}: post-revival doc {} incomplete",
                        d.id()
                    );
                }
            }
        }
        assert!(
            healed_seeds > 0,
            "the 12-seed sweep never completed a failover-then-return cycle"
        );
    }
}
