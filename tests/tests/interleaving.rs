//! Schedule-permutation sweep over the live engine's router/worker
//! protocol: for every scheme, policy and seed, one deterministic
//! interleaving of router commands and worker message handling is
//! explored end to end (registration racing publishes, shutdown racing a
//! half-drained cluster, allocation refreshes landing mid-stream, and
//! shed-vs-block decisions at full mailboxes). Across **180 seeded
//! schedules** the run must terminate (no deadlock, enforced inside the
//! harness), never panic, and never lose a non-shed document.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_runtime::interleave::{run_schedule, InterleaveConfig, ScriptOp};
use move_runtime::OverflowPolicy;
use move_types::{DocId, Filter, FilterId, MatchSemantics, TermId};
use std::collections::{BTreeMap, BTreeSet};

enum Kind {
    Move,
    Il,
    Rs,
}

fn build(kind: &Kind, cfg: &SystemConfig) -> Box<dyn Dissemination + Send> {
    match kind {
        Kind::Move => Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        Kind::Il => Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        Kind::Rs => Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    }
}

/// Interleaves live registrations among the publishes: every third script
/// slot registers the next live filter, so documents race registrations
/// through the router's FIFO.
fn interleaved_script(live: &[Filter], docs: &[move_types::Document]) -> Vec<ScriptOp> {
    let mut script = Vec::with_capacity(live.len() + docs.len());
    let mut live_iter = live.iter();
    for (i, d) in docs.iter().enumerate() {
        if i % 3 == 0 {
            if let Some(f) = live_iter.next() {
                script.push(ScriptOp::Register(f.clone()));
            }
        }
        script.push(ScriptOp::Publish(d.clone()));
    }
    for f in live_iter {
        script.push(ScriptOp::Register(f.clone()));
    }
    script
}

/// The oracle: each published document must be delivered to exactly the
/// brute-force match set over the filters registered *before* it in the
/// script (plus the pre-registered ones) — the router channel is FIFO, so
/// registration order is part of the contract, whatever the schedule.
fn expected_sets(pre: &[Filter], script: &[ScriptOp]) -> BTreeMap<DocId, BTreeSet<FilterId>> {
    let mut known: Vec<Filter> = pre.to_vec();
    let mut out = BTreeMap::new();
    for op in script {
        match op {
            ScriptOp::Register(f) => known.push(f.clone()),
            ScriptOp::Publish(d) => {
                let want: BTreeSet<FilterId> = brute_force(&known, d, MatchSemantics::Boolean)
                    .into_iter()
                    .collect();
                out.insert(d.id(), want);
            }
        }
    }
    out
}

/// 90 schedules (3 schemes × 30 seeds) under the blocking policy: complete
/// delivery for every document, nothing shed, at varying (tiny) virtual
/// mailbox capacities.
#[test]
fn block_policy_delivers_exactly_under_all_schedules() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &script);

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        for seed in 0..30u64 {
            let mut scheme = build(&kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let icfg = InterleaveConfig {
                seed,
                mailbox_capacity: 1 + (seed as usize % 3),
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
            };
            let out = run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(out.shed_docs.is_empty(), "{name} shed under Block");
            assert_eq!(out.report.tasks_shed, 0, "{name} counted sheds under Block");
            assert_eq!(out.report.docs_published, docs.len() as u64);
            for d in &docs {
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                let want = &expected[&d.id()];
                assert_eq!(
                    &got,
                    want,
                    "{name} seed {seed}: doc {} delivered wrongly",
                    d.id()
                );
            }
        }
    }
}

/// 60 schedules (3 schemes × 20 seeds) under the shedding policy at
/// capacity 1: every delivery is sound, documents with no shed batch are
/// complete, and the dispatched/executed books balance.
#[test]
fn shed_policy_is_sound_and_balances_the_books() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(20, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &script);

    for kind in [Kind::Move, Kind::Il, Kind::Rs] {
        for seed in 100..120u64 {
            let mut scheme = build(&kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let icfg = InterleaveConfig {
                seed,
                mailbox_capacity: 1,
                overflow: OverflowPolicy::Shed,
                batch_size: 1,
            };
            let out = run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
            assert_eq!(
                out.report.tasks_dispatched, executed,
                "{name} seed {seed}: dispatched tasks must all execute"
            );
            for (doc, got) in &out.delivered {
                let want = &expected[doc];
                assert!(
                    got.is_subset(want),
                    "{name} seed {seed}: unsound delivery for doc {doc}"
                );
            }
            for d in &docs {
                if out.shed_docs.contains(&d.id()) {
                    continue; // partial delivery is the shed contract
                }
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                assert_eq!(
                    &got,
                    &expected[&d.id()],
                    "{name} seed {seed}: non-shed doc {} incomplete",
                    d.id()
                );
            }
        }
    }
}

/// 30 seeded schedules of MOVE with a hot-term workload and a short
/// refresh period: allocation updates land between queued batches on
/// every schedule, and delivery stays exact throughout — the
/// allocation-update-during-drain race.
#[test]
fn move_allocation_refresh_races_are_benign() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 5; // several refreshes inside the script
    let mut filters = random_filters(200, 50, 0xA110C);
    for (i, f) in filters.iter_mut().enumerate() {
        if i % 3 == 0 {
            *f = Filter::new(f.id(), f.terms().iter().copied().chain([TermId(0)]));
        }
    }
    let sample = random_docs(30, 60, 10, 0x5A);
    let docs = random_docs(25, 60, 10, 0xD0C);
    let script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &script);

    for seed in 200..230u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1,
        };
        let out = run_schedule(Box::new(scheme), script.clone(), &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            out.report.allocation_updates > 0,
            "seed {seed}: the refresh cycle never fired"
        );
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} lost deliveries across a refresh",
                d.id()
            );
        }
    }
}
