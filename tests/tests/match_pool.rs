//! Serial-vs-parallel equivalence for the work-stealing match plane: a
//! worker fanning its batches over N match lanes (cost-model units over
//! blocked posting scans, steal-half deques, per-lane scratch, canonical
//! merge) must be
//! **observationally identical** to the serial worker — byte-identical
//! delivery sets and exact `RuntimeReport` accounting — on every
//! schedule the deterministic pool-interleaving harness can produce.
//!
//! Three layers of evidence:
//!
//! 1. A 256-case property per scheme family comparing a pooled run
//!    against its serial twin, checking the delivered map *and* every
//!    schedule-independent counter (published, dispatched, shed, lost,
//!    executed tasks, postings scanned, deliveries).
//! 2. 60 seeded pool-interleave schedules of the three named races —
//!    steal-during-allocation-refresh, steal-during-join-handover, and
//!    lane-crash-mid-batch — each asserting exact delivery.
//! 3. A 256-case `MatchScratch` aliasing property (two lanes reusing
//!    scratches never leak dedup state into each other), plus the real
//!    threaded engine at 4 lanes against its serial twin.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::{brute_force, MatchScratch};
use move_integration_tests::{random_docs, random_filters};
use move_runtime::interleave::{run_schedule, InterleaveConfig, InterleaveReport, ScriptOp};
use move_runtime::{Engine, FaultPlan, OverflowPolicy, RuntimeConfig, RuntimeReport};
use move_types::{DocId, Document, Filter, FilterId, MatchSemantics, NodeId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

fn build(pick: u8, cfg: &SystemConfig) -> Box<dyn Dissemination + Send> {
    match pick % 3 {
        0 => Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        1 => Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        _ => Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    }
}

/// Interleaves live registrations among the publishes (every third slot),
/// so pooled batches race filter installs exactly like the serial runs.
fn interleaved_script(live: &[Filter], docs: &[Document]) -> Vec<ScriptOp> {
    let mut script = Vec::with_capacity(live.len() + docs.len());
    let mut live_iter = live.iter();
    for (i, d) in docs.iter().enumerate() {
        if i % 3 == 0 {
            if let Some(f) = live_iter.next() {
                script.push(ScriptOp::Register(f.clone()));
            }
        }
        script.push(ScriptOp::Publish(d.clone()));
    }
    for f in live_iter {
        script.push(ScriptOp::Register(f.clone()));
    }
    script
}

/// Brute-force oracle over router order: each document matches exactly the
/// filters registered before it in the script (plus the pre-registered
/// set), whatever the schedule and however many lanes execute it.
fn expected_sets(pre: &[Filter], script: &[ScriptOp]) -> BTreeMap<DocId, BTreeSet<FilterId>> {
    let mut known: Vec<Filter> = pre.to_vec();
    let mut out = BTreeMap::new();
    for op in script {
        match op {
            ScriptOp::Register(f) => known.push(f.clone()),
            ScriptOp::Publish(d) => {
                let want: BTreeSet<FilterId> = brute_force(&known, d, MatchSemantics::Boolean)
                    .into_iter()
                    .collect();
                out.insert(d.id(), want);
            }
            // Joins, pins and lane faults change who computes the answer,
            // never what the answer is.
            _ => {}
        }
    }
    out
}

/// The schedule-independent observables of one run — everything the
/// equivalence property compares between a serial and a pooled execution.
/// Deliberately excludes schedule-dependent telemetry (queue HWMs,
/// latency, steals, lane units).
#[derive(Debug, PartialEq, Eq)]
struct Books {
    delivered: BTreeMap<DocId, BTreeSet<FilterId>>,
    lost_docs: BTreeSet<DocId>,
    shed_docs: BTreeSet<DocId>,
    docs_published: u64,
    tasks_dispatched: u64,
    tasks_shed: u64,
    tasks_lost: u64,
    doc_tasks: u64,
    postings_scanned: u64,
    deliveries: u64,
}

fn books(out: &InterleaveReport) -> Books {
    Books {
        delivered: out.delivered.clone(),
        lost_docs: out.lost_docs.clone(),
        shed_docs: out.shed_docs.clone(),
        docs_published: out.report.docs_published,
        tasks_dispatched: out.report.tasks_dispatched,
        tasks_shed: out.report.tasks_shed,
        tasks_lost: out.report.tasks_lost,
        doc_tasks: out.report.nodes.iter().map(|n| n.doc_tasks).sum(),
        postings_scanned: out.report.nodes.iter().map(|n| n.postings_scanned).sum(),
        deliveries: out.report.nodes.iter().map(|n| n.deliveries).sum(),
    }
}

fn lane_units(report: &RuntimeReport) -> u64 {
    report.nodes.iter().map(|n| n.lane_units).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core equivalence property, 256 generated cases: for a random
    /// scheme, workload, lane count, mailbox capacity and batch size, a
    /// pooled schedule produces byte-identical delivery sets and exactly
    /// the serial run's books.
    #[test]
    fn pooled_lanes_reproduce_the_serial_books(
        seed in 0u64..1_000_000,
        lanes in 2usize..5,
        mailbox in 1usize..4,
        batch in 1usize..4,
        pick in 0u8..3,
        n_filters in 40u64..120,
        vocab in 20u32..80,
    ) {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(n_filters, vocab, seed);
        let docs = random_docs(8, vocab + 10, 10, seed ^ 0xD0C);
        let (pre, live) = filters.split_at(filters.len() / 2);
        let script = interleaved_script(live, &docs);

        let run = |match_lanes: usize| {
            let mut scheme = build(pick, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let icfg = InterleaveConfig {
                seed,
                mailbox_capacity: mailbox,
                overflow: OverflowPolicy::Block,
                batch_size: batch,
                match_lanes,
                ..InterleaveConfig::default()
            };
            run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("seed {seed} lanes {match_lanes}: {e}"))
        };
        let serial = run(1);
        let pooled = run(lanes);

        prop_assert_eq!(
            books(&serial),
            books(&pooled),
            "seed {} pick {} lanes {}: pooled books diverged from serial",
            seed, pick, lanes
        );
        // The pool actually executed the batches (this is not a vacuous
        // comparison of two serial runs).
        prop_assert_eq!(lane_units(&serial.report), 0);
        if pooled.report.tasks_dispatched > 0 {
            prop_assert!(
                lane_units(&pooled.report) > 0,
                "seed {seed}: dispatched tasks but the pool never ran a unit"
            );
        }
        // And both land on the brute-force oracle, not merely on each other.
        let expected = expected_sets(pre, &script);
        for d in &docs {
            let got = pooled.delivered.get(&d.id()).cloned().unwrap_or_default();
            prop_assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {} lanes {}: doc {} diverged from oracle",
                seed, lanes, d.id()
            );
        }
    }

    /// Shed accounting stays exact under lanes: with capacity-1 mailboxes
    /// and the shedding policy, the pooled run sheds *the same batches* as
    /// the serial run (sheds happen at routing time, before the pool ever
    /// sees the task) and every delivered set remains sound.
    #[test]
    fn pooled_lanes_shed_exactly_like_the_serial_router(
        seed in 0u64..1_000_000,
        lanes in 2usize..5,
        pick in 0u8..3,
    ) {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(80, 40, seed);
        let docs = random_docs(8, 50, 10, seed ^ 0xD0C);
        let script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();

        let run = |match_lanes: usize| {
            let mut scheme = build(pick, &cfg);
            for f in &filters {
                scheme.register(f).expect("register");
            }
            let icfg = InterleaveConfig {
                seed,
                mailbox_capacity: 1,
                overflow: OverflowPolicy::Shed,
                batch_size: 1,
                match_lanes,
                ..InterleaveConfig::default()
            };
            run_schedule(scheme, script.clone(), &icfg)
                .unwrap_or_else(|e| panic!("seed {seed} lanes {match_lanes}: {e}"))
        };
        let serial = run(1);
        let pooled = run(lanes);

        // Sheds are a router decision and the router is schedule-driven,
        // so the *sets* can differ between two schedules — but the books
        // must balance identically: everything dispatched executes, and
        // every delivery is sound against the full filter set.
        let executed: u64 = pooled.report.nodes.iter().map(|n| n.doc_tasks).sum();
        prop_assert_eq!(pooled.report.tasks_dispatched, executed);
        prop_assert_eq!(
            pooled.report.tasks_dispatched + pooled.report.tasks_shed,
            serial.report.tasks_dispatched + serial.report.tasks_shed,
            "seed {}: routed-task totals diverged under lanes", seed
        );
        let expected = expected_sets(&filters, &script);
        for (doc, got) in &pooled.delivered {
            prop_assert!(
                got.is_subset(&expected[doc]),
                "seed {}: unsound pooled delivery for doc {}", seed, doc
            );
        }
        for d in &docs {
            if pooled.shed_docs.contains(&d.id()) {
                continue;
            }
            let got = pooled.delivered.get(&d.id()).cloned().unwrap_or_default();
            prop_assert_eq!(
                &got, &expected[&d.id()],
                "seed {}: non-shed doc {} incomplete under lanes", seed, d.id()
            );
        }
    }

    /// Satellite: two lanes reusing their `MatchScratch` buffers across
    /// interleaved dedup calls never alias state — each call's answer is
    /// identical to a fresh scratch's, including after the scratches swap
    /// lanes (the worker swaps scratches into lane contexts per batch) and
    /// across the dense-bitmap/sparse-sort fallback boundary.
    #[test]
    fn scratch_reuse_across_two_lanes_never_aliases(
        dense_a in prop::collection::vec(0u64..4096, 0..200),
        dense_b in prop::collection::vec(0u64..4096, 0..200),
        sparse in prop::collection::vec(0u64..1_000_000_000, 0..20),
        rounds in 1usize..4,
    ) {
        fn naive(ids: &[FilterId]) -> Vec<FilterId> {
            let set: BTreeSet<FilterId> = ids.iter().copied().collect();
            set.into_iter().collect()
        }
        let to_ids = |xs: &[u64]| -> Vec<FilterId> { xs.iter().map(|&x| FilterId(x)).collect() };
        // Lane B's working set shares ids with lane A's and adds sparse
        // outliers, so a leaked bitmap bit in either scratch would
        // resurrect an id the other lane never saw.
        let set_a = to_ids(&dense_a);
        let set_b: Vec<FilterId> = to_ids(&dense_b)
            .into_iter()
            .chain(to_ids(&sparse))
            .chain(set_a.iter().copied().take(set_a.len() / 2))
            .collect();
        let want_a = naive(&set_a);
        let want_b = naive(&set_b);

        let mut lane_a = MatchScratch::new();
        let mut lane_b = MatchScratch::new();
        for round in 0..rounds {
            let mut ids = set_a.clone();
            lane_a.sort_dedup(&mut ids);
            prop_assert_eq!(&ids, &want_a, "lane A round {}", round);
            let mut ids = set_b.clone();
            lane_b.sort_dedup(&mut ids);
            prop_assert_eq!(&ids, &want_b, "lane B round {}", round);
            // Cross over: each lane's scratch now handles the *other*
            // lane's set, as after a worker/lane scratch swap.
            let mut ids = set_b.clone();
            lane_a.sort_dedup(&mut ids);
            prop_assert_eq!(&ids, &want_b, "lane A crossed round {}", round);
            let mut ids = set_a.clone();
            lane_b.sort_dedup(&mut ids);
            prop_assert_eq!(&ids, &want_a, "lane B crossed round {}", round);
            std::mem::swap(&mut lane_a, &mut lane_b);
        }
    }
}

/// 20 seeded schedules of lane steals racing MOVE's allocation-refresh
/// cycle: a short refresh period fires re-allocations while pool batches
/// are mid-drain, so `AllocationUpdate`s land between pool steps on many
/// seeds. Delivery must stay exact on every schedule, the refresh cycle
/// must actually fire, and across the sweep the steal path itself must be
/// exercised (some lane must steal from a sibling's deque).
#[test]
fn steals_race_an_allocation_refresh() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 5; // several refreshes inside the script
    let filters = random_filters(200, 50, 0x57EA1);
    let sample = random_docs(30, 60, 10, 0x5A);
    let docs = random_docs(24, 60, 10, 0xD0C);
    let script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &script);

    let mut total_steals = 0u64;
    for seed in 900..920u64 {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 2,
            match_lanes: 3,
            ..InterleaveConfig::default()
        };
        let out = run_schedule(Box::new(scheme), script.clone(), &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            out.report.allocation_updates > 0,
            "seed {seed}: the refresh cycle never fired"
        );
        assert!(
            lane_units(&out.report) > 0,
            "seed {seed}: the pool never executed a unit"
        );
        total_steals += out.report.steals();
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} wrong across a steal/refresh race",
                d.id()
            );
        }
    }
    assert!(
        total_steals > 0,
        "the 20-seed sweep never exercised the steal path"
    );
}

/// 16 seeded schedules of lane steals racing a join handover: the join is
/// staged a third into the stream (pool batches still draining pre-join
/// work), the handover window spans a third of the publishes, and the
/// commit lands with batches in flight again — all while 3 lanes split
/// and steal every batch. Delivery must be exact and the join committed
/// on every schedule.
#[test]
fn steals_race_a_join_handover() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xA11);
    let docs = random_docs(21, 60, 10, 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let base_script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &base_script);

    for kind in 0u8..2 {
        for seed in 930..938u64 {
            let mut scheme = build(kind, &cfg);
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let mut script = base_script.clone();
            let len = script.len();
            script.insert(2 * len / 3, ScriptOp::CommitJoin);
            script.insert(len / 3, ScriptOp::Join);
            let icfg = InterleaveConfig {
                seed,
                mailbox_capacity: 2,
                overflow: OverflowPolicy::Block,
                batch_size: 1 + (seed as usize % 2),
                match_lanes: 3,
                ..InterleaveConfig::default()
            };
            let out = run_schedule(scheme, script, &icfg)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_eq!(
                out.report.joins, 1,
                "{name} seed {seed}: join not committed"
            );
            assert!(out.lost_docs.is_empty(), "{name} lost docs with no crash");
            assert!(
                lane_units(&out.report) > 0,
                "{name} seed {seed}: the pool never executed a unit"
            );
            for d in &docs {
                let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
                assert_eq!(
                    &got,
                    &expected[&d.id()],
                    "{name} seed {seed}: doc {} wrong across the join handover",
                    d.id()
                );
            }
        }
    }
}

/// 24 seeded schedules of lanes crashing mid-batch: helper lanes die while
/// their deques still hold units (and more batches follow), on two
/// different nodes and at several stream positions. A dead lane's queued
/// units stay stealable, so *nothing* may be lost — delivery stays exact
/// on every schedule and the books balance with equality.
#[test]
fn a_lane_crash_mid_batch_never_loses_a_delivery() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(120, 50, 0xC4A5);
    let docs = random_docs(20, 60, 10, 0xC4A5 ^ 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);
    let base_script = interleaved_script(live, &docs);
    let expected = expected_sets(pre, &base_script);

    for seed in 950..974u64 {
        let mut scheme = build(1, &cfg); // IL
        for f in pre {
            scheme.register(f).expect("register");
        }
        let nodes = scheme.cluster().len() as u32;
        let mut script = base_script.clone();
        let len = script.len();
        // Three lane deaths: early, mid and late, on rotating nodes, so
        // crashes land before, inside and after most batches.
        script.insert(
            3 * len / 4,
            ScriptOp::CrashLane {
                node: NodeId((seed as u32 + 1) % nodes),
                lane: 3,
            },
        );
        script.insert(
            len / 2,
            ScriptOp::CrashLane {
                node: NodeId(seed as u32 % nodes),
                lane: 2,
            },
        );
        script.insert(
            len / 4,
            ScriptOp::CrashLane {
                node: NodeId(seed as u32 % nodes),
                lane: 1,
            },
        );
        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 1 + (seed as usize % 3),
            overflow: OverflowPolicy::Block,
            batch_size: 1 + (seed as usize % 3),
            match_lanes: 4,
            ..InterleaveConfig::default()
        };
        let out =
            run_schedule(scheme, script, &icfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(out.report.docs_published, docs.len() as u64);
        assert!(
            out.lost_docs.is_empty(),
            "seed {seed}: a lane crash lost a doc"
        );
        let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
        assert_eq!(
            out.report.tasks_dispatched, executed,
            "seed {seed}: a lane crash lost a dispatched task"
        );
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} wrong after lane crashes",
                d.id()
            );
        }
    }
}

/// Filters engineered so one term's posting list spans several blocks:
/// every filter carries the hot term, so its home node's list holds
/// `count` entries — `count / 128`-plus blocks under the blocked layout.
fn block_spanning_filters(count: u64) -> Vec<Filter> {
    assert!(
        count as usize > 2 * move_index::BLOCK_CAP,
        "workload must span at least three posting blocks"
    );
    (0..count)
        .map(|id| {
            Filter::new(
                id,
                [
                    move_types::TermId(1),
                    move_types::TermId(2 + (id % 7) as u32),
                ],
            )
        })
        .collect()
}

/// 20 seeded schedules of steals over multi-block posting lists: the hot
/// term's list spans 3+ blocks, so stolen units land mid-way through a
/// blocked scan sequence and merge their block runs out of order.
/// Delivery must stay exact on every schedule, and the sweep must
/// actually steal.
#[test]
fn steals_under_the_blocked_layout_stay_exact() {
    let cfg = SystemConfig::small_test();
    let filters = block_spanning_filters(300);
    // Every doc carries the hot term (posting list of 300 = 3 blocks)
    // plus a rotating tail, so each batch re-scans the blocked list.
    let docs: Vec<Document> = (0..18u64)
        .map(|i| {
            Document::from_distinct_terms(
                i,
                [
                    move_types::TermId(1),
                    move_types::TermId(2 + (i % 7) as u32),
                    move_types::TermId(40 + (i % 3) as u32),
                ],
            )
        })
        .collect();
    let script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &script);

    let mut total_steals = 0u64;
    for seed in 2000..2020u64 {
        let mut scheme = build(1, &cfg); // IL: term 1's full list on one home
        for f in &filters {
            scheme.register(f).expect("register");
        }
        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 2,
            match_lanes: 3,
            ..InterleaveConfig::default()
        };
        let out = run_schedule(scheme, script.clone(), &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            lane_units(&out.report) > 0,
            "seed {seed}: the pool never executed a unit"
        );
        total_steals += out.report.steals();
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} wrong over multi-block lists",
                d.id()
            );
        }
    }
    assert!(
        total_steals > 0,
        "the 20-seed sweep never stole a multi-block unit"
    );
}

/// 16 seeded schedules of a lane dying mid-way through a multi-block
/// scan: the hot term spans 3+ posting blocks and lanes are crashed
/// between pool steps, so a dead lane's deque still holds units whose
/// scans of the blocked list have not started. Those units must be
/// stolen dry — exact delivery, balanced books — on every schedule.
#[test]
fn a_lane_crash_mid_block_scan_leaves_units_stealable() {
    let cfg = SystemConfig::small_test();
    let filters = block_spanning_filters(300);
    let docs: Vec<Document> = (0..16u64)
        .map(|i| {
            Document::from_distinct_terms(
                i,
                [
                    move_types::TermId(1),
                    move_types::TermId(2 + (i % 7) as u32),
                ],
            )
        })
        .collect();
    let base_script: Vec<ScriptOp> = docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
    let expected = expected_sets(&filters, &base_script);

    for seed in 2100..2116u64 {
        let mut scheme = build(1, &cfg); // IL
        for f in &filters {
            scheme.register(f).expect("register");
        }
        let nodes = scheme.cluster().len() as u32;
        let mut script = base_script.clone();
        let len = script.len();
        // Two lane deaths landing while blocked-list batches drain.
        script.insert(
            len / 2,
            ScriptOp::CrashLane {
                node: NodeId((seed as u32 + 1) % nodes),
                lane: 2,
            },
        );
        script.insert(
            len / 4,
            ScriptOp::CrashLane {
                node: NodeId(seed as u32 % nodes),
                lane: 1,
            },
        );
        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 1 + (seed as usize % 2),
            overflow: OverflowPolicy::Block,
            batch_size: 1 + (seed as usize % 3),
            match_lanes: 3,
            ..InterleaveConfig::default()
        };
        let out =
            run_schedule(scheme, script, &icfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(out.report.docs_published, docs.len() as u64);
        assert!(
            out.lost_docs.is_empty(),
            "seed {seed}: a mid-scan lane crash lost a doc"
        );
        let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
        assert_eq!(
            out.report.tasks_dispatched, executed,
            "seed {seed}: a crashed lane's units were not stolen dry"
        );
        for d in &docs {
            let got = out.delivered.get(&d.id()).cloned().unwrap_or_default();
            assert_eq!(
                &got,
                &expected[&d.id()],
                "seed {seed}: doc {} wrong after a mid-block-scan crash",
                d.id()
            );
        }
    }
}

/// The threaded engine end to end: real OS lane threads at 4 lanes per
/// worker against the serial engine on the identical workload. Delivery
/// sets must be byte-identical (and equal the oracle), the report totals
/// must agree, and the pooled run must show lane activity.
#[test]
fn threaded_lanes_match_the_serial_engine_end_to_end() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(250, 80, 0x1A4E5);
    let docs = random_docs(120, 100, 12, 0x1A4E5 ^ 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);

    let run = |match_lanes: usize| {
        let mut scheme = IlScheme::new(cfg.clone()).expect("valid config");
        for f in pre {
            scheme.register(f).expect("register");
        }
        let config = RuntimeConfig {
            mailbox_capacity: 4,
            overflow: OverflowPolicy::Block,
            batch_size: 2,
            flush_interval: Duration::from_millis(1),
            match_lanes,
            // A cost target of 1 defeats the worker's inline fast path for
            // small batches — this test exists to drive the threaded pool.
            lane_cost_target: 1,
            ..RuntimeConfig::default()
        };
        let engine = Engine::start_with_faults(Box::new(scheme), config, FaultPlan::none())
            .expect("engine starts");
        let deliveries = engine.deliveries();
        for f in live {
            engine.register(f.clone());
        }
        for d in &docs {
            engine.publish(d.clone());
        }
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(engine.shutdown());
        });
        let report = match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(result) => result.expect("clean shutdown"),
            Err(_) => panic!("lanes={match_lanes} shutdown exceeded 120s: deadlock suspected"),
        };
        let mut delivered: BTreeMap<DocId, BTreeSet<FilterId>> = BTreeMap::new();
        for d in deliveries.try_iter() {
            delivered.entry(d.doc).or_default().extend(d.matched);
        }
        (report, delivered)
    };
    let (serial_report, serial_delivered) = run(1);
    let (pooled_report, pooled_delivered) = run(4);

    assert_eq!(serial_delivered, pooled_delivered, "delivery sets diverged");
    assert_eq!(pooled_report.docs_published, docs.len() as u64);
    assert_eq!(
        pooled_report.tasks_dispatched, serial_report.tasks_dispatched,
        "dispatch totals diverged under lanes"
    );
    assert_eq!(pooled_report.tasks_lost, 0);
    assert_eq!(
        lane_units(&serial_report),
        0,
        "serial mode must not run a pool"
    );
    assert!(
        lane_units(&pooled_report) > 0,
        "the 4-lane engine never executed a pool unit"
    );
    for d in &docs {
        let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
            .into_iter()
            .collect();
        let got = pooled_delivered.get(&d.id()).cloned().unwrap_or_default();
        assert_eq!(got, want, "doc {} diverged from oracle under lanes", d.id());
    }
}
