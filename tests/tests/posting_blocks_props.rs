//! Property tests of the blocked posting layout against the flat sorted
//! `Vec<FilterId>` oracle it replaced, plus a deterministic edge suite at
//! the block boundaries.
//!
//! The blocked layout (`move-index`'s `blocks` module) must be
//! *observationally identical* to a flat sorted vector: same iteration
//! order, same membership answers, same return values from every mutation
//! — block splits, merges and pruning are storage artifacts that may
//! never leak. The property runs random op sequences through both and
//! compares after every step; the edge suite pins the exact boundaries
//! (127/128/129 entries, drained-block pruning) where off-by-ones live.

use move_index::{InvertedIndex, PostingList, BLOCK_CAP};
use move_types::{FilterId, MatchSemantics, TermId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    Remove(u16),
    ExtendSorted(Vec<u16>),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Ids in 0..600 keep collisions (duplicate inserts, present removes)
    // frequent, and several hundred ops force multi-block lists through
    // splits and prunes.
    let op = prop_oneof![
        4 => (0u16..600).prop_map(Op::Insert),
        2 => (0u16..600).prop_map(Op::Remove),
        1 => prop::collection::vec(0u16..600, 0..80).prop_map(|mut ids| {
            ids.sort_unstable();
            ids.dedup();
            Op::ExtendSorted(ids)
        }),
    ];
    prop::collection::vec(op, 1..120)
}

/// The flat-layout oracle: a sorted, deduplicated vector with the exact
/// return-value contract the blocked list must reproduce.
#[derive(Debug, Default)]
struct FlatOracle(Vec<FilterId>);

impl FlatOracle {
    fn insert(&mut self, id: FilterId) -> bool {
        match self.0.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, id);
                true
            }
        }
    }

    fn remove(&mut self, id: FilterId) -> bool {
        match self.0.binary_search(&id) {
            Ok(pos) => {
                self.0.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    fn extend_sorted(&mut self, batch: &[FilterId]) -> usize {
        batch.iter().filter(|&&id| self.insert(id)).count()
    }
}

/// Structural invariants of the blocked layout, checked through the
/// public block API: non-empty blocks, strictly ascending ids within and
/// across blocks, truthful summary headers, and byte accounting that is
/// an exact function of the block count.
fn assert_block_invariants(pl: &PostingList) {
    let blocks = pl.blocks();
    let mut prev_max: Option<FilterId> = None;
    for b in blocks {
        assert!(!b.is_empty(), "empty blocks must be pruned");
        assert!(b.len() <= BLOCK_CAP);
        let ids = b.as_slice();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "in-block order");
        assert_eq!(b.min(), ids[0], "min summary");
        assert_eq!(b.max(), ids[ids.len() - 1], "max summary");
        if let Some(pm) = prev_max {
            assert!(pm < b.min(), "blocks must not overlap");
        }
        prev_max = Some(b.max());
    }
    // Each block holds ≥ 1 and ≤ BLOCK_CAP ids, so the count is bounded
    // both ways; bytes are blocks × the fixed per-block footprint.
    assert!(blocks.len() <= pl.len());
    assert!(blocks.len() >= pl.len().div_ceil(BLOCK_CAP));
    if let Some(one_block_bytes) = single_block_bytes() {
        assert_eq!(pl.estimated_bytes(), blocks.len() * one_block_bytes);
    }
}

/// Footprint of a one-block list, measured once — the unit of the exact
/// byte accounting.
fn single_block_bytes() -> Option<usize> {
    let one: PostingList = [FilterId(0)].into_iter().collect();
    (one.blocks().len() == 1).then(|| one.estimated_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn blocked_list_agrees_with_the_flat_oracle(ops in arb_ops()) {
        let mut pl = PostingList::new();
        let mut oracle = FlatOracle::default();
        for op in &ops {
            match op {
                Op::Insert(raw) => {
                    let id = FilterId(u64::from(*raw));
                    prop_assert_eq!(pl.insert(id), oracle.insert(id), "insert {}", raw);
                }
                Op::Remove(raw) => {
                    let id = FilterId(u64::from(*raw));
                    prop_assert_eq!(pl.remove(id), oracle.remove(id), "remove {}", raw);
                }
                Op::ExtendSorted(raw) => {
                    let batch: Vec<FilterId> =
                        raw.iter().map(|&r| FilterId(u64::from(r))).collect();
                    prop_assert_eq!(
                        pl.extend_sorted(&batch),
                        oracle.extend_sorted(&batch),
                        "extend_sorted {:?}", raw
                    );
                }
            }
            prop_assert_eq!(pl.len(), oracle.0.len());
        }
        // Identical observable state: iteration order, membership, bytes
        // consistent with the block structure.
        let collected: Vec<FilterId> = pl.iter().collect();
        prop_assert_eq!(&collected, &oracle.0);
        for raw in 0u16..600 {
            let id = FilterId(u64::from(raw));
            prop_assert_eq!(pl.contains(id), oracle.0.binary_search(&id).is_ok());
        }
        assert_block_invariants(&pl);
    }

    #[test]
    fn index_term_postings_agree_with_a_map_model(
        ops in prop::collection::vec(
            (0u8..8, 0u16..60, any::<bool>()), 1..120
        )
    ) {
        // `insert_for_term` / `remove_term_posting` over blocked lists
        // must match a plain map of sorted sets — including posting-list
        // pruning when a term drains and body retirement on the last
        // posting.
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        let mut model: BTreeMap<TermId, BTreeSet<FilterId>> = BTreeMap::new();
        for (t, f, is_insert) in &ops {
            let term = TermId(u32::from(*t));
            let fid = FilterId(u64::from(*f));
            if *is_insert {
                // The filter body must contain every term it is ever
                // registered under; give each filter all 8 terms.
                let body = move_types::Filter::new(fid.0, (0u32..8).map(TermId));
                idx.insert_for_term(body, term);
                model.entry(term).or_default().insert(fid);
            } else {
                let want = model
                    .get_mut(&term)
                    .is_some_and(|s| s.remove(&fid));
                prop_assert_eq!(idx.remove_term_posting(fid, term), want);
                if model.get(&term).is_some_and(BTreeSet::is_empty) {
                    model.remove(&term);
                }
            }
        }
        for t in 0u32..8 {
            let term = TermId(t);
            let want: Vec<FilterId> =
                model.get(&term).map(|s| s.iter().copied().collect()).unwrap_or_default();
            let got: Vec<FilterId> =
                idx.posting(term).map(|pl| pl.iter().collect()).unwrap_or_default();
            prop_assert_eq!(got, want, "term {}", t);
            prop_assert_eq!(idx.posting_len(term), model.get(&term).map_or(0, BTreeSet::len));
        }
        let live: BTreeSet<FilterId> = model.values().flatten().copied().collect();
        prop_assert_eq!(idx.len(), live.len(), "bodies must drain with their postings");
    }
}

#[test]
fn block_boundaries_are_exact() {
    // 127 / 128 / 129 entries: one block below capacity, exactly at it,
    // and the first spill into a second block.
    for (n, want_blocks) in [(127usize, 1usize), (128, 1), (129, 2)] {
        let pl: PostingList = (0..n as u64).map(FilterId).collect();
        assert_eq!(pl.blocks().len(), want_blocks, "{n} entries");
        assert_eq!(pl.len(), n);
        let ids: Vec<FilterId> = pl.iter().collect();
        assert_eq!(ids, (0..n as u64).map(FilterId).collect::<Vec<_>>());
        assert_block_invariants(&pl);
    }
}

#[test]
fn middle_insert_into_a_full_block_splits_without_reordering() {
    // Fill one block with even ids, then insert an odd id in the middle:
    // the block must split (capacity is exhausted) and the merged
    // iteration order must stay exactly sorted.
    let mut pl: PostingList = (0..BLOCK_CAP as u64).map(|i| FilterId(i * 2)).collect();
    assert_eq!(pl.blocks().len(), 1);
    assert!(pl.insert(FilterId(101)));
    assert_eq!(pl.blocks().len(), 2, "full block must split");
    let mut want: Vec<FilterId> = (0..BLOCK_CAP as u64).map(|i| FilterId(i * 2)).collect();
    want.push(FilterId(101));
    want.sort_unstable();
    assert_eq!(pl.iter().collect::<Vec<_>>(), want);
    assert_block_invariants(&pl);
}

#[test]
fn draining_a_block_prunes_it() {
    // Two blocks; removing every id of the first must drop the block
    // itself (summary skip-pruning relies on no empty blocks existing),
    // while the survivor keeps its ids untouched.
    let pl_ids: Vec<FilterId> = (0..(BLOCK_CAP as u64 + 10)).map(FilterId).collect();
    let mut pl: PostingList = pl_ids.iter().copied().collect();
    assert_eq!(pl.blocks().len(), 2);
    let first_block: Vec<FilterId> = pl.blocks()[0].as_slice().to_vec();
    for id in &first_block {
        assert!(pl.remove(*id));
    }
    assert_eq!(pl.blocks().len(), 1, "drained block must be pruned");
    let survivors: Vec<FilterId> = pl.iter().collect();
    assert_eq!(
        survivors,
        pl_ids[first_block.len()..].to_vec(),
        "second block must be untouched"
    );
    assert_block_invariants(&pl);
    // Draining the remainder leaves a truly empty list.
    for id in survivors {
        assert!(pl.remove(id));
    }
    assert!(pl.is_empty());
    assert_eq!(pl.blocks().len(), 0);
    assert_eq!(pl.estimated_bytes(), 0);
}
