//! Properties of the allocation optimizer and grid layout (DESIGN.md §5).

use move_core::{AllocationFactors, FactorRule, Grid, GridMode, NodeStats};
use move_types::{FilterId, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_stats() -> impl Strategy<Value = Vec<NodeStats>> {
    prop::collection::vec(
        (0u64..5_000, 0u64..200, 0u64..100_000).prop_map(|(pairs, hits, postings)| NodeStats {
            pairs,
            doc_hits: hits,
            hit_postings: postings,
            docs_observed: 100,
        }),
        2..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn factors_respect_budget_and_caps(
        stats in arb_stats(),
        rule_idx in 0usize..6,
        seed in 0u64..100,
    ) {
        let rule = [
            FactorRule::Uniform,
            FactorRule::SqrtQ,
            FactorRule::SqrtBetaQ,
            FactorRule::SqrtPQ,
            FactorRule::SqrtLoad,
            FactorRule::LoadBalance,
        ][rule_idx];
        let nodes = stats.len() as u64;
        let baseline: u64 = stats.iter().map(|s| s.pairs).sum();
        let total_filters = (baseline / 2).max(1);
        // Capacity generous enough to be feasible.
        let capacity = (baseline / nodes).max(1) * 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let f = AllocationFactors::compute(&stats, total_filters, capacity, rule, 5.0, &mut rng)
            .expect("feasible");
        for (n, s) in f.n.iter().zip(&stats) {
            if s.pairs == 0 {
                prop_assert_eq!(*n, 0);
            } else {
                prop_assert!((1..=nodes).contains(n), "n={n} outside [1, N]");
            }
        }
        // The realized storage stays within the budget plus rounding slack
        // (one extra copy per node at most).
        let used: u64 = f.n.iter().zip(&stats).map(|(n, s)| n * s.pairs).sum();
        let slack: u64 = stats.iter().map(|s| s.pairs).sum();
        prop_assert!(
            used <= nodes * capacity + slack,
            "used {used} over budget {}",
            nodes * capacity
        );
    }

    #[test]
    fn infeasible_budgets_are_rejected(stats in arb_stats()) {
        let baseline: u64 = stats.iter().map(|s| s.pairs).sum();
        prop_assume!(baseline > stats.len() as u64);
        let capacity = (baseline / stats.len() as u64) / 2;
        prop_assume!(capacity > 0);
        let mut rng = StdRng::seed_from_u64(1);
        let r = AllocationFactors::compute(
            &stats, baseline, capacity, FactorRule::SqrtPQ, 1.0, &mut rng,
        );
        prop_assert!(r.is_err(), "half the needed capacity must be rejected");
    }

    #[test]
    fn grid_covers_each_filter_exactly_rows_times(
        n in 1u64..20,
        pairs in 1u64..10_000,
        capacity in 1u64..5_000,
        ids in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let (rows, cols) = Grid::shape(GridMode::Optimal, n, pairs, capacity);
        prop_assert!(rows * cols < n as usize + cols); // rows*cols ≤ n rounded to full rows
        prop_assert!(rows >= 1 && cols >= 1);
        // Subsets fit the half-capacity target whenever enough columns exist.
        if (cols as u64) < n {
            prop_assert!(pairs.div_ceil(cols as u64) <= capacity.div_ceil(2).max(1));
        }

        let slots: Vec<NodeId> = (0..(rows * cols) as u32).map(NodeId).collect();
        let grid = Grid::build(rows, cols, slots);
        prop_assert!((grid.allocation_ratio() - 1.0 / grid.rows() as f64).abs() < 1e-12);
        for raw in ids {
            let col = grid.column_of(FilterId(raw));
            prop_assert!(col < grid.cols());
            // The filter's serving nodes: one per row, all in its column.
            let serving: Vec<NodeId> =
                (0..grid.rows()).map(|r| grid.node(r, col)).collect();
            prop_assert_eq!(serving.len(), grid.rows());
        }
    }
}
