//! Journal-replay equivalence, property-tested: after **any** generated
//! crash/restart sequence, a worker rebuilt by the supervisor from its
//! registration journal (base snapshot + since-log) must answer exactly
//! like a worker that had registered the same filters fresh. The witness
//! is a set of probe documents published after every revival: for each
//! probe the report does not name lost, the delivered set must equal the
//! brute-force match over the full filter population — a replay that
//! dropped a registration under-delivers, a replay that duplicated or
//! resurrected one over-delivers, and either diverges from the oracle.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_runtime::interleave::{run_schedule, InterleaveConfig, InterleaveReport, ScriptOp};
use move_runtime::OverflowPolicy;
use move_types::{DocId, Document, Filter, FilterId, MatchSemantics, NodeId, TermId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Interleaves live registrations among the publishes (every third slot),
/// so crashes race both document batches and registration journal writes.
fn interleaved_script(live: &[Filter], docs: &[Document]) -> Vec<ScriptOp> {
    let mut script = Vec::with_capacity(live.len() + docs.len());
    let mut live_iter = live.iter();
    for (i, d) in docs.iter().enumerate() {
        if i % 3 == 0 {
            if let Some(f) = live_iter.next() {
                script.push(ScriptOp::Register(f.clone()));
            }
        }
        script.push(ScriptOp::Publish(d.clone()));
    }
    for f in live_iter {
        script.push(ScriptOp::Register(f.clone()));
    }
    script
}

/// The fresh-registration oracle: each document's brute-force match set
/// over the filters registered before it in the script (faults change who
/// answers, never what the answer is).
fn expected_sets(pre: &[Filter], script: &[ScriptOp]) -> BTreeMap<DocId, BTreeSet<FilterId>> {
    let mut known: Vec<Filter> = pre.to_vec();
    let mut out = BTreeMap::new();
    for op in script {
        match op {
            ScriptOp::Register(f) => known.push(f.clone()),
            ScriptOp::Unregister(id) => known.retain(|f| f.id() != *id),
            ScriptOp::Publish(d) => {
                let want: BTreeSet<FilterId> = brute_force(&known, d, MatchSemantics::Boolean)
                    .into_iter()
                    .collect();
                out.insert(d.id(), want);
            }
            ScriptOp::Crash(_)
            | ScriptOp::Restart(_)
            | ScriptOp::Delay { .. }
            | ScriptOp::PinView { .. }
            | ScriptOp::Join
            | ScriptOp::CommitJoin
            | ScriptOp::CrashLane { .. } => {}
        }
    }
    out
}

/// Probe documents with ids disjoint from the workload stream, published
/// after the last revival so their delivery sets witness the replayed
/// index state.
fn probe_docs(vocab: u32, seed: u64) -> Vec<Document> {
    random_docs(4, vocab, 8, seed ^ 0xBEEF)
        .into_iter()
        .enumerate()
        .map(|(i, d)| Document::from_distinct_terms(1_000 + i as u64, d.terms().iter().copied()))
        .collect()
}

/// The at-most-once judgement shared by both properties: zero false
/// deliveries, books balanced exactly (the sim crashes a worker and drops
/// its queue in one atomic step), and exactness for every document the
/// report does not name lost or shed.
fn judge(label: &str, expected: &BTreeMap<DocId, BTreeSet<FilterId>>, out: &InterleaveReport) {
    for (doc, got) in &out.delivered {
        let want = expected.get(doc).cloned().unwrap_or_default();
        assert!(
            got.is_subset(&want),
            "{label} doc {doc}: false delivery {got:?} vs {want:?}"
        );
    }
    let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
    let lost: u64 = out.report.nodes.iter().map(|n| n.tasks_lost).sum();
    assert_eq!(
        out.report.tasks_dispatched,
        executed + lost,
        "{label}: dispatched must execute or be counted lost"
    );
    for (doc, want) in expected {
        if out.lost_docs.contains(doc) || out.shed_docs.contains(doc) {
            continue; // the documented at-most-once allowance
        }
        let got = out.delivered.get(doc).cloned().unwrap_or_default();
        assert_eq!(
            &got, want,
            "{label} doc {doc}: replayed state diverged from fresh registration"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every scheme and any seed-derived crash/restart weave, the
    /// post-replay index answers probe documents exactly like a fresh
    /// registration of the same filters.
    #[test]
    fn journal_replay_is_equivalent_to_fresh_registration(
        seed in 0u64..1_000_000,
        n_filters in 40u64..120,
        vocab in 20u32..80,
        n_faults in 1usize..4,
    ) {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(n_filters, vocab, seed);
        let (pre, live) = filters.split_at(filters.len() / 2);
        let docs = random_docs(10, vocab + 10, 8, seed ^ 0xD0C);

        let mut scheme: Box<dyn Dissemination + Send> = match seed % 3 {
            0 => Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
            1 => Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
            _ => Box::new(RsScheme::new(cfg).expect("valid config")),
        };
        for f in pre {
            scheme.register(f).expect("register");
        }
        let nodes = scheme.cluster().len() as u32;
        let name = scheme.name();

        let mut script = interleaved_script(live, &docs);
        let len = script.len();
        let mut victims = Vec::with_capacity(n_faults);
        for k in 0..n_faults {
            let v = NodeId(((seed >> (5 * k)) as u32).wrapping_add(k as u32) % nodes);
            let pos = ((seed >> (3 * k)) as usize + 7 * k) % len;
            // Inserting a fault op never reorders register/publish pairs,
            // so the fresh-registration oracle below still holds.
            script.insert(pos, ScriptOp::Crash(v));
            victims.push(v);
        }
        for &v in &victims {
            script.push(ScriptOp::Restart(v));
        }
        for p in probe_docs(vocab + 10, seed) {
            script.push(ScriptOp::Publish(p));
        }
        let expected = expected_sets(pre, &script);

        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 1 + (seed as usize % 3),
            overflow: OverflowPolicy::Block,
            batch_size: 1 + (seed as usize % 2),
            ..InterleaveConfig::default()
        };
        let out = run_schedule(scheme, script, &icfg)
            .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        prop_assert!(out.shed_docs.is_empty(), "{} must not shed under Block", name);
        judge(&format!("{name} seed {seed}"), &expected, &out);
    }

    /// The snapshot path: MOVE re-allocates mid-stream (the journal's base
    /// index is reset at each `AllocationUpdate`), then a worker crashes
    /// and is replayed from that *post-refresh* snapshot plus the since-log.
    /// Probes after the revival must still match fresh registration — a
    /// replay from a stale pre-refresh base would route and answer wrongly.
    #[test]
    fn snapshot_replay_survives_allocation_refresh(
        seed in 0u64..1_000_000,
        refresh_every in 4u64..10,
        crash_at in 6usize..18,
    ) {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 150; // tight capacity forces real grids
        cfg.refresh_every_docs = refresh_every;
        let mut filters = random_filters(150, 50, seed);
        for (i, f) in filters.iter_mut().enumerate() {
            if i % 3 == 0 {
                *f = Filter::new(f.id(), f.terms().iter().copied().chain([TermId(0)]));
            }
        }
        let sample = random_docs(30, 60, 10, seed ^ 0x5A);
        let docs = random_docs(20, 60, 10, seed ^ 0xD0C);

        let mut scheme = MoveScheme::new(cfg).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        let nodes = scheme.cluster().len() as u32;
        let victim = NodeId(seed as u32 % nodes);

        let mut script: Vec<ScriptOp> =
            docs.iter().map(|d| ScriptOp::Publish(d.clone())).collect();
        script.insert(crash_at, ScriptOp::Crash(victim));
        script.push(ScriptOp::Restart(victim));
        for p in probe_docs(60, seed) {
            script.push(ScriptOp::Publish(p));
        }
        let expected = expected_sets(&filters, &script);

        let icfg = InterleaveConfig {
            seed,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1 + (seed as usize % 2),
            ..InterleaveConfig::default()
        };
        let out = run_schedule(Box::new(scheme), script, &icfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert!(
            out.report.allocation_updates > 0,
            "refresh-every-{} over {} docs must re-allocate",
            refresh_every,
            docs.len()
        );
        judge(&format!("move refresh seed {seed}"), &expected, &out);
    }
}
