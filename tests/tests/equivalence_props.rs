//! Cross-scheme equivalence: the three dissemination schemes are different
//! *placements* of the same matching semantics, so for any filter set and
//! any document, IL, RS and MOVE must deliver exactly the same filter set —
//! and that set must equal the single-node brute-force oracle. 256
//! generated cases per property give every scheme pair (IL≡RS, IL≡MOVE,
//! RS≡MOVE) and every scheme-vs-oracle pair at least 256 comparisons.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_types::{Document, Filter, FilterId, MatchSemantics, TermId};
use proptest::prelude::*;

fn register_all(scheme: &mut dyn Dissemination, filters: &[Filter]) {
    for f in filters {
        scheme.register(f).expect("register");
    }
}

fn delivered(scheme: &mut dyn Dissemination, doc: &Document) -> Vec<FilterId> {
    scheme.publish(0.0, doc).expect("publish").matched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// IL ≡ RS ≡ MOVE ≡ brute force on a shared random workload.
    #[test]
    fn schemes_agree_pairwise_and_with_brute_force(
        seed in 0u64..1_000_000,
        n_filters in 30u64..150,
        vocab in 20u32..120,
        max_terms in 4usize..16,
    ) {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(n_filters, vocab, seed);
        let docs = random_docs(6, vocab + 10, max_terms, seed ^ 0xD0C);

        let mut il = IlScheme::new(cfg.clone()).expect("valid config");
        let mut rs = RsScheme::new(cfg.clone()).expect("valid config");
        let mut mv = MoveScheme::new(cfg).expect("valid config");
        register_all(&mut il, &filters);
        register_all(&mut rs, &filters);
        register_all(&mut mv, &filters);

        for d in &docs {
            let il_got = delivered(&mut il, d);
            let rs_got = delivered(&mut rs, d);
            let mv_got = delivered(&mut mv, d);
            let oracle = brute_force(&filters, d, MatchSemantics::Boolean);
            prop_assert_eq!(&il_got, &rs_got, "IL ≢ RS on doc {} (seed {})", d.id(), seed);
            prop_assert_eq!(&il_got, &mv_got, "IL ≢ MOVE on doc {} (seed {})", d.id(), seed);
            prop_assert_eq!(&rs_got, &mv_got, "RS ≢ MOVE on doc {} (seed {})", d.id(), seed);
            prop_assert_eq!(&il_got, &oracle, "IL ≢ oracle on doc {} (seed {})", d.id(), seed);
        }
    }

    /// The equivalence survives MOVE's adaptive allocation: after observing
    /// a skewed corpus and building real replica grids, MOVE still
    /// delivers exactly what untouched IL and the oracle deliver.
    #[test]
    fn equivalence_survives_explicit_allocation(
        seed in 0u64..1_000_000,
        hot_share in 2u64..6,
    ) {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 150; // tight capacity forces real grids
        let mut filters = random_filters(200, 60, seed);
        // Skew: every `hot_share`-th filter subscribes to term 0, giving
        // the allocator a hot term worth partitioning.
        for (i, f) in filters.iter_mut().enumerate() {
            if (i as u64).is_multiple_of(hot_share) {
                *f = Filter::new(f.id(), f.terms().iter().copied().chain([TermId(0)]));
            }
        }
        let sample = random_docs(30, 70, 10, seed ^ 0x5A);
        let docs = random_docs(6, 70, 12, seed ^ 0xD0C);

        let mut mv = MoveScheme::new(cfg.clone()).expect("valid config");
        let mut il = IlScheme::new(cfg).expect("valid config");
        register_all(&mut mv, &filters);
        register_all(&mut il, &filters);
        mv.observe_corpus(&sample);
        mv.allocate().expect("allocate");

        for d in &docs {
            let mv_got = delivered(&mut mv, d);
            let il_got = delivered(&mut il, d);
            let oracle = brute_force(&filters, d, MatchSemantics::Boolean);
            prop_assert_eq!(&mv_got, &il_got, "MOVE ≢ IL after allocation (seed {})", seed);
            prop_assert_eq!(&mv_got, &oracle, "MOVE ≢ oracle after allocation (seed {})", seed);
        }
    }

    /// The equivalence also holds *across* periodic allocation refreshes
    /// driven by the maintenance cycle: at every point in a document
    /// stream that repeatedly re-allocates, MOVE ≡ IL ≡ oracle.
    #[test]
    fn equivalence_survives_allocation_refreshes(
        seed in 0u64..1_000_000,
        refresh_every in 4u64..12,
    ) {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 150;
        cfg.refresh_every_docs = refresh_every;
        let mut filters = random_filters(200, 50, seed);
        for (i, f) in filters.iter_mut().enumerate() {
            if i % 3 == 0 {
                *f = Filter::new(f.id(), f.terms().iter().copied().chain([TermId(0)]));
            }
        }
        let sample = random_docs(30, 60, 10, seed ^ 0x5A);
        let docs = random_docs(3 * refresh_every + 2, 60, 10, seed ^ 0xD0C);

        let mut mv = MoveScheme::new(cfg.clone()).expect("valid config");
        let mut il = IlScheme::new(cfg).expect("valid config");
        register_all(&mut mv, &filters);
        register_all(&mut il, &filters);
        // Seed the first grids; under the proactive policy the periodic
        // maintenance refresh only re-allocates once a layout exists.
        mv.observe_corpus(&sample);
        mv.allocate().expect("allocate");

        let mut refreshes = 0u64;
        for d in &docs {
            let mv_got = delivered(&mut mv, d);
            let il_got = delivered(&mut il, d);
            let oracle = brute_force(&filters, d, MatchSemantics::Boolean);
            prop_assert_eq!(&mv_got, &il_got, "MOVE ≢ IL mid-stream (seed {})", seed);
            prop_assert_eq!(&mv_got, &oracle, "MOVE ≢ oracle mid-stream (seed {})", seed);
            // The same observe/allocate cycle the live router runs after
            // each publish; `true` means the layout was just rebuilt.
            if mv.maintenance(d).expect("maintenance") {
                refreshes += 1;
            }
        }
        prop_assert!(
            refreshes >= 2,
            "stream of {} docs at refresh-every-{} must re-allocate repeatedly, saw {}",
            docs.len(), refresh_every, refreshes
        );
    }
}
