//! Behaviour under node failure: deliveries stay a subset of the oracle
//! set, availability falls monotonically, replica rows fail over, and the
//! gossip membership converges.

use move_cluster::{FailureMode, Membership, NodeStatus};
use move_core::{Dissemination, PlacementStrategy};
use move_index::brute_force;
use move_integration_tests::random_docs;
use move_integration_tests::support::{
    allocated_move, assert_deliveries_sound, oracle_sets, sim_delivery,
};
use move_types::{MatchSemantics, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn deliveries_under_failure_are_a_subset_of_the_oracle() {
    let (mut scheme, filters) = allocated_move(PlacementStrategy::Hybrid, 1);
    let docs = random_docs(30, 90, 12, 0xD0C);
    let mut rng = StdRng::seed_from_u64(2);
    scheme
        .cluster_mut()
        .fail_fraction(0.25, FailureMode::RandomNodes, &mut rng);
    let oracle = oracle_sets(&filters, &docs);
    let delivered = sim_delivery(&mut scheme, &docs);
    assert_deliveries_sound("sim hybrid @0.25", &oracle, &delivered);
}

#[test]
fn availability_is_monotone_in_failures() {
    let (mut scheme, _) = allocated_move(PlacementStrategy::Hybrid, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut last = scheme.filter_availability();
    assert_eq!(last, 1.0);
    for _ in 0..4 {
        scheme
            .cluster_mut()
            .fail_fraction(0.15, FailureMode::RandomNodes, &mut rng);
        let now = scheme.filter_availability();
        assert!(now <= last + 1e-12, "availability rose after failures");
        last = now;
    }
    assert!(last > 0.0, "replication should keep something alive");
}

#[test]
fn rack_placement_is_most_fragile_under_rack_failure() {
    let mut results = Vec::new();
    for placement in [
        PlacementStrategy::Rack,
        PlacementStrategy::Ring,
        PlacementStrategy::Hybrid,
    ] {
        let (mut scheme, _) = allocated_move(placement, 5);
        let mut rng = StdRng::seed_from_u64(6);
        scheme
            .cluster_mut()
            .fail_fraction(0.33, FailureMode::RackCorrelated, &mut rng);
        results.push((placement, scheme.filter_availability()));
    }
    let rack = results[0].1;
    let ring = results[1].1;
    let hybrid = results[2].1;
    assert!(
        rack <= ring && rack <= hybrid,
        "rack placement should lose the most under rack failure: \
         rack {rack}, ring {ring}, hybrid {hybrid}"
    );
}

#[test]
fn failover_keeps_delivery_for_the_affected_terms() {
    let (mut scheme, filters) = allocated_move(PlacementStrategy::Hybrid, 7);
    // Find an allocated home with at least 2 replica rows and kill all of
    // row 0 except the home itself. (The victims may serve *other* homes
    // too, so the guarantee under test is scoped to this home's terms.)
    let grid_home = (0..12u32)
        .map(NodeId)
        .find(|&n| scheme.allocation(n).is_some_and(|g| g.rows() >= 2));
    let Some(home) = grid_home else {
        panic!("expected at least one multi-row grid");
    };
    let victims: Vec<NodeId> = {
        let grid = scheme.allocation(home).expect("grid");
        (0..grid.cols())
            .map(|c| grid.node(0, c))
            .filter(|&n| n != home)
            .collect()
    };
    for v in victims {
        scheme.cluster_mut().membership_mut().crash(v);
    }
    // A term homed at the allocated node.
    let term = (0..200u32)
        .map(move_types::TermId)
        .find(|&t| scheme.cluster().home_of_term(t) == home)
        .expect("some term is homed there");
    let doc = move_types::Document::from_distinct_terms(0u64, [term]);
    let got = scheme.publish(0.0, &doc).expect("publish").matched;
    let want = brute_force(&filters, &doc, MatchSemantics::Boolean);
    assert_eq!(
        got, want,
        "surviving replica rows must serve the home's terms"
    );
}

#[test]
fn gossip_converges_after_mass_failure() {
    let mut m = Membership::new(30, 6);
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..10 {
        m.gossip_round(&mut rng);
    }
    for n in [3u32, 7, 11, 19, 23] {
        m.crash(NodeId(n));
    }
    for _ in 0..60 {
        m.gossip_round(&mut rng);
    }
    assert!(m.converged(), "views should match ground truth");
    for o in m.live_nodes() {
        assert_eq!(m.status_in_view(o, NodeId(7)), NodeStatus::Down);
        assert_eq!(m.status_in_view(o, NodeId(0)), NodeStatus::Up);
    }
}
