//! Long-running churn: interleaved registrations, unregistrations,
//! publishes, re-allocations (with changing rules and grid modes) and
//! occasional failures+recoveries must never break delivery completeness
//! on live data.

use move_core::{Dissemination, FactorRule, GridMode, MoveScheme, SystemConfig};
use move_index::brute_force;
use move_types::{Document, Filter, FilterId, MatchSemantics, NodeId, TermId};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Register(u64, Vec<u32>),
    Unregister(u64),
    Publish(Vec<u32>),
    Reallocate(u8),
    PerTermReallocate,
    Crash(u32),
    RecoverAll,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let term = 0u32..60;
    let op = prop_oneof![
        5 => (0u64..100, prop::collection::vec(term.clone(), 1..4))
            .prop_map(|(id, ts)| Op::Register(id, ts)),
        2 => (0u64..100).prop_map(Op::Unregister),
        5 => prop::collection::btree_set(term, 1..10)
            .prop_map(|ts| Op::Publish(ts.into_iter().collect())),
        1 => (0u8..6).prop_map(Op::Reallocate),
        1 => Just(Op::PerTermReallocate),
        1 => (0u32..6).prop_map(Op::Crash),
        1 => Just(Op::RecoverAll),
    ];
    prop::collection::vec(op, 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn completeness_survives_arbitrary_churn(ops in arb_ops(), seed in 0u64..1000) {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 300;
        cfg.seed = seed;
        let mut scheme = MoveScheme::new(cfg).expect("valid config");
        let mut model: BTreeMap<u64, Filter> = BTreeMap::new();
        let mut doc_id = 0u64;
        let mut any_down = false;

        for op in ops {
            match op {
                Op::Register(id, terms) => {
                    if model.contains_key(&id) {
                        continue; // ids are unique in the model
                    }
                    let f = Filter::new(id, terms.into_iter().map(TermId));
                    scheme.register(&f).expect("register");
                    model.insert(id, f);
                }
                Op::Unregister(id) => {
                    let existed = model.remove(&id).is_some();
                    let got = scheme.unregister(FilterId(id)).expect("unregister");
                    prop_assert_eq!(got, existed);
                }
                Op::Publish(terms) => {
                    let d = Document::from_distinct_terms(doc_id, terms.into_iter().map(TermId));
                    doc_id += 1;
                    let got = scheme.publish(0.0, &d).expect("publish").matched;
                    let want = brute_force(model.values(), &d, MatchSemantics::Boolean);
                    if any_down {
                        // With dead nodes only soundness is guaranteed.
                        prop_assert!(got.iter().all(|id| want.contains(id)));
                    } else {
                        prop_assert_eq!(got, want);
                    }
                }
                Op::Reallocate(which) => {
                    let rule = [
                        FactorRule::Uniform,
                        FactorRule::SqrtQ,
                        FactorRule::SqrtBetaQ,
                        FactorRule::SqrtPQ,
                        FactorRule::SqrtLoad,
                        FactorRule::LoadBalance,
                    ][which as usize];
                    scheme.set_factor_rule(rule);
                    scheme.set_grid_mode(match which % 3 {
                        0 => GridMode::Optimal,
                        1 => GridMode::PureReplication,
                        _ => GridMode::PureSeparation,
                    });
                    scheme.allocate().expect("allocate");
                }
                Op::PerTermReallocate => {
                    scheme.allocate_per_term().expect("allocate per term");
                }
                Op::Crash(n) => {
                    scheme.cluster_mut().membership_mut().crash(NodeId(n));
                    any_down = true;
                }
                Op::RecoverAll => {
                    for n in 0..6u32 {
                        scheme.cluster_mut().membership_mut().recover(NodeId(n));
                    }
                    // Rebuild grids on the fully live cluster so delivery
                    // is exact again.
                    scheme.allocate().expect("allocate");
                    any_down = false;
                }
            }
        }
        prop_assert_eq!(scheme.registered_filters(), model.len() as u64);
    }
}
