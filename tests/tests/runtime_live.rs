//! The live engine's core invariant: under real concurrency — OS-thread
//! workers, bounded mailboxes, batching, allocation refreshes — the union
//! of filters delivered by `move-runtime` equals the brute-force match set,
//! for every scheme. Plus the backpressure stress case: tiny blocking
//! mailboxes must neither deadlock nor lose deliveries.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_runtime::{Engine, OverflowPolicy, RuntimeConfig, RuntimeReport};
use move_types::{Document, Filter, FilterId, MatchSemantics};
use std::collections::BTreeMap;
use std::time::Duration;

fn schemes(cfg: &SystemConfig) -> Vec<Box<dyn Dissemination + Send>> {
    vec![
        Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    ]
}

/// Tiny mailboxes and batches so every publish crosses the backpressure
/// machinery instead of hiding in slack capacity.
fn tight_config() -> RuntimeConfig {
    RuntimeConfig {
        mailbox_capacity: 2,
        command_capacity: 4,
        overflow: OverflowPolicy::Block,
        batch_size: 3,
        flush_interval: Duration::from_millis(1),
        ..RuntimeConfig::default()
    }
}

/// A fault-free run must report a quiet supervisor: no worker was ever
/// restarted, no document failed over, nothing was lost. Asserted on the
/// drained-engine report `shutdown()` returns, so it covers the full run.
fn assert_fault_free(name: &str, report: &RuntimeReport) {
    assert_eq!(report.restarts, 0, "{name}: restart in a fault-free run");
    assert_eq!(report.retries, 0, "{name}: retry in a fault-free run");
    assert_eq!(report.failovers, 0, "{name}: failover in a fault-free run");
    assert_eq!(
        report.tasks_lost, 0,
        "{name}: lost tasks in a fault-free run"
    );
}

/// Runs `engine.shutdown()` under a watchdog so a drain that wedges shows
/// up as a bounded, descriptive panic instead of a CI-level timeout. The
/// limit is a *bound*, not a sleep — the happy path returns the moment the
/// drain completes.
fn shutdown_within(engine: Engine, limit: Duration) -> RuntimeReport {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(engine.shutdown());
    });
    match rx.recv_timeout(limit) {
        Ok(result) => result.expect("clean shutdown"),
        Err(_) => panic!("engine shutdown exceeded {limit:?}: deadlock suspected"),
    }
}

#[test]
fn runtime_union_equals_brute_force_for_all_schemes() {
    for seed in [3u64, 11, 42] {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(250, 80, seed);
        let docs = random_docs(30, 100, 20, seed ^ 0xD0C);
        // Half the filters pre-registered (cloned into the worker shards at
        // start), half registered live through the engine.
        let (pre, live) = filters.split_at(filters.len() / 2);
        for mut scheme in schemes(&cfg) {
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let engine = Engine::start(scheme, tight_config()).expect("engine starts");
            for f in live {
                engine.register(f.clone());
            }
            for d in &docs {
                let got = engine.publish_sync(d.clone());
                let want = brute_force(&filters, d, MatchSemantics::Boolean);
                assert_eq!(got, want, "{name} diverged on doc {} (seed {seed})", d.id());
            }
            let report = engine.shutdown().expect("clean shutdown");
            assert_eq!(report.scheme, name);
            assert_eq!(report.docs_published, docs.len() as u64);
            assert_eq!(report.tasks_shed, 0, "Block policy never sheds");
            assert_fault_free(name, &report);
        }
    }
}

#[test]
fn runtime_move_stays_complete_across_allocation_refreshes() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 25; // several refresh cycles within the stream
    let seed = 7u64;
    let mut filters = random_filters(300, 60, seed);
    // Skew: every third filter contains term 0, giving the optimizer a hot
    // term worth replicating.
    for (i, f) in filters.iter_mut().enumerate() {
        if i % 3 == 0 {
            *f = Filter::new(
                f.id(),
                f.terms().iter().copied().chain([move_types::TermId(0)]),
            );
        }
    }
    let sample = random_docs(40, 70, 10, seed ^ 0x5A);
    let docs = random_docs(120, 70, 12, seed ^ 0xD0C);

    let mut scheme = MoveScheme::new(cfg).expect("valid config");
    for f in &filters {
        scheme.register(f).expect("register");
    }
    scheme.observe_corpus(&sample);
    scheme.allocate().expect("allocate");

    let engine = Engine::start(Box::new(scheme), tight_config()).expect("engine starts");
    for d in &docs {
        let got = engine.publish_sync(d.clone());
        let want = brute_force(&filters, d, MatchSemantics::Boolean);
        assert_eq!(got, want, "move diverged on doc {}", d.id());
    }
    let report = engine.shutdown().expect("clean shutdown");
    assert_fault_free("move", &report);
    assert!(
        report.allocation_updates > 0,
        "the stream must have re-shipped shards at least once \
         ({} docs, refresh every 25)",
        docs.len()
    );
}

/// The ISSUE's stress bar: ≥4 nodes, ≥10k documents, small bounded
/// mailboxes under the blocking policy — the run must terminate (no
/// deadlock) and deliver exactly the brute-force set for every document
/// (nothing lost, including work still queued when shutdown starts).
#[test]
fn stress_blocking_backpressure_loses_nothing() {
    let cfg = SystemConfig::small_test(); // 6 nodes over 2 racks
    let seed = 0xBEEF;
    let filters = random_filters(300, 50, seed);
    let docs = random_docs(10_000, 60, 8, seed ^ 0xD0C);

    for mut scheme in schemes(&cfg) {
        for f in &filters {
            scheme.register(f).expect("register");
        }
        let name = scheme.name();
        let engine = Engine::start(scheme, tight_config()).expect("engine starts");
        let deliveries = engine.deliveries();
        for d in &docs {
            engine.publish(d.clone());
        }
        // No flush: shutdown itself must drain every queued batch, within
        // a watchdog bound so a backpressure deadlock fails fast.
        let report = shutdown_within(engine, Duration::from_secs(120));
        assert_eq!(report.docs_published, docs.len() as u64);
        assert_eq!(report.tasks_shed, 0);
        assert_fault_free(name, &report);

        let mut by_doc: BTreeMap<_, Vec<FilterId>> = BTreeMap::new();
        for d in deliveries.try_iter() {
            by_doc.entry(d.doc).or_default().extend(d.matched);
        }
        for d in &docs {
            let want = brute_force(&filters, d, MatchSemantics::Boolean);
            let mut got = by_doc.remove(&d.id()).unwrap_or_default();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, want, "{name} lost deliveries for doc {}", d.id());
        }
        assert!(by_doc.is_empty(), "{name} delivered for unknown docs");
    }
}

/// Live control-plane churn (DESIGN.md §12): subscribers register,
/// re-register with different predicates (displacement), and unregister
/// while documents stream through the running engine. Predicates come from
/// a small shared pool, so most registrations alias a live canonical and
/// take the Subscribe-broadcast fast path; unregistering the last
/// subscriber of a canonical takes the full RemoveCanonical path. Every
/// publish must still deliver exactly the brute-force set over the live
/// subscriber population, and the report's churn counters must balance.
#[test]
fn live_churn_stays_exact_and_counts_balance() {
    let pool: Vec<Vec<move_types::TermId>> = (0..8)
        .map(|i| {
            (0..1 + i % 3)
                .map(|k| move_types::TermId(((i * 5 + k * 7) % 20) as u32))
                .collect()
        })
        .collect();
    for seed in [2u64, 19] {
        let cfg = {
            let mut c = SystemConfig::small_test();
            c.seed = seed;
            c
        };
        let docs = random_docs(60, 20, 6, seed ^ 0xD0C);
        for mut scheme in schemes(&cfg) {
            // A few static subscribers registered before start, cloned into
            // the worker shards (two share pool predicate 0 → aggregated).
            let mut model: BTreeMap<u64, Filter> = BTreeMap::new();
            for s in 0..4u64 {
                let f = Filter::new(s, pool[(s as usize) % 2].iter().copied());
                scheme.register(&f).expect("register");
                model.insert(s, f);
            }
            let name = scheme.name();
            let engine = Engine::start(scheme, tight_config()).expect("engine starts");
            let mut expected_regs = 0u64;
            let mut expected_unregs = 0u64;
            for (i, d) in docs.iter().enumerate() {
                // Deterministic churn weave: register (often aliasing),
                // displace, or unregister between publishes.
                let step = (seed as usize).wrapping_add(i * 7);
                match step % 4 {
                    0 | 1 => {
                        let s = (step % 12) as u64;
                        let f = Filter::new(s, pool[step % pool.len()].iter().copied());
                        engine.register(f.clone());
                        // Re-registering the identical predicate is a NoOp
                        // on the control plane and does not count.
                        if model.get(&s).map(Filter::terms) != Some(f.terms()) {
                            expected_regs += 1;
                        }
                        model.insert(s, f);
                    }
                    2 => {
                        let s = (step % 12) as u64;
                        engine.unregister(FilterId(s));
                        if model.remove(&s).is_some() {
                            expected_unregs += 1;
                        }
                    }
                    _ => {}
                }
                let got = engine.publish_sync(d.clone());
                let want = brute_force(model.values(), d, MatchSemantics::Boolean);
                assert_eq!(got, want, "{name} diverged on doc {} (seed {seed})", d.id());
            }
            let report = engine.shutdown().expect("clean shutdown");
            assert_fault_free(name, &report);
            assert_eq!(report.registrations, expected_regs, "{name} registrations");
            assert_eq!(
                report.unregistrations, expected_unregs,
                "{name} unregistrations"
            );
            assert!(
                report.canonical_hits > 0,
                "{name}: a shared pool of 8 predicates across 12 subscribers \
                 must alias at least once"
            );
            // Aggregation collapses the live population onto the pool.
            assert_eq!(report.canonical_filters as usize, {
                let distinct: std::collections::BTreeSet<&[move_types::TermId]> =
                    model.values().map(Filter::terms).collect();
                distinct.len()
            });
            assert!(report.aggregation_bytes > 0, "{name}: zero footprint");
        }
    }
}

/// Under `Shed`, overflow drops whole batches but the books still balance:
/// every routed task is either dispatched or counted shed, and whatever was
/// delivered is sound (a subset of the brute-force set per document).
#[test]
fn shed_policy_accounts_for_every_task_and_stays_sound() {
    let cfg = SystemConfig::small_test();
    let seed = 0x5EED;
    // Many filters per posting list make each task slow enough for the
    // router to outrun the tiny mailboxes.
    let filters = random_filters(4_000, 20, seed);
    let docs = random_docs(400, 25, 10, seed ^ 0xD0C);

    let config = RuntimeConfig {
        mailbox_capacity: 1,
        overflow: OverflowPolicy::Shed,
        batch_size: 1,
        ..RuntimeConfig::default()
    };
    let mut scheme: Box<dyn Dissemination + Send> =
        Box::new(RsScheme::new(cfg).expect("valid config"));
    for f in &filters {
        scheme.register(f).expect("register");
    }
    let engine = Engine::start(scheme, config).expect("engine starts");
    let deliveries = engine.deliveries();
    for d in &docs {
        engine.publish(d.clone());
    }
    let report = engine.shutdown().expect("clean shutdown");
    assert_fault_free("rs", &report);
    // RS floods each document to every member of one replica group:
    // 6 nodes over 3 groups = exactly 2 full-index tasks per document.
    assert_eq!(
        report.tasks_dispatched + report.tasks_shed,
        2 * docs.len() as u64,
        "dispatch accounting must cover every routed task"
    );

    let docs_by_id: BTreeMap<_, &Document> = docs.iter().map(|d| (d.id(), d)).collect();
    for delivery in deliveries.try_iter() {
        let doc = docs_by_id[&delivery.doc];
        let want = brute_force(&filters, doc, MatchSemantics::Boolean);
        for f in &delivery.matched {
            assert!(
                want.contains(f),
                "unsound delivery {f} for doc {}",
                doc.id()
            );
        }
    }
}
