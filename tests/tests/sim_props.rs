//! Properties of the discrete-event queueing simulator: work conservation,
//! makespan bounds, and monotonicity under congestion.

use move_cluster::{Job, QueueSim, Stage, Task};
use move_types::NodeId;
use proptest::prelude::*;

fn arb_jobs(max_nodes: u32) -> impl Strategy<Value = (usize, Vec<Job>)> {
    (1..max_nodes).prop_flat_map(move |n| {
        let task = (0..n, 0.001f64..1.0).prop_map(|(node, service)| Task {
            node: NodeId(node),
            service,
        });
        let stage = prop::collection::vec(task, 0..5).prop_map(Stage::new);
        let job = (0.0f64..10.0, prop::collection::vec(stage, 0..3))
            .prop_map(|(arrival, stages)| Job { arrival, stages });
        prop::collection::vec(job, 1..40).prop_map(move |jobs| (n as usize, jobs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_job_completes_and_work_is_conserved((n, jobs) in arb_jobs(8)) {
        let out = QueueSim::new().run(n, &jobs);
        prop_assert_eq!(out.completed, jobs.len() as u64);
        // Without congestion, per-node busy time equals the sum of services.
        let mut expect = vec![0.0f64; n];
        for j in &jobs {
            for s in &j.stages {
                for t in &s.tasks {
                    expect[t.node.as_usize()] += t.service;
                }
            }
        }
        for (got, want) in out.node_busy.iter().zip(&expect) {
            prop_assert!((got - want).abs() < 1e-9, "busy {got} != {want}");
        }
        // Makespan is at least the busiest node's work and at least the
        // latest arrival of a job that has work.
        let max_busy = expect.iter().copied().fold(0.0, f64::max);
        prop_assert!(out.makespan + 1e-9 >= max_busy);
        prop_assert!(out.mean_latency >= 0.0);
        prop_assert!(out.p99_latency >= 0.0);
    }

    #[test]
    fn congestion_never_speeds_things_up((n, jobs) in arb_jobs(6)) {
        let plain = QueueSim::new().run(n, &jobs);
        let congested = QueueSim::with_congestion(1.5, 0.5).run(n, &jobs);
        prop_assert!(congested.makespan + 1e-9 >= plain.makespan);
        prop_assert!(congested.mean_latency + 1e-9 >= plain.mean_latency);
        prop_assert_eq!(congested.completed, plain.completed);
    }

    #[test]
    fn makespan_monotone_in_added_single_stage_jobs((n, jobs) in arb_jobs(6)) {
        // Graham's anomaly makes this false for multi-stage precedence
        // graphs, so flatten every job to a single stage first: with plain
        // FIFO servers, extra work can only delay completions.
        let flat: Vec<Job> = jobs
            .iter()
            .map(|j| Job {
                arrival: j.arrival,
                stages: vec![Stage::new(
                    j.stages.iter().flat_map(|s| s.tasks.clone()).collect(),
                )],
            })
            .collect();
        prop_assume!(flat.len() >= 2);
        let fewer = QueueSim::new().run(n, &flat[..flat.len() - 1]);
        let all = QueueSim::new().run(n, &flat);
        prop_assert!(all.makespan + 1e-9 >= fewer.makespan);
    }
}
