//! The router-pool equivalence property: a pool of N publisher-facing
//! ingest threads routing against immutable snapshots must produce the
//! *same deliveries* as the serial router — per document, the identical
//! union of matched filters (which both must equal the brute-force oracle)
//! — and MOVE's sharded `q′ᵢ` statistics must merge to exactly the totals
//! the serial observer accumulates. Plus pool-mode accounting (per-thread
//! counters summing into the report totals) and fault tolerance (crash +
//! supervised restart under a 4-thread pool stays at-most-once).

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_runtime::{
    Engine, FaultPlan, OverflowPolicy, RuntimeConfig, RuntimeReport, SupervisionPolicy,
};
use move_types::{DocId, Document, Filter, FilterId, MatchSemantics};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

type DeliverySets = BTreeMap<DocId, BTreeSet<FilterId>>;

fn schemes(cfg: &SystemConfig) -> Vec<Box<dyn Dissemination + Send>> {
    vec![
        Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    ]
}

fn pool_config(publishers: usize) -> RuntimeConfig {
    RuntimeConfig {
        mailbox_capacity: 4,
        command_capacity: 8,
        overflow: OverflowPolicy::Block,
        batch_size: 2,
        flush_interval: Duration::from_millis(1),
        publishers,
        ..RuntimeConfig::default()
    }
}

/// Runs the full register-then-publish workload through one engine and
/// returns the report plus the per-document delivery unions, with shutdown
/// under a watchdog bound.
fn run_engine(
    scheme: Box<dyn Dissemination + Send>,
    config: RuntimeConfig,
    plan: FaultPlan,
    live: &[Filter],
    docs: &[Document],
) -> (RuntimeReport, DeliverySets) {
    let engine = Engine::start_with_faults(scheme, config, plan).expect("engine starts");
    let deliveries = engine.deliveries();
    for f in live {
        engine.register(f.clone());
    }
    for d in docs {
        engine.publish(d.clone());
    }
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(engine.shutdown());
    });
    let report = match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(result) => result.expect("clean shutdown"),
        Err(_) => panic!("pool engine shutdown exceeded 120s: deadlock suspected"),
    };
    let mut delivered = DeliverySets::new();
    for d in deliveries.try_iter() {
        delivered.entry(d.doc).or_default().extend(d.matched);
    }
    (report, delivered)
}

/// The equivalence property: for every scheme, a 4-thread ingest pool
/// delivers exactly the same per-document filter sets as the serial
/// router, and both equal the brute-force oracle. Registrations are issued
/// live through the engine before the stream, so the pool's synchronous
/// registration barrier is on the tested path.
#[test]
fn pool_delivers_the_same_sets_as_the_serial_router() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(250, 80, 0x9001);
    let docs = random_docs(120, 100, 12, 0x9001 ^ 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);

    for publishers in [1usize, 4] {
        for mut scheme in schemes(&cfg) {
            for f in pre {
                scheme.register(f).expect("register");
            }
            let name = scheme.name();
            let (report, delivered) = run_engine(
                scheme,
                pool_config(publishers),
                FaultPlan::none(),
                live,
                &docs,
            );
            assert_eq!(
                report.docs_published,
                docs.len() as u64,
                "{name} x{publishers}: completed"
            );
            assert_eq!(
                report.tasks_shed, 0,
                "{name} x{publishers}: Block never sheds"
            );
            assert_eq!(report.tasks_lost, 0, "{name} x{publishers}: fault-free");
            if publishers > 1 {
                assert_eq!(
                    report.ingest.len(),
                    publishers,
                    "{name}: one metrics entry per ingest thread"
                );
                let routed: u64 = report.ingest.iter().map(|m| m.docs_routed).sum();
                assert_eq!(routed, docs.len() as u64, "{name}: pool routed everything");
                // Fault-free, so the data plane lives entirely in ingest
                // hands: per-thread counters must sum *exactly* to the
                // report totals — nothing dispatched or shed off-ledger.
                let dispatched: u64 = report.ingest.iter().map(|m| m.tasks_dispatched).sum();
                let shed: u64 = report.ingest.iter().map(|m| m.tasks_shed).sum();
                assert_eq!(
                    dispatched, report.tasks_dispatched,
                    "{name}: per-thread dispatch must sum to the report total"
                );
                assert_eq!(
                    shed, report.tasks_shed,
                    "{name}: per-thread shed must sum to the report total"
                );
            } else {
                assert!(report.ingest.is_empty(), "{name}: serial mode has no pool");
            }
            // Serial and pool both land on the brute-force oracle — hence
            // on each other: the delivery-set equivalence property.
            for d in &docs {
                let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
                    .into_iter()
                    .collect();
                let got = delivered.get(&d.id()).cloned().unwrap_or_default();
                assert_eq!(
                    got,
                    want,
                    "{name} x{publishers}: doc {} diverged from oracle",
                    d.id()
                );
            }
        }
    }
}

/// MOVE's sharded statistics: the per-thread `q′ᵢ` deltas the pool merges
/// at shutdown must equal — exactly, counter for counter — what the serial
/// router's inline observer accumulates over the identical stream.
#[test]
fn pool_sharded_stats_merge_to_the_serial_totals() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(200, 60, 0x57A7);
    let docs = random_docs(150, 80, 10, 0x57A7 ^ 0xD0C);
    let (pre, live) = filters.split_at(filters.len() / 2);

    let mut q_hits = Vec::new();
    for publishers in [1usize, 2, 4] {
        let mut scheme = MoveScheme::new(cfg.clone()).expect("valid config");
        for f in pre {
            scheme.register(f).expect("register");
        }
        let (report, _) = run_engine(
            Box::new(scheme),
            pool_config(publishers),
            FaultPlan::none(),
            live,
            &docs,
        );
        assert!(
            report.q_hits.iter().sum::<u64>() > 0,
            "x{publishers}: the statistics observer never fired"
        );
        if publishers > 1 {
            let routed: u64 = report.ingest.iter().map(|m| m.docs_routed).sum();
            assert_eq!(
                routed, report.docs_published,
                "x{publishers}: per-thread routing must sum to docs_published"
            );
            let dispatched: u64 = report.ingest.iter().map(|m| m.tasks_dispatched).sum();
            assert_eq!(
                dispatched, report.tasks_dispatched,
                "x{publishers}: per-thread dispatch must sum to the report total"
            );
        }
        q_hits.push((publishers, report.q_hits));
    }
    for pair in q_hits.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "merged q'_i diverged between {} and {} publishers",
            pair[0].0, pair[1].0
        );
    }
}

/// Pool mode under MOVE's allocation-refresh cycle: the control thread's
/// stop-the-world fence must keep delivery exact while grids are re-shipped
/// mid-stream with four ingest threads routing concurrently.
#[test]
fn pool_stays_exact_across_allocation_refreshes() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // force real grids
    cfg.refresh_every_docs = 40; // several fenced refreshes in the stream
    let filters = random_filters(300, 60, 0xFE4CE);
    let sample = random_docs(40, 70, 10, 0x5A);
    let docs = random_docs(200, 70, 12, 0xFE4CE ^ 0xD0C);

    let mut scheme = MoveScheme::new(cfg).expect("valid config");
    for f in &filters {
        scheme.register(f).expect("register");
    }
    scheme.observe_corpus(&sample);
    scheme.allocate().expect("allocate");

    let (report, delivered) = run_engine(
        Box::new(scheme),
        pool_config(4),
        FaultPlan::none(),
        &[],
        &docs,
    );
    assert!(
        report.allocation_updates > 0,
        "the fenced refresh cycle never fired ({} docs, refresh every 40)",
        docs.len()
    );
    assert_eq!(report.tasks_lost, 0);
    for d in &docs {
        let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
            .into_iter()
            .collect();
        let got = delivered.get(&d.id()).cloned().unwrap_or_default();
        assert_eq!(got, want, "doc {} diverged across a fenced refresh", d.id());
    }
}

/// Shed accounting under the pool: per-thread shed/dispatch counters must
/// sum into the report totals so no routed task goes unaccounted, and
/// whatever was delivered stays sound.
#[test]
fn pool_shed_accounting_covers_every_task() {
    let cfg = SystemConfig::small_test();
    // Many filters per posting make tasks slow enough for four ingest
    // threads to outrun the tiny mailboxes.
    let filters = random_filters(4_000, 20, 0x5EED);
    let docs = random_docs(400, 25, 10, 0x5EED ^ 0xD0C);

    let config = RuntimeConfig {
        mailbox_capacity: 1,
        overflow: OverflowPolicy::Shed,
        batch_size: 1,
        publishers: 4,
        ..RuntimeConfig::default()
    };
    let mut scheme: Box<dyn Dissemination + Send> =
        Box::new(RsScheme::new(cfg).expect("valid config"));
    for f in &filters {
        scheme.register(f).expect("register");
    }
    let (report, delivered) = run_engine(scheme, config, FaultPlan::none(), &[], &docs);
    assert_eq!(report.docs_published, docs.len() as u64);
    // RS floods each document to every member of one replica group:
    // 6 nodes over 3 groups = exactly 2 full-index tasks per document.
    assert_eq!(
        report.tasks_dispatched + report.tasks_shed,
        2 * docs.len() as u64,
        "pool dispatch accounting must cover every routed task"
    );
    let from_threads: u64 = report
        .ingest
        .iter()
        .map(|m| m.tasks_dispatched + m.tasks_shed)
        .sum();
    assert_eq!(
        from_threads,
        2 * docs.len() as u64,
        "per-thread counters must carry the whole data plane"
    );
    let routed: u64 = report.ingest.iter().map(|m| m.docs_routed).sum();
    assert_eq!(
        routed,
        docs.len() as u64,
        "per-thread routing must sum to docs_published even while shedding"
    );
    for (doc, got) in &delivered {
        let d = docs.iter().find(|d| d.id() == *doc).expect("known doc");
        let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
            .into_iter()
            .collect();
        assert!(got.is_subset(&want), "unsound delivery for doc {doc}");
    }
}

/// A seeded 30% kill under the 4-thread pool with restart supervision:
/// ingest threads hand stranded batches to the control thread, which must
/// restart every victim from its journal — delivery stays at-most-once
/// (sound everywhere, exact for every document the report does not name
/// lost) exactly as in the serial engine's fault suite.
#[test]
fn pool_crash_restart_stays_at_most_once() {
    let cfg = SystemConfig::small_test();
    let filters = random_filters(250, 80, 0xFA17);
    let docs = random_docs(200, 100, 12, 0xFA17 ^ 0xD0C);
    let plan = FaultPlan::kill_fraction(cfg.nodes, 0.3, 60, 0x9C3);
    let victims = plan.crashed_nodes().len() as u64;
    assert!(victims > 0, "the plan must kill someone");

    let mut scheme = IlScheme::new(cfg).expect("valid config");
    for f in &filters {
        scheme.register(f).expect("register");
    }
    let (report, delivered) = run_engine(
        Box::new(scheme),
        RuntimeConfig {
            supervision: SupervisionPolicy::default(),
            ..pool_config(4)
        },
        plan,
        &[],
        &docs,
    );
    assert_eq!(report.docs_published, docs.len() as u64);
    assert!(
        report.restarts >= victims,
        "every victim must be restarted ({} restarts for {victims} victims)",
        report.restarts
    );
    assert_eq!(report.failovers, 0, "restart mode must not fail over");
    // Every document is still routed exactly once by exactly one ingest
    // thread, faults or not — the per-thread ledger covers the stream.
    let routed: u64 = report.ingest.iter().map(|m| m.docs_routed).sum();
    assert_eq!(
        routed,
        docs.len() as u64,
        "per-thread routing must sum to docs_published under faults"
    );

    // The report's settle barrier replaces any guess about discovery
    // latency: it names the published-count at which the last death was
    // discovered. It can only trip at-or-after the kill point, and every
    // lost document must sit at-or-before the barrier plus the bounded
    // in-flight window (pool threads' hands + victim mailboxes) — losses
    // are confined to the kill window, never the settled tail.
    let settled = report
        .deaths_settled_at
        .expect("a kill plan must discover deaths");
    assert!(
        settled >= 60,
        "deaths cannot settle before they are injected"
    );
    assert!(settled <= docs.len() as u64);
    let in_flight = 4 * (4 * 2 + 1) as u64 + 16; // publishers * (mailbox * batch + hand) + slack
    let lost: BTreeSet<DocId> = report.lost_docs.iter().copied().collect();
    for id in &lost {
        assert!(
            id.0 <= settled + in_flight,
            "doc {id} lost beyond the settle barrier ({settled}) + in-flight bound"
        );
    }
    for d in &docs {
        let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
            .into_iter()
            .collect();
        let got = delivered.get(&d.id()).cloned().unwrap_or_default();
        assert!(
            got.is_subset(&want),
            "false delivery for doc {} under faults",
            d.id()
        );
        if !lost.contains(&d.id()) {
            assert_eq!(
                got,
                want,
                "non-lost doc {} must be delivered exactly",
                d.id()
            );
        }
    }
}
