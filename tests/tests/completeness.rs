//! The system's core invariant: for every scheme and every published
//! document, the delivered filter set equals the brute-force match set —
//! including after MOVE's allocation, under both matching semantics, and
//! through register/unregister churn.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_integration_tests::{random_docs, random_filters};
use move_types::{FilterId, MatchSemantics};
use proptest::prelude::*;

fn schemes(cfg: &SystemConfig) -> Vec<Box<dyn Dissemination>> {
    vec![
        Box::new(MoveScheme::new(cfg.clone()).expect("valid config")),
        Box::new(IlScheme::new(cfg.clone()).expect("valid config")),
        Box::new(RsScheme::new(cfg.clone()).expect("valid config")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schemes_deliver_exactly_the_brute_force_set(
        seed in 0u64..1_000,
        n_filters in 50u64..400,
        vocab in 30u32..300,
    ) {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(n_filters, vocab, seed);
        let docs = random_docs(15, vocab + 20, 25, seed ^ 0xD0C);
        for mut scheme in schemes(&cfg) {
            for f in &filters {
                scheme.register(f).expect("register");
            }
            for d in &docs {
                let got = scheme.publish(0.0, d).expect("publish").matched;
                let want = brute_force(&filters, d, MatchSemantics::Boolean);
                prop_assert_eq!(
                    &got, &want,
                    "{} diverged on doc {}", scheme.name(), d.id()
                );
            }
        }
    }

    #[test]
    fn move_stays_complete_after_allocation(
        seed in 0u64..1_000,
        hot_share in 2u64..5,
    ) {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 150; // force grids
        let mut filters = random_filters(300, 60, seed);
        // Skew: every `hot_share`-th filter contains term 0.
        for (i, f) in filters.iter_mut().enumerate() {
            if (i as u64).is_multiple_of(hot_share) {
                *f = move_types::Filter::new(
                    f.id(),
                    f.terms().iter().copied().chain([move_types::TermId(0)]),
                );
            }
        }
        let sample = random_docs(40, 70, 10, seed ^ 0x5A);
        let docs = random_docs(20, 70, 12, seed ^ 0xD0C);

        let mut scheme = MoveScheme::new(cfg).expect("valid config");
        for f in &filters {
            scheme.register(f).expect("register");
        }
        scheme.observe_corpus(&sample);
        scheme.allocate().expect("allocate");
        for d in &docs {
            let got = scheme.publish(0.0, d).expect("publish").matched;
            let want = brute_force(&filters, d, MatchSemantics::Boolean);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn threshold_semantics_complete_everywhere(
        seed in 0u64..1_000,
        threshold in 0.3f64..1.0,
    ) {
        let mut cfg = SystemConfig::small_test();
        cfg.semantics = MatchSemantics::similarity_threshold(threshold);
        let filters = random_filters(200, 50, seed);
        let docs = random_docs(10, 60, 15, seed ^ 0xD0C);
        for mut scheme in schemes(&cfg) {
            for f in &filters {
                scheme.register(f).expect("register");
            }
            for d in &docs {
                let got = scheme.publish(0.0, d).expect("publish").matched;
                let want = brute_force(&filters, d, cfg.semantics);
                prop_assert_eq!(
                    &got, &want,
                    "{} diverged at threshold {}", scheme.name(), threshold
                );
            }
        }
    }

    #[test]
    fn unregistered_filters_never_delivered(
        seed in 0u64..1_000,
        drop_every in 2u64..5,
    ) {
        let cfg = SystemConfig::small_test();
        let filters = random_filters(150, 40, seed);
        let docs = random_docs(10, 50, 12, seed ^ 0xD0C);
        for mut scheme in schemes(&cfg) {
            for f in &filters {
                scheme.register(f).expect("register");
            }
            let kept: Vec<_> = filters
                .iter()
                .filter(|f| f.id().0 % drop_every != 0)
                .cloned()
                .collect();
            for f in &filters {
                if f.id().0 % drop_every == 0 {
                    prop_assert!(scheme.unregister(f.id()).expect("unregister"));
                }
            }
            for d in &docs {
                let got = scheme.publish(0.0, d).expect("publish").matched;
                let want = brute_force(&kept, d, MatchSemantics::Boolean);
                prop_assert_eq!(&got, &want, "{} kept a ghost filter", scheme.name());
                prop_assert!(got.iter().all(|id: &FilterId| !id.0.is_multiple_of(drop_every)));
            }
        }
    }
}
