//! Model-based property test of the LSM column-family store: any sequence
//! of put/delete/flush/compact operations must agree with a plain ordered
//! map on every read.

use move_cluster::ColumnFamily;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Flush,
    Compact,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ];
    prop::collection::vec(op, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lsm_agrees_with_model(ops in arb_ops(), memtable_limit in 1usize..16) {
        let mut cf = ColumnFamily::new(memtable_limit);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    cf.put(vec![*k], vec![*v]);
                    model.insert(vec![*k], vec![*v]);
                }
                Op::Delete(k) => {
                    cf.delete(vec![*k]);
                    model.remove(&vec![*k]);
                }
                Op::Flush => cf.flush(),
                Op::Compact => cf.compact(),
            }
        }
        // Point reads agree on every possible key.
        for k in 0..=255u8 {
            let got = cf.get(&[k]);
            let want = model.get(&vec![k]);
            prop_assert_eq!(got.as_deref(), want.map(Vec::as_slice), "key {}", k);
        }
        // Full scan agrees, in order.
        let scan: Vec<(Vec<u8>, Vec<u8>)> = cf
            .scan_prefix(b"")
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scan, want);
        prop_assert_eq!(cf.live_len(), model.len());
    }
}
