//! The clone-counter oracle for copy-on-write shards: a live MOVE run
//! whose allocation refresh fires repeatedly must perform **zero** deep
//! `InvertedIndex` copies — boot snapshots, supervisor journal bases, and
//! every re-shipped shard are `Arc` shares of the scheme's own indexes.
//!
//! This file deliberately holds a single `#[test]`: the counter
//! ([`move_index::deep_clone_count`]) is process-wide, so any concurrently
//! running test that clones an index (property tests do, on purpose)
//! would pollute the delta. Integration-test files compile to separate
//! binaries, which gives this assertion a process of its own.

use move_core::{Dissemination, MoveScheme, SystemConfig};
use move_index::{brute_force, deep_clone_count};
use move_integration_tests::{random_docs, random_filters};
use move_runtime::{Engine, RuntimeConfig};
use move_types::{FilterId, MatchSemantics};
use std::collections::BTreeSet;

#[test]
fn live_refresh_cycle_performs_zero_deep_clones() {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 150; // small enough to force real grids
    cfg.refresh_every_docs = 10; // several refreshes across the run
    let filters = random_filters(200, 50, 0xC0F);
    let docs = random_docs(60, 60, 10, 0xD0C);

    let mut scheme = MoveScheme::new(cfg).expect("valid config");
    // Register everything *before* boot: the scheme's shards are uniquely
    // owned here, so registration itself is copy-free, and from boot
    // onward the engine must stay copy-free by sharing, not duplicating.
    for f in &filters {
        scheme.register(f).expect("register");
    }
    scheme.observe_corpus(&docs);
    scheme.allocate().expect("allocate");

    let before = deep_clone_count();
    let engine = Engine::start(Box::new(scheme), RuntimeConfig::default()).expect("engine starts");
    let deliveries = engine.deliveries();
    for d in &docs {
        engine.publish(d.clone());
    }
    engine.flush();
    let report = engine.shutdown().expect("clean shutdown");
    let after = deep_clone_count();

    assert!(
        report.allocation_updates > 0,
        "workload never exercised the refresh path"
    );
    assert_eq!(
        after - before,
        0,
        "a boot snapshot, journal base, or allocation refresh deep-copied \
         an index shard instead of sharing it"
    );

    // The shared shards must still deliver exactly: union per doc equals
    // brute force over the registered filters.
    let mut got: std::collections::BTreeMap<move_types::DocId, BTreeSet<FilterId>> =
        std::collections::BTreeMap::new();
    for d in deliveries.try_iter() {
        got.entry(d.doc).or_default().extend(d.matched);
    }
    for d in &docs {
        let want: BTreeSet<FilterId> = brute_force(&filters, d, MatchSemantics::Boolean)
            .into_iter()
            .collect();
        let have = got.get(&d.id()).cloned().unwrap_or_default();
        assert_eq!(have, want, "doc {} delivery drifted", d.id());
    }
}
