//! The sim failure oracles, run against the **live** engine with a seeded
//! [`FaultPlan`]: a kill-30% plan crashes workers mid-run while real
//! threads drain real mailboxes, and the same shared oracles that judge
//! the simulator (`move_integration_tests::support`) judge the wall-clock
//! run — zero false deliveries, completion under a watchdog bound, and
//! post-crash availability no worse than the sim's Fig. 9d prediction for
//! the identical placement and dead set.

use move_core::{Dissemination, PlacementStrategy};
use move_integration_tests::random_docs;
use move_integration_tests::support::{
    allocated_move, assert_deliveries_sound, crash_all, delivery_ratio, oracle_sets, sim_delivery,
    DeliverySets,
};
use move_runtime::{
    Engine, FaultPlan, OverflowPolicy, RuntimeConfig, RuntimeReport, SupervisionPolicy,
};
use move_types::DocId;
use std::collections::BTreeSet;
use std::time::Duration;

const NODES: usize = 12;
const KILL_AT: u64 = 60;

fn fault_config(supervision: SupervisionPolicy) -> RuntimeConfig {
    RuntimeConfig {
        mailbox_capacity: 4,
        command_capacity: 16,
        overflow: OverflowPolicy::Block,
        batch_size: 2,
        flush_interval: Duration::from_millis(1),
        supervision,
        ..RuntimeConfig::default()
    }
}

/// Drives the engine through `docs` under `plan` and returns the report
/// plus per-document delivery sets, with shutdown under a watchdog bound
/// (a wedged drain is a failed test, not a hung CI job).
fn run_live(
    scheme: Box<dyn Dissemination + Send>,
    config: RuntimeConfig,
    plan: FaultPlan,
    docs: &[move_types::Document],
) -> (RuntimeReport, DeliverySets) {
    let engine = Engine::start_with_faults(scheme, config, plan).expect("engine starts");
    let deliveries = engine.deliveries();
    for d in docs {
        engine.publish(d.clone());
    }
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(engine.shutdown());
    });
    let report = match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(result) => result.expect("clean shutdown"),
        Err(_) => panic!("engine shutdown exceeded 120s under faults: deadlock suspected"),
    };
    let mut delivered: DeliverySets = DeliverySets::new();
    for d in deliveries.try_iter() {
        delivered.entry(d.doc).or_default().extend(d.matched);
    }
    (report, delivered)
}

/// The acceptance criterion: a seeded plan kills 30% of the workers
/// mid-run under the failover policy. The live engine must complete the
/// workload, deliver zero false pairs, and — for documents published after
/// the last crash landed — deliver *exactly* what the simulator delivers
/// on the identical placement with the identical dead set, so the live
/// availability is ≥ the sim's Fig. 9d prediction by construction.
#[test]
fn kill_30_percent_failover_matches_the_sim_prediction() {
    for (placement, name) in [
        (PlacementStrategy::Hybrid, "move"),
        (PlacementStrategy::Ring, "ring"),
        (PlacementStrategy::Rack, "rack"),
    ] {
        let (scheme, filters) = allocated_move(placement, 11);
        let docs = random_docs(200, 90, 12, 0xD0C);
        let oracle = oracle_sets(&filters, &docs);
        let plan = FaultPlan::kill_fraction(NODES, 0.3, KILL_AT, 0x9C0);
        let dead = plan.crashed_nodes();
        assert_eq!(dead.len(), 4, "30% of 12 nodes");

        let (report, delivered) = run_live(
            Box::new(scheme),
            fault_config(SupervisionPolicy::failover()),
            plan,
            &docs,
        );
        assert_eq!(
            report.docs_published,
            docs.len() as u64,
            "{name}: completed"
        );
        assert_eq!(report.restarts, 0, "{name}: failover policy never restarts");
        assert_deliveries_sound(name, &oracle, &delivered);

        // The sim prediction: same placement (same seed ⇒ byte-identical
        // grids), same dead set, same documents.
        let (mut sim, _) = allocated_move(placement, 11);
        crash_all(&mut sim, &dead);
        // (Ring/Hybrid replication can keep availability at exactly 1.0
        // for this dead set — that's the point of Fig. 9d — so no lower
        // bound is asserted on the prediction itself.)
        let availability = sim.filter_availability();
        let predicted = sim_delivery(&mut sim, &docs);

        // Documents routed once every crash has landed *and* been
        // discovered (the supervisor learns lazily, on the first failed
        // send) must match the sim set exactly — unless the report names
        // them lost (a batch that reached a victim's mailbox during the
        // staggered kill window dies in the crash drain: at-most-once).
        // The report says exactly when the last death was discovered, so
        // the tail cut is not a guess about discovery latency.
        let settled = report
            .deaths_settled_at
            .expect("a kill plan must discover deaths");
        let cut = settled.max(KILL_AT + dead.len() as u64 + 8);
        let lost: BTreeSet<DocId> = report.lost_docs.iter().copied().collect();
        let tail: Vec<DocId> = docs
            .iter()
            .map(move_types::Document::id)
            .filter(|id| id.0 > cut)
            .collect();
        let mut exact = 0usize;
        for id in &tail {
            if lost.contains(id) {
                continue;
            }
            let got = delivered.get(id).cloned().unwrap_or_default();
            let want = predicted.get(id).cloned().unwrap_or_default();
            assert_eq!(
                got, want,
                "{name}: post-crash doc {id} diverged from the sim prediction"
            );
            exact += 1;
        }
        assert!(exact > 0, "{name}: the tail comparison never fired");

        let surviving_tail: Vec<DocId> = tail
            .iter()
            .copied()
            .filter(|id| !lost.contains(id))
            .collect();
        let live_ratio = delivery_ratio(&oracle, &delivered, &surviving_tail);
        let sim_ratio = delivery_ratio(&oracle, &predicted, &surviving_tail);
        assert!(
            live_ratio >= sim_ratio - 1e-12,
            "{name}: live availability {live_ratio} fell below the sim \
             prediction {sim_ratio} (filter_availability {availability})"
        );
    }
}

/// The same 30% kill under **restart** supervision: the supervisor must
/// respawn every victim from its registration journal, so routing never
/// degrades — every document the report does not name lost is delivered
/// exactly per the full fault-free oracle.
#[test]
fn kill_30_percent_with_restarts_is_at_most_once() {
    let (scheme, filters) = allocated_move(PlacementStrategy::Hybrid, 13);
    let docs = random_docs(200, 90, 12, 0xD0C ^ 13);
    let oracle = oracle_sets(&filters, &docs);
    let plan = FaultPlan::kill_fraction(NODES, 0.3, KILL_AT, 0x9C1);
    let victims = plan.crashed_nodes().len() as u64;

    let (report, delivered) = run_live(
        Box::new(scheme),
        fault_config(SupervisionPolicy::default()),
        plan,
        &docs,
    );
    assert_eq!(report.docs_published, docs.len() as u64);
    assert!(
        report.restarts >= victims,
        "every victim must be restarted at least once \
         ({} restarts for {victims} victims)",
        report.restarts
    );
    assert_eq!(report.failovers, 0, "restart mode must not fail over");
    assert_deliveries_sound("move restart @0.3", &oracle, &delivered);

    let lost: BTreeSet<DocId> = report.lost_docs.iter().copied().collect();
    for d in &docs {
        if lost.contains(&d.id()) {
            continue; // the documented at-most-once allowance
        }
        let got = delivered.get(&d.id()).cloned().unwrap_or_default();
        assert_eq!(
            got,
            oracle[&d.id()],
            "non-lost doc {} must be delivered exactly",
            d.id()
        );
    }
}

/// The availability-monotone oracle, live: the delivered-pair ratio over
/// post-crash documents never rises as the kill fraction grows (the same
/// plan seed makes the smaller kill's victim set a prefix of the larger's,
/// so the dead sets are nested). Ratios are taken over each run's
/// *surviving* post-crash documents — routing-determined deliveries, not
/// in-flight race noise — which is what makes this deterministic.
#[test]
fn live_availability_is_monotone_in_the_kill_fraction() {
    let mut last = f64::INFINITY;
    for kill in [0.0, 0.2, 0.4] {
        let (scheme, filters) = allocated_move(PlacementStrategy::Hybrid, 17);
        let docs = random_docs(120, 90, 12, 0xD0C ^ 17);
        let oracle = oracle_sets(&filters, &docs);
        let plan = FaultPlan::kill_fraction(NODES, kill, 30, 0x9C2);
        let (report, delivered) = run_live(
            Box::new(scheme),
            fault_config(SupervisionPolicy::failover()),
            plan,
            &docs,
        );
        assert_deliveries_sound("monotone sweep", &oracle, &delivered);
        let lost: BTreeSet<DocId> = report.lost_docs.iter().copied().collect();
        let tail: Vec<DocId> = docs
            .iter()
            .map(move_types::Document::id)
            .filter(|id| id.0 > 48 && !lost.contains(id))
            .collect();
        let ratio = delivery_ratio(&oracle, &delivered, &tail);
        if kill == 0.0 {
            let everything: Vec<DocId> = docs.iter().map(move_types::Document::id).collect();
            let full = delivery_ratio(&oracle, &delivered, &everything);
            assert!(
                (full - 1.0).abs() < 1e-12,
                "fault-free live run must deliver everything (got {full})"
            );
            assert_eq!(report.tasks_lost, 0);
        }
        assert!(
            ratio <= last + 1e-12,
            "availability rose from {last} to {ratio} at kill={kill}"
        );
        last = ratio;
    }
}
