//! Control-plane aggregation equivalence (DESIGN.md §12).
//!
//! The aggregating index collapses identical predicates to one canonical
//! filter whose posting entries are stored once, expanding matches back to
//! subscriber ids at delivery. These properties pin the only contract that
//! matters: under **any** interleaving of register / unregister / publish —
//! including subscriber-id displacement (the same id re-registering with a
//! different predicate) and MOVE's allocation refreshes rebuilding every
//! node index mid-stream — the delivery sets are byte-identical to both
//! the brute-force oracle over the live (non-canonical) subscriber set and
//! a verbatim (aggregation-off) twin scheme fed the same operations.

use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_types::{Document, Filter, FilterId, MatchSemantics, TermId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Distinct predicates in the shared pool. Small on purpose: with far more
/// subscribers than predicates, most registrations alias an existing
/// canonical — the regime aggregation exists for.
const POOL: usize = 10;

#[derive(Debug, Clone)]
enum Op {
    /// Register `subscriber` under pool predicate `predicate` (mod POOL).
    /// A live subscriber re-registering takes the displacement path.
    Register {
        subscriber: u64,
        predicate: usize,
    },
    Unregister(u64),
    Publish(Vec<u32>),
}

/// The shared predicate pool: POOL distinct sorted term sets over a small
/// vocabulary, sized 1–3 terms.
fn predicate_pool() -> Vec<Vec<TermId>> {
    (0..POOL)
        .map(|i| {
            let len = 1 + i % 3;
            (0..len)
                .map(|k| TermId(((i * 7 + k * 5) % 24) as u32))
                .collect()
        })
        .collect()
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        5 => (0u64..32, 0usize..POOL)
            .prop_map(|(subscriber, predicate)| Op::Register { subscriber, predicate }),
        2 => (0u64..32).prop_map(Op::Unregister),
        4 => prop::collection::btree_set(0u32..24, 1..8)
            .prop_map(|ts| Op::Publish(ts.into_iter().collect())),
    ];
    prop::collection::vec(op, 1..48)
}

/// Drives one interleaving against an aggregated scheme and its verbatim
/// twin, asserting byte-identical deliveries against the brute-force
/// oracle at every publish.
fn check_interleaving(
    label: &str,
    aggregated: &mut dyn Dissemination,
    verbatim: &mut dyn Dissemination,
    ops: &[Op],
) {
    let pool = predicate_pool();
    let mut model: BTreeMap<u64, Filter> = BTreeMap::new();
    let mut doc_id = 0u64;
    for op in ops {
        match op {
            Op::Register {
                subscriber,
                predicate,
            } => {
                let f = Filter::new(*subscriber, pool[*predicate].iter().copied());
                if model.contains_key(subscriber) {
                    // The aggregated scheme displaces internally; the
                    // verbatim twin models the same op as leave-then-join.
                    verbatim
                        .unregister(FilterId(*subscriber))
                        .expect("unregister");
                }
                aggregated.register(&f).expect("register aggregated");
                verbatim.register(&f).expect("register verbatim");
                model.insert(*subscriber, f);
            }
            Op::Unregister(subscriber) => {
                let existed = model.remove(subscriber).is_some();
                let got_a = aggregated
                    .unregister(FilterId(*subscriber))
                    .expect("unregister");
                let got_v = verbatim
                    .unregister(FilterId(*subscriber))
                    .expect("unregister");
                prop_assert_eq!(got_a, existed, "{}: aggregated presence", label);
                prop_assert_eq!(got_v, existed, "{}: verbatim presence", label);
            }
            Op::Publish(terms) => {
                let d = Document::from_distinct_terms(doc_id, terms.iter().copied().map(TermId));
                doc_id += 1;
                let got_a = aggregated.publish(0.0, &d).expect("publish").matched;
                let got_v = verbatim.publish(0.0, &d).expect("publish").matched;
                let want = brute_force(model.values(), &d, MatchSemantics::Boolean);
                prop_assert_eq!(&got_a, &want, "{}: aggregated vs oracle", label);
                prop_assert_eq!(&got_a, &got_v, "{}: aggregated vs verbatim", label);
            }
        }
    }
    // Bookkeeping invariants: subscriber count tracks the model, canonical
    // count tracks the distinct live predicates, and the aggregation layer
    // reports a real footprint whenever it holds anything.
    prop_assert_eq!(
        aggregated.registered_filters(),
        model.len() as u64,
        "{}: subscriber count",
        label
    );
    let distinct: BTreeSet<&[TermId]> = model.values().map(Filter::terms).collect();
    prop_assert_eq!(
        aggregated.canonical_filters(),
        distinct.len() as u64,
        "{}: canonical count",
        label
    );
    prop_assert_eq!(verbatim.canonical_filters(), model.len() as u64);
    if !model.is_empty() {
        prop_assert!(
            aggregated.aggregation_bytes() > 0,
            "{}: zero footprint",
            label
        );
    }
}

fn config(seed: u64, aggregate: bool) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.capacity_per_node = 400;
    cfg.seed = seed;
    cfg.aggregate_filters = aggregate;
    // MOVE only: frequent refreshes, so most interleavings cross at least
    // one full allocation rebuild (grids recomputed, indexes rebuilt).
    cfg.refresh_every_docs = 5;
    cfg
}

proptest! {
    // 256 interleavings, each driven through all three schemes.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn aggregated_delivery_is_byte_identical(ops in arb_ops(), seed in 0u64..1000) {
        let mut il = IlScheme::new(config(seed, true)).expect("il");
        let mut il_v = IlScheme::new(config(seed, false)).expect("il");
        check_interleaving("il", &mut il, &mut il_v, &ops);

        let mut rs = RsScheme::new(config(seed, true)).expect("rs");
        let mut rs_v = RsScheme::new(config(seed, false)).expect("rs");
        check_interleaving("rs", &mut rs, &mut rs_v, &ops);

        // MOVE crosses allocation refreshes mid-interleaving: every 5th
        // publish rebuilds the grids and node indexes from the canonical
        // directory, so the equivalence also covers rebuilt state.
        let mut mv = MoveScheme::new(config(seed, true)).expect("move");
        let mut mv_v = MoveScheme::new(config(seed, false)).expect("move");
        check_interleaving("move", &mut mv, &mut mv_v, &ops);
    }
}
