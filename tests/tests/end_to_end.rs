//! Full-pipeline integration: raw text through tokenization, stop-word
//! removal and Porter stemming, into registration and dissemination, with
//! VSM ranking of the delivered documents — the Google-Alerts-style flow
//! the paper's introduction motivates.

use move_core::{Dissemination, MoveScheme, SystemConfig};
use move_index::vsm::{cosine_score, Idf};
use move_text::TextPipeline;
use move_types::{FilterId, TermDictionary};

#[test]
fn alerts_pipeline_from_raw_text() {
    let pipeline = TextPipeline::default();
    let mut dict = TermDictionary::new();

    // Three users register interests in plain language.
    let subscriptions = [
        (1u64, "rust programming language"),
        (2u64, "football world cup"),
        (3u64, "electric vehicles batteries"),
    ];
    let mut system = MoveScheme::new(SystemConfig::small_test()).expect("valid config");
    for (id, text) in subscriptions {
        let f = pipeline.filter(id, text, &mut dict);
        system.register(&f).expect("register");
    }

    // A newsroom publishes articles.
    let articles = [
        (
            1u64,
            "The Rust programming language shipped a new release with faster compile times",
        ),
        (
            2u64,
            "The world cup final drew a record football audience last night",
        ),
        (
            3u64,
            "New battery chemistry promises cheaper electric vehicles by next year",
        ),
        (4u64, "Local bakery wins prize for sourdough"),
    ];
    let mut deliveries: Vec<(u64, Vec<FilterId>)> = Vec::new();
    for (id, text) in articles {
        let doc = pipeline.document(id, text, &mut dict);
        let out = system.publish(0.0, &doc).expect("publish");
        deliveries.push((id, out.matched));
    }

    assert_eq!(
        deliveries[0].1,
        vec![FilterId(1)],
        "rust article → rust fan"
    );
    assert_eq!(
        deliveries[1].1,
        vec![FilterId(2)],
        "cup article → football fan"
    );
    assert_eq!(deliveries[2].1, vec![FilterId(3)], "ev article → ev fan");
    assert!(deliveries[3].1.is_empty(), "bakery article matches nobody");
}

#[test]
fn stemming_bridges_morphology_end_to_end() {
    let pipeline = TextPipeline::default();
    let mut dict = TermDictionary::new();
    let f = pipeline.filter(9u64, "connected", &mut dict);
    let mut system = MoveScheme::new(SystemConfig::small_test()).expect("valid config");
    system.register(&f).expect("register");
    let doc = pipeline.document(0u64, "new connections in the network", &mut dict);
    let out = system.publish(0.0, &doc).expect("publish");
    assert_eq!(out.matched, vec![FilterId(9)]);
}

#[test]
fn vsm_ranks_delivered_documents_sensibly() {
    let pipeline = TextPipeline::default();
    let mut dict = TermDictionary::new();
    let filter = pipeline.filter(1u64, "rust compiler", &mut dict);
    let corpus: Vec<_> = [
        "the rust compiler got incremental compilation improvements today",
        "a rust conference announced its speaker lineup",
        "compiler engineers discussed optimization passes",
        "gardening tips for the early spring season",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| pipeline.document(i as u64, text, &mut dict))
    .collect();
    let idf = Idf::from_corpus(&corpus);
    let mut scores: Vec<(u64, f64)> = corpus
        .iter()
        .map(|d| (d.id().0, cosine_score(&filter, d, &idf)))
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    assert_eq!(scores[0].0, 0, "the doc with both terms ranks first");
    assert_eq!(scores[3].1, 0.0, "the gardening doc scores zero");
}
