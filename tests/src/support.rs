//! Failure-oracle helpers shared between the simulated failure suite
//! (`tests/failure.rs`), the live fault-injected suite
//! (`tests/failure_live.rs`), and the journal-replay property tests —
//! so the sim and the live engine are judged by the *same* oracles.

use crate::{random_docs, random_filters};
use move_core::{Dissemination, MoveScheme, PlacementStrategy, SystemConfig};
use move_index::brute_force;
use move_types::{DocId, Document, Filter, FilterId, MatchSemantics, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-document delivery sets, the shape both the sim's `publish` results
/// and the live engine's delivery stream reduce to.
pub type DeliverySets = BTreeMap<DocId, BTreeSet<FilterId>>;

/// The §VI failure-experiment fixture: a 12-node / 3-rack allocated MOVE
/// scheme (real replica grids) with 600 registered filters, observed and
/// allocated, plus the filters for oracle computation. Deterministic in
/// `seed` — building it twice gives byte-identical placements, which is
/// what lets the live suite re-create "the same cluster" for its sim-side
/// prediction.
pub fn allocated_move(placement: PlacementStrategy, seed: u64) -> (MoveScheme, Vec<Filter>) {
    let mut cfg = SystemConfig {
        nodes: 12,
        racks: 3,
        capacity_per_node: 300,
        expected_terms: 10_000,
        placement,
        ..SystemConfig::default()
    };
    cfg.seed = seed;
    let filters = random_filters(600, 80, seed);
    let sample = random_docs(60, 90, 12, seed ^ 0x5A);
    let mut scheme = MoveScheme::new(cfg).expect("valid config");
    for f in &filters {
        scheme.register(f).expect("register");
    }
    scheme.observe_corpus(&sample);
    scheme.allocate().expect("allocate");
    (scheme, filters)
}

/// The brute-force oracle: the exact match set per document over the full
/// filter population (what a fault-free run must deliver).
pub fn oracle_sets(filters: &[Filter], docs: &[Document]) -> DeliverySets {
    docs.iter()
        .map(|d| {
            let want: BTreeSet<FilterId> = brute_force(filters, d, MatchSemantics::Boolean)
                .into_iter()
                .collect();
            (d.id(), want)
        })
        .collect()
}

/// The subset-of-oracle soundness check (the paper's "no false
/// deliveries"): every delivered (document, filter) pair must appear in
/// the oracle. Panics with `label` context on the first violation.
pub fn assert_deliveries_sound(label: &str, oracle: &DeliverySets, delivered: &DeliverySets) {
    for (doc, got) in delivered {
        let want = oracle.get(doc).cloned().unwrap_or_default();
        assert!(
            got.is_subset(&want),
            "{label}: false delivery for doc {doc}: got {got:?}, oracle {want:?}"
        );
    }
}

/// Delivered-pair availability over `docs`: delivered (doc, filter) pairs
/// divided by oracle pairs — the delivery-side analog of the scheme's
/// `filter_availability` (the Fig. 9d metric). Returns 1.0 when the
/// oracle expects nothing.
pub fn delivery_ratio(oracle: &DeliverySets, delivered: &DeliverySets, docs: &[DocId]) -> f64 {
    let mut want_pairs = 0usize;
    let mut got_pairs = 0usize;
    for doc in docs {
        let want = oracle.get(doc).cloned().unwrap_or_default();
        let got = delivered.get(doc).cloned().unwrap_or_default();
        want_pairs += want.len();
        got_pairs += got.intersection(&want).count();
    }
    if want_pairs == 0 {
        1.0
    } else {
        got_pairs as f64 / want_pairs as f64
    }
}

/// Publishes `docs` through a (possibly degraded) sim scheme and collects
/// its per-document delivery sets — the sim-side prediction the live
/// engine is compared against.
pub fn sim_delivery(scheme: &mut MoveScheme, docs: &[Document]) -> DeliverySets {
    docs.iter()
        .map(|d| {
            let got: BTreeSet<FilterId> = scheme
                .publish(0.0, d)
                .expect("sim publish")
                .matched
                .into_iter()
                .collect();
            (d.id(), got)
        })
        .collect()
}

/// Crashes `nodes` in the scheme's membership — the sim-side mirror of a
/// live [`FaultPlan`](move_runtime::FaultPlan)'s crash set.
pub fn crash_all(scheme: &mut MoveScheme, nodes: &[NodeId]) {
    for &n in nodes {
        scheme.cluster_mut().membership_mut().crash(n);
    }
}
