//! Shared helpers for the MOVE integration-test suite.

#![forbid(unsafe_code)]

use move_types::{Document, Filter, TermId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod support;

/// Generates `n` random filters of 1–3 terms over `vocab` terms.
pub fn random_filters(n: u64, vocab: u32, seed: u64) -> Vec<Filter> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let len = rng.gen_range(1..=3);
            Filter::new(id, (0..len).map(|_| TermId(rng.gen_range(0..vocab))))
        })
        .collect()
}

/// Generates `n` random documents of up to `max_terms` distinct terms.
pub fn random_docs(n: u64, vocab: u32, max_terms: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let len = rng.gen_range(1..=max_terms);
            let mut terms: Vec<u32> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();
            terms.sort_unstable();
            terms.dedup();
            Document::from_distinct_terms(id, terms.into_iter().map(TermId))
        })
        .collect()
}
