//! A Google-Alerts-style service: users subscribe with keyword queries,
//! a newsroom publishes a stream of headlines, and each user receives a
//! VSM-ranked digest of the articles that matched their filter — the
//! fine-grained push filtering the paper's introduction motivates.
//!
//! ```text
//! cargo run -p move-examples --bin news_alerts
//! ```

use move_core::{Dissemination, MoveScheme, SystemConfig};
use move_examples::section;
use move_index::vsm::{cosine_score, Idf};
use move_text::TextPipeline;
use move_types::{Document, FilterId, TermDictionary};
use std::collections::HashMap;

fn main() {
    let pipeline = TextPipeline::default();
    let mut dict = TermDictionary::new();
    let mut system = MoveScheme::new(SystemConfig::small_test()).expect("valid config");

    section("subscriptions");
    let subscriptions: &[(u64, &str, &str)] = &[
        (1, "alice@example.org", "electric vehicles charging"),
        (2, "bob@example.org", "interest rates inflation"),
        (3, "carol@example.org", "space launch satellites"),
        (4, "dave@example.org", "electric rates"),
    ];
    for &(id, who, query) in subscriptions {
        let f = pipeline.filter(id, query, &mut dict);
        system.register(&f).expect("register");
        println!("{who} subscribed to {query:?}");
    }

    section("incoming wire stories");
    let wire: &[&str] = &[
        "Charging networks for electric vehicles expand into rural areas",
        "Central bank holds interest rates steady as inflation cools",
        "Private company completes satellite launch from coastal space port",
        "Electric utilities propose new rates for overnight charging",
        "Rain expected through the weekend",
    ];

    // Publish everything, remembering which articles matched which user.
    let mut inbox: HashMap<FilterId, Vec<Document>> = HashMap::new();
    let mut corpus: Vec<Document> = Vec::new();
    for (i, text) in wire.iter().enumerate() {
        let doc = pipeline.document(i as u64, text, &mut dict);
        let out = system.publish(i as f64 * 0.1, &doc).expect("publish");
        println!("story {i}: {} recipient(s)", out.matched.len());
        for id in out.matched {
            inbox.entry(id).or_default().push(doc.clone());
        }
        corpus.push(doc);
    }

    section("ranked digests");
    // Rank each user's digest with tf-idf cosine relevance (the VSM
    // extension of §III-A).
    let idf = Idf::from_corpus(&corpus);
    for &(id, who, query) in subscriptions {
        let filter = pipeline.filter(id, query, &mut dict);
        let mut digest: Vec<(f64, u64)> = inbox
            .get(&FilterId(id))
            .map(|docs| {
                docs.iter()
                    .map(|d| (cosine_score(&filter, d, &idf), d.id().0))
                    .collect()
            })
            .unwrap_or_default();
        digest.sort_by(|a, b| b.0.total_cmp(&a.0));
        println!("\n{who} ({query:?}):");
        if digest.is_empty() {
            println!("    (no matching stories)");
        }
        for (score, story) in digest {
            println!("    [{score:.3}] {}", wire[story as usize]);
        }
    }
}
