//! An RSS-aggregator cluster at workload scale: millions-of-filters-shaped
//! traces (scaled down) over a 20-node simulated cluster, comparing the
//! three dissemination schemes of the paper side by side and showing
//! MOVE's allocation and failure behaviour.
//!
//! ```text
//! cargo run -p move-examples --release --bin rss_cluster
//! ```

use move_cluster::{FailureMode, QueueSim};
use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_examples::section;
use move_workload::{DocumentGenerator, FilterGenerator, MsnSpec, RankCoupling, TrecSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let vocab = 8_000;
    let mut rng = StdRng::seed_from_u64(42);

    section("generating a calibrated workload");
    let msn = MsnSpec::scaled(vocab);
    let filters = FilterGenerator::new(&msn)
        .expect("calibratable")
        .trace(40_000, &mut rng);
    let trec = TrecSpec::wt().scaled(4_000);
    let coupling =
        RankCoupling::with_overlap(4_000, vocab, trec.top_k, trec.top_k_overlap, &mut rng)
            .expect("valid coupling");
    let dgen = DocumentGenerator::new(&trec, coupling).expect("calibratable");
    let sample = dgen.corpus(200, &mut rng);
    let docs = dgen.corpus(1_000, &mut rng);
    println!(
        "{} filters (mean {:.2} terms), {} feed items (mean {:.1} terms)",
        filters.len(),
        filters.iter().map(move_types::Filter::len).sum::<usize>() as f64 / filters.len() as f64,
        docs.len(),
        docs.iter()
            .map(move_types::Document::distinct_terms)
            .sum::<usize>() as f64
            / docs.len() as f64
    );

    // The bench harness's cost model at 1:50 scale: posting volumes shrink
    // with the workload, so the per-posting cost rises to keep scan time
    // comparable to seek/transfer time (see move-bench's `paper_system`).
    let cost = move_cluster::CostModel {
        y_s: 4e-4,
        y_p: 2e-7 / 0.02,
        mem_capacity: 240_000,
        ..move_cluster::CostModel::default()
    };
    let config = SystemConfig {
        capacity_per_node: 60_000,
        expected_terms: vocab,
        cost,
        ..SystemConfig::default()
    };

    section("side-by-side dissemination");
    let mut schemes: Vec<Box<dyn Dissemination>> = vec![
        {
            let mut m = MoveScheme::new(config.clone()).expect("valid config");
            for f in &filters {
                m.register(f).expect("register");
            }
            m.observe_corpus(&sample);
            m.allocate().expect("allocate");
            Box::new(m)
        },
        {
            let mut s = IlScheme::new(config.clone()).expect("valid config");
            for f in &filters {
                s.register(f).expect("register");
            }
            Box::new(s)
        },
        {
            let mut s = RsScheme::new(config.clone()).expect("valid config");
            for f in &filters {
                s.register(f).expect("register");
            }
            Box::new(s)
        },
    ];
    for scheme in &mut schemes {
        scheme.cluster_mut().ledgers_mut().reset();
        let mut jobs = Vec::with_capacity(docs.len());
        let mut deliveries = 0u64;
        for d in &docs {
            let out = scheme.publish(0.0, d).expect("publish");
            deliveries += out.matched.len() as u64;
            jobs.push(out.job);
        }
        let sim = QueueSim::new().run(config.nodes, &jobs);
        println!(
            "{:>4}: {:>8.1} docs/s batch throughput, {:>9} deliveries, p99 latency {:.1} ms",
            scheme.name(),
            sim.throughput,
            deliveries,
            sim.p99_latency * 1e3
        );
    }

    section("failure drill (rack-correlated, 30% of nodes)");
    let mut m = MoveScheme::new(config.clone()).expect("valid config");
    for f in &filters {
        m.register(f).expect("register");
    }
    m.observe_corpus(&sample);
    m.allocate().expect("allocate");
    let dead = m
        .cluster_mut()
        .fail_fraction(0.3, FailureMode::RackCorrelated, &mut rng);
    println!(
        "{} nodes down -> {:.1}% of filter registrations still reachable",
        dead.len(),
        m.filter_availability() * 100.0
    );
    let delivered: u64 = docs
        .iter()
        .map(|d| m.publish(0.0, d).expect("publish").matched.len() as u64)
        .sum();
    println!("deliveries under failure: {delivered}");
}
