//! Quickstart: register keyword filters, publish documents, receive
//! deliveries.
//!
//! ```text
//! cargo run -p move-examples --bin quickstart
//! ```

use move_core::{Dissemination, MoveScheme, SystemConfig};
use move_examples::section;
use move_text::TextPipeline;
use move_types::TermDictionary;

fn main() {
    section("MOVE quickstart");

    // A simulated 6-node cluster with the default cost model.
    let mut system = MoveScheme::new(SystemConfig::small_test()).expect("valid config");
    let pipeline = TextPipeline::default();
    let mut dict = TermDictionary::new();

    // Users register their interests as plain keyword queries — exactly the
    // Google-Alerts interaction the paper models.
    let users = [
        (1u64, "alice", "rust async runtime"),
        (2u64, "bob", "champions league football"),
        (3u64, "carol", "rust football"),
    ];
    for (id, name, query) in users {
        let filter = pipeline.filter(id, query, &mut dict);
        system.register(&filter).expect("register");
        println!("registered {name}: {query:?} -> {filter:?}");
    }

    section("publishing documents");
    let articles = [
        "The Rust async runtime ecosystem keeps growing",
        "Last night's football match decided the champions league group",
        "A quiet day on the markets",
    ];
    for (i, text) in articles.iter().enumerate() {
        let doc = pipeline.document(i as u64, text, &mut dict);
        let out = system.publish(0.0, &doc).expect("publish");
        let recipients: Vec<&str> = out
            .matched
            .iter()
            .filter_map(|id| users.iter().find(|(uid, ..)| *uid == id.0))
            .map(|(_, name, _)| *name)
            .collect();
        println!("{text:?}\n    -> delivered to {recipients:?}");
    }

    section("cluster accounting");
    let ledgers = system.cluster().ledgers();
    for (i, ledger) in ledgers.all().iter().enumerate() {
        if ledger.docs_received > 0 {
            println!(
                "node n{i}: {} docs, {} posting lists, {} postings, {:.3} ms busy",
                ledger.docs_received,
                ledger.lists_retrieved,
                ledger.postings_scanned,
                ledger.busy_seconds * 1e3
            );
        }
    }
}
