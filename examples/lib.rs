//! Shared helpers for the MOVE examples.

/// Prints a section header so example output reads as a walkthrough.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
