//! Fine-grained social-feed filtering — the paper's Facebook motivation:
//! "users are interested in only some relevant postings of the followed
//! users … and want to filter out all other postings". Followers attach
//! keyword filters to the accounts they follow; only matching posts are
//! delivered, and the demo contrasts that with coarse follow-everything
//! fan-out.
//!
//! ```text
//! cargo run -p move-examples --bin social_feed
//! ```

use move_core::{Dissemination, MoveScheme, SystemConfig};
use move_examples::section;
use move_text::TextPipeline;
use move_types::{FilterId, MatchSemantics, TermDictionary};

/// A follow edge refined by keywords: follower × author × topic filter.
struct Follow {
    follower: &'static str,
    author: &'static str,
    topics: &'static str,
}

fn main() {
    let pipeline = TextPipeline::default();
    let mut dict = TermDictionary::new();
    // Similarity-threshold semantics (the §III-A extension): a post must
    // share at least 60 % of a follow-filter's terms — the author handle
    // alone is not enough, the topic keywords must hit too.
    let mut config = SystemConfig::small_test();
    config.semantics = MatchSemantics::similarity_threshold(0.6);
    let mut system = MoveScheme::new(config).expect("valid config");

    section("keyword-refined follows (60% term-overlap threshold)");
    let follows = [
        Follow {
            follower: "nina",
            author: "@chef",
            topics: "pasta recipes",
        },
        Follow {
            follower: "omar",
            author: "@chef",
            topics: "grilling barbecue",
        },
        Follow {
            follower: "nina",
            author: "@coach",
            topics: "marathon training",
        },
        Follow {
            follower: "pete",
            author: "@coach",
            topics: "strength training",
        },
    ];
    // Filter terms combine the author handle with the topic keywords, so a
    // post only reaches followers of *that author* with *those interests*.
    for (id, f) in follows.iter().enumerate() {
        let text = format!("{} {}", f.author, f.topics);
        let filter = pipeline.filter(id as u64, &text, &mut dict);
        system.register(&filter).expect("register");
        println!("{} follows {} for {:?}", f.follower, f.author, f.topics);
    }

    section("posts");
    let posts = [
        (
            "@chef",
            "Tonight's pasta special: hand rolled orecchiette recipes",
        ),
        (
            "@chef",
            "Low and slow barbecue brisket on the new grilling rig",
        ),
        (
            "@coach",
            "Week 6 of marathon training: the long run mindset",
        ),
        ("@coach", "Recovery day stretching routine"),
    ];
    let mut coarse_deliveries = 0usize;
    let mut fine_deliveries = 0usize;
    for (i, (author, body)) in posts.iter().enumerate() {
        let doc = pipeline.document(i as u64, &format!("{author} {body}"), &mut dict);
        let out = system.publish(0.0, &doc).expect("publish");
        let recipients: Vec<&str> = out
            .matched
            .iter()
            .filter_map(|&FilterId(id)| follows.get(id as usize))
            .filter(|f| f.author == *author) // author handle must match too
            .map(|f| f.follower)
            .collect();
        // Coarse model: every follower of the author gets every post.
        let coarse: Vec<&str> = follows
            .iter()
            .filter(|f| f.author == *author)
            .map(|f| f.follower)
            .collect();
        coarse_deliveries += coarse.len();
        fine_deliveries += recipients.len();
        println!("{author}: {body:?}");
        println!("    coarse follow-all  -> {coarse:?}");
        println!("    keyword filtering  -> {recipients:?}");
    }

    section("summary");
    println!(
        "coarse fan-out delivered {coarse_deliveries} posts; keyword filtering delivered \
         {fine_deliveries} — {:.0}% of the noise removed",
        100.0 * (1.0 - fine_deliveries as f64 / coarse_deliveries as f64)
    );
}
