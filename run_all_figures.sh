#!/bin/bash
# Regenerates every figure and ablation; logs under results/logs/.
set -u
SCALE="${MOVE_SCALE:-0.05}"
BINS="table_workload fig4_filter_popularity fig5_doc_frequency fig6_single_node_ap fig7_single_node_wt fig8a_vs_filters fig8b_vs_docs fig8c_vs_nodes fig9a_storage fig9b_matching fig9cd_failure ablation_allocation ablation_theorem ablation_bloom ablation_policy ablation_node_aggregation ablation_term_selection"
for b in $BINS; do
  echo "=== $b (scale $SCALE) ==="
  MOVE_SCALE=$SCALE cargo run --release -q -p move-bench --bin "$b" >"results/logs/$b.log" 2>&1 \
    && echo "ok: $b" || echo "FAILED: $b"
done

# Live-engine harnesses (wall-clock; JSON reports under results/).
for b in bench_hotpath bench_rebalance bench_control; do
  echo "=== $b (scale $SCALE) ==="
  MOVE_SCALE=$SCALE cargo run --release -q -p move-bench --bin "$b" >"results/logs/$b.log" 2>&1 \
    && echo "ok: $b" || echo "FAILED: $b"
done

echo "=== plot_results ==="
cargo run --release -q -p move-bench --bin plot_results && echo "ok: plot_results"
