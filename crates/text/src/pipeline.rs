//! The full preprocessing pipeline.

use crate::{is_stop_word, stem, Tokenizer};
use move_types::{DocId, Document, Filter, FilterId, TermDictionary};

/// Composition of tokenization, stop-word removal and Porter stemming — the
/// preprocessing the paper applies to the TREC corpora (§VI-A) — producing
/// interned [`Document`]s and [`Filter`]s.
///
/// # Examples
///
/// ```
/// use move_text::TextPipeline;
/// use move_types::TermDictionary;
///
/// let p = TextPipeline::default();
/// let mut dict = TermDictionary::new();
/// let f = p.filter(0, "breaking news", &mut dict);
/// let d = p.document(0, "The news tonight: nothing happened.", &mut dict);
/// assert!(f.matches(&d));
/// ```
#[derive(Debug, Clone)]
pub struct TextPipeline {
    tokenizer: Tokenizer,
    remove_stop_words: bool,
    stem: bool,
}

impl Default for TextPipeline {
    /// Stop-word removal and stemming on, default tokenizer — the paper's
    /// configuration.
    fn default() -> Self {
        Self {
            tokenizer: Tokenizer::default(),
            remove_stop_words: true,
            stem: true,
        }
    }
}

impl TextPipeline {
    /// Creates a pipeline with an explicit tokenizer and switches.
    pub fn new(tokenizer: Tokenizer, remove_stop_words: bool, stem: bool) -> Self {
        Self {
            tokenizer,
            remove_stop_words,
            stem,
        }
    }

    /// Preprocesses `text` into a list of terms (with repetitions, in text
    /// order).
    pub fn terms(&self, text: &str) -> Vec<String> {
        self.tokenizer
            .tokens(text)
            .filter(|w| !self.remove_stop_words || !is_stop_word(w))
            .map(|w| if self.stem { stem(&w) } else { w })
            .collect()
    }

    /// Preprocesses `text` into a [`Document`], interning terms in `dict`.
    pub fn document<D: Into<DocId>>(
        &self,
        id: D,
        text: &str,
        dict: &mut TermDictionary,
    ) -> Document {
        let terms = self.terms(text);
        Document::from_occurrences(id, terms.iter().map(|t| dict.intern(t)))
    }

    /// Preprocesses `text` into a [`Filter`], interning terms in `dict`.
    pub fn filter<F: Into<FilterId>>(
        &self,
        id: F,
        text: &str,
        dict: &mut TermDictionary,
    ) -> Filter {
        let terms = self.terms(text);
        Filter::new(id, terms.iter().map(|t| dict.intern(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_words_removed_and_stemmed() {
        let p = TextPipeline::default();
        let terms = p.terms("the cats were running");
        assert_eq!(terms, vec!["cat", "run"]);
    }

    #[test]
    fn switches_can_disable_stages() {
        let raw = TextPipeline::new(Tokenizer::default(), false, false);
        assert_eq!(raw.terms("the cats"), vec!["the", "cats"]);
        let no_stem = TextPipeline::new(Tokenizer::default(), true, false);
        assert_eq!(no_stem.terms("the cats"), vec!["cats"]);
    }

    #[test]
    fn morphological_variants_collide() {
        let p = TextPipeline::default();
        let mut dict = TermDictionary::new();
        let f = p.filter(0, "connection", &mut dict);
        let d = p.document(0, "we are connected", &mut dict);
        assert!(f.matches(&d), "connection/connected should share a stem");
    }

    #[test]
    fn document_counts_survive_pipeline() {
        let p = TextPipeline::default();
        let mut dict = TermDictionary::new();
        let d = p.document(0, "news news news weather", &mut dict);
        let news = dict.id("new").or_else(|| dict.id("news")).unwrap();
        assert_eq!(d.term_count(news), 3);
    }
}
