//! English stop words.
//!
//! The paper removes "common stop words such as 'the', 'and', etc." from the
//! TREC corpora (§VI-A). The list below is the classic SMART-style core list
//! of highly frequent English function words.

/// Common English stop words, lowercase, sorted for binary search.
pub static STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "s",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Whether `word` (already lowercased) is a stop word.
///
/// # Examples
///
/// ```
/// assert!(move_text::is_stop_word("the"));
/// assert!(!move_text::is_stop_word("cassandra"));
/// ```
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        assert!(STOP_WORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn common_words_are_stopped() {
        for w in ["the", "and", "of", "is", "was", "with"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["news", "rust", "filter", "cluster", "throughput"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_by_contract() {
        // Callers must lowercase first; "The" is not in the list.
        assert!(!is_stop_word("The"));
    }
}
