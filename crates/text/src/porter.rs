//! The Porter stemming algorithm (M. F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980), implemented from scratch.
//!
//! The implementation follows the original paper's five steps (with the
//! author's later `bli`→`ble` and `logi`→`log` revisions folded in, matching
//! the widely-used reference implementation) and operates on ASCII bytes; a
//! word containing anything but ASCII lowercase letters is returned
//! unchanged.

/// Internal working buffer. `b[0..k]` is the current word, `b[0..j]` the stem
/// located by the most recent successful [`Stemmer::ends`] call.
struct Stemmer {
    b: Vec<u8>,
    /// Length of the current word.
    k: usize,
    /// Length of the stem before the matched suffix.
    j: usize,
}

impl Stemmer {
    fn new(word: &[u8]) -> Self {
        Stemmer {
            b: word.to_vec(),
            k: word.len(),
            j: word.len(),
        }
    }

    /// True if `b[i]` is a consonant. `y` is a consonant at position 0 and
    /// after a vowel.
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measure of the stem `b[0..j]`: the `m` in the canonical form
    /// `[C](VC)^m[V]`.
    fn measure(&self) -> usize {
        let end = self.j;
        let mut n = 0;
        let mut i = 0;
        // Skip the optional leading consonant run.
        while i < end && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Vowel run.
            while i < end && !self.is_consonant(i) {
                i += 1;
            }
            if i >= end {
                return n;
            }
            // Consonant run closes one VC pair.
            while i < end && self.is_consonant(i) {
                i += 1;
            }
            n += 1;
            if i >= end {
                return n;
            }
        }
    }

    /// True if the stem `b[0..j]` contains a vowel.
    fn vowel_in_stem(&self) -> bool {
        (0..self.j).any(|i| !self.is_consonant(i))
    }

    /// True if `b[i-1..=i]` is a double consonant.
    fn double_consonant(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.is_consonant(i)
    }

    /// True if `b[i-2..=i]` is consonant-vowel-consonant and the final
    /// consonant is not `w`, `x` or `y` (the `*o` condition, used to restore
    /// a trailing `e` as in `hop` + `ing` → `hope`-less `hop`).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the word ends with `suffix`; on success sets `j` to the
    /// length of the part before the suffix.
    fn ends(&mut self, suffix: &[u8]) -> bool {
        let len = suffix.len();
        if len > self.k || &self.b[self.k - len..self.k] != suffix {
            return false;
        }
        self.j = self.k - len;
        true
    }

    /// Replaces the suffix located by `ends` with `s`.
    fn set_to(&mut self, s: &[u8]) {
        self.b.truncate(self.j);
        self.b.extend_from_slice(s);
        self.k = self.b.len();
    }

    /// `set_to` guarded by `measure() > 0`.
    fn replace_if_measure(&mut self, s: &[u8]) {
        if self.measure() > 0 {
            self.set_to(s);
        }
    }

    fn truncate_to(&mut self, len: usize) {
        self.k = len;
        self.b.truncate(len);
    }

    /// Step 1a: plurals. `sses`→`ss`, `ies`→`i`, `ss`→`ss`, `s`→``.
    fn step1a(&mut self) {
        if self.b[self.k - 1] == b's' {
            if self.ends(b"sses") || self.ends(b"ies") {
                self.truncate_to(self.k - 2);
            } else if self.b[self.k - 2] != b's' {
                self.truncate_to(self.k - 1);
            }
        }
    }

    /// Step 1b: `eed`, `ed`, `ing`.
    fn step1b(&mut self) {
        if self.ends(b"eed") {
            if self.measure() > 0 {
                self.truncate_to(self.k - 1);
            }
            return;
        }
        if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.truncate_to(self.j);
            if self.ends(b"at") || self.ends(b"bl") || self.ends(b"iz") {
                // conflat(ed) → conflate, troubl(ed) → trouble, siz(ed) → size
                self.b.push(b'e');
                self.k += 1;
            } else if self.double_consonant(self.k - 1) {
                if !matches!(self.b[self.k - 1], b'l' | b's' | b'z') {
                    self.truncate_to(self.k - 1);
                }
            } else {
                self.j = self.k;
                if self.measure() == 1 && self.cvc(self.k - 1) {
                    self.b.push(b'e');
                    self.k += 1;
                }
            }
        }
    }

    /// Step 1c: terminal `y` → `i` when the stem contains a vowel.
    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k - 1] = b'i';
        }
    }

    /// Step 2: double/triple suffixes mapped to single ones when `m > 0`.
    fn step2(&mut self) {
        // Dispatch on the penultimate character as in the reference code.
        let pairs: &[(&[u8], &[u8])] = match self.b[self.k - 2] {
            b'a' => &[(b"ational", b"ate"), (b"tional", b"tion")],
            b'c' => &[(b"enci", b"ence"), (b"anci", b"ance")],
            b'e' => &[(b"izer", b"ize")],
            b'l' => &[
                (b"bli", b"ble"),
                (b"alli", b"al"),
                (b"entli", b"ent"),
                (b"eli", b"e"),
                (b"ousli", b"ous"),
            ],
            b'o' => &[(b"ization", b"ize"), (b"ation", b"ate"), (b"ator", b"ate")],
            b's' => &[
                (b"alism", b"al"),
                (b"iveness", b"ive"),
                (b"fulness", b"ful"),
                (b"ousness", b"ous"),
            ],
            b't' => &[(b"aliti", b"al"), (b"iviti", b"ive"), (b"biliti", b"ble")],
            b'g' => &[(b"logi", b"log")],
            _ => return,
        };
        for &(suffix, to) in pairs {
            if self.ends(suffix) {
                self.replace_if_measure(to);
                return;
            }
        }
    }

    /// Step 3: `-icate`, `-ative`, `-ful`, `-ness`, ….
    fn step3(&mut self) {
        let pairs: &[(&[u8], &[u8])] = match self.b[self.k - 1] {
            b'e' => &[(b"icate", b"ic"), (b"ative", b""), (b"alize", b"al")],
            b'i' => &[(b"iciti", b"ic")],
            b'l' => &[(b"ical", b"ic"), (b"ful", b"")],
            b's' => &[(b"ness", b"")],
            _ => return,
        };
        for &(suffix, to) in pairs {
            if self.ends(suffix) {
                self.replace_if_measure(to);
                return;
            }
        }
    }

    /// Step 4: drop a closed set of suffixes when `m > 1`.
    fn step4(&mut self) {
        let matched = match self.b[self.k - 2] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j >= 1 && matches!(self.b[self.j - 1], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.measure() > 1 {
            self.truncate_to(self.j);
        }
    }

    /// Step 5: drop a final `e` (`m > 1`, or `m == 1` and not `*o`), and
    /// undouble a final `ll` when `m > 1`.
    fn step5(&mut self) {
        self.j = self.k;
        if self.b[self.k - 1] == b'e' {
            let m = self.measure();
            if m > 1 || (m == 1 && !self.cvc(self.k - 2)) {
                self.truncate_to(self.k - 1);
            }
        }
        if self.b[self.k - 1] == b'l' && self.double_consonant(self.k - 1) {
            self.j = self.k;
            if self.measure() > 1 {
                self.truncate_to(self.k - 1);
            }
        }
    }

    fn run(mut self) -> Vec<u8> {
        if self.k <= 2 {
            return self.b; // per Porter: words of length 1 or 2 are left alone
        }
        self.step1a();
        if self.k > 1 {
            self.step1b();
        }
        if self.k > 1 {
            self.step1c();
        }
        if self.k > 2 {
            self.step2();
        }
        if self.k > 2 {
            self.step3();
        }
        if self.k > 2 {
            self.step4();
        }
        if self.k > 1 {
            self.step5();
        }
        self.b
    }
}

/// Stems a single lowercase ASCII word with the Porter algorithm.
///
/// Input that is not entirely ASCII lowercase letters is returned unchanged
/// (the tokenizer only produces ASCII-lowercased alphabetic tokens; anything
/// else passes through verbatim for robustness).
///
/// # Examples
///
/// ```
/// assert_eq!(move_text::stem("relational"), "relat");
/// assert_eq!(move_text::stem("hopping"), "hop");
/// assert_eq!(move_text::stem("sky"), "sky");
/// ```
pub fn stem(word: &str) -> String {
    if word.is_empty() || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let out = Stemmer::new(word.as_bytes()).run();
    String::from_utf8(out).expect("stemmer operates on ASCII bytes only")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vectors from Porter's paper and the reference implementation.
    const VECTORS: &[(&str, &str)] = &[
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("sky", "sky"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("hesitanci", "hesit"),
        ("digitizer", "digit"),
        ("radically", "radic"),
        ("differently", "differ"),
        ("vilely", "vile"),
        ("analogously", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formality", "formal"),
        ("sensitivity", "sensit"),
        ("sensibility", "sensibl"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electricity", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angularity", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controlling", "control"),
        ("rolling", "roll"),
        ("generalizations", "gener"),
        ("oscillators", "oscil"),
    ];

    #[test]
    fn reference_vectors() {
        for (word, expected) in VECTORS {
            assert_eq!(&stem(word), expected, "stem({word:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("ss"), "ss");
    }

    #[test]
    fn non_lowercase_ascii_passthrough() {
        assert_eq!(stem("naïve"), "naïve");
        assert_eq!(stem("abc123"), "abc123");
        assert_eq!(stem("Hello"), "Hello");
        assert_eq!(stem(""), "");
    }

    #[test]
    fn whole_word_suffixes_do_not_panic() {
        // Words that consist entirely of a tested suffix exercise the
        // empty-stem path (measure 0, no vowel).
        for w in ["ies", "eed", "ing", "ation", "sses", "ional", "ement"] {
            let _ = stem(w);
        }
        assert_eq!(stem("ing"), "ing"); // no vowel in (empty) stem
    }

    #[test]
    fn stems_never_grow_beyond_one_restored_e() {
        // Porter only ever shortens a word, except for the single trailing
        // `e` that step 1b may restore (hop+ing → "hop", fil+ing → "file").
        for (w, _) in VECTORS {
            let s = stem(w);
            assert!(s.len() <= w.len(), "stem longer than input: {w} -> {s}");
            assert!(!s.is_empty(), "stem of {w} is empty");
        }
    }

    #[test]
    fn no_panic_on_adversarial_inputs() {
        // Every word made of a single repeated letter, and every
        // two-letter combination: exercises empty stems, all-consonant and
        // all-vowel paths.
        for c in b'a'..=b'z' {
            for len in 1..6 {
                let w: String = std::iter::repeat_n(c as char, len).collect();
                let _ = stem(&w);
            }
        }
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                let w: String = [a as char, b as char, 's'].iter().collect();
                let _ = stem(&w);
            }
        }
    }
}
