//! Tokenization.

use std::ops::Range;

/// Splits raw text into lowercase alphanumeric tokens.
///
/// A token is a maximal run of ASCII alphanumeric characters (non-ASCII
/// characters act as separators, matching the ASCII-oriented TREC
/// preprocessing); tokens are lowercased and filtered by length.
///
/// # Examples
///
/// ```
/// use move_text::Tokenizer;
///
/// let t = Tokenizer::default();
/// let tokens: Vec<_> = t.tokens("Breaking News: RUST 1.0 shipped!").collect();
/// assert_eq!(tokens, vec!["breaking", "news", "rust", "shipped"]);
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    min_len: usize,
    max_len: usize,
}

impl Default for Tokenizer {
    /// Tokens of 2–30 characters, the usual IR defaults (single letters and
    /// pathological blobs carry no retrieval signal).
    fn default() -> Self {
        Self {
            min_len: 2,
            max_len: 30,
        }
    }
}

impl Tokenizer {
    /// Creates a tokenizer keeping tokens whose length is in
    /// `min_len..=max_len`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len == 0` or `min_len > max_len`.
    pub fn new(min_len: usize, max_len: usize) -> Self {
        assert!(min_len > 0, "min_len must be at least 1");
        assert!(min_len <= max_len, "min_len must not exceed max_len");
        Self { min_len, max_len }
    }

    /// Iterates over the lowercased tokens of `text`.
    pub fn tokens<'a>(&'a self, text: &'a str) -> impl Iterator<Item = String> + 'a {
        let accept: Range<usize> = self.min_len..self.max_len + 1;
        text.split(|c: char| !c.is_ascii_alphanumeric())
            .filter(move |w| accept.contains(&w.len()))
            .map(|w| w.to_ascii_lowercase())
    }
}

/// Tokenizes `text` with the default [`Tokenizer`].
///
/// # Examples
///
/// ```
/// assert_eq!(move_text::tokenize("to be or not"), vec!["to", "be", "or", "not"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::default().tokens(text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("hello, world!  foo-bar_baz"),
            vec!["hello", "world", "foo", "bar", "baz"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("MiXeD CaSe"), vec!["mixed", "case"]);
    }

    #[test]
    fn length_filter() {
        let t = Tokenizer::new(3, 5);
        let tokens: Vec<_> = t.tokens("a ab abc abcd abcde abcdef").collect();
        assert_eq!(tokens, vec!["abc", "abcd", "abcde"]);
    }

    #[test]
    fn default_drops_single_chars() {
        assert_eq!(tokenize("a b cd"), vec!["cd"]);
    }

    #[test]
    fn non_ascii_acts_as_separator() {
        assert_eq!(tokenize("caffè latte"), vec!["caff", "latte"]);
    }

    #[test]
    fn digits_are_kept() {
        assert_eq!(tokenize("web 2.0 era"), vec!["web", "era"]);
        assert_eq!(tokenize("ipv6 rfc2616"), vec!["ipv6", "rfc2616"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n ").is_empty());
    }

    #[test]
    #[should_panic(expected = "min_len")]
    fn zero_min_len_rejected() {
        let _ = Tokenizer::new(0, 5);
    }
}
