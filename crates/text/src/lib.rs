//! Text preprocessing for MOVE.
//!
//! The paper's datasets are "pre-processed with the Porter algorithm and
//! common stop words … removed" (§VI-A). This crate provides that pipeline:
//!
//! * [`tokenize`]/[`Tokenizer`] — lowercasing, splitting on non-alphanumeric
//!   characters, length filtering;
//! * [`stem`] — the Porter (1980) stemming algorithm, implemented from
//!   scratch;
//! * [`is_stop_word`] — the classic English stop-word list;
//! * [`TextPipeline`] — the composition, producing [`move_types::Document`]s
//!   and [`move_types::Filter`]s straight from raw text.
//!
//! # Examples
//!
//! ```
//! use move_text::TextPipeline;
//! use move_types::TermDictionary;
//!
//! let pipeline = TextPipeline::default();
//! let mut dict = TermDictionary::new();
//! let doc = pipeline.document(7, "The hopeful traveller was travelling hopefully", &mut dict);
//! // "the"/"was" are stop words; "traveller"/"travelling" stem together.
//! assert!(doc.distinct_terms() <= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod porter;
mod stopwords;
mod tokenizer;

pub use pipeline::TextPipeline;
pub use porter::stem;
pub use stopwords::{is_stop_word, STOP_WORDS};
pub use tokenizer::{tokenize, Tokenizer};
