//! Property tests: the text pipeline must be total (no panics, sane
//! outputs) over arbitrary input.

use move_text::{stem, tokenize, TextPipeline};
use move_types::TermDictionary;
use proptest::prelude::*;

proptest! {
    #[test]
    fn stem_never_panics_and_never_grows(word in "[a-z]{0,20}") {
        let s = stem(&word);
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
        if !word.is_empty() {
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn stem_total_on_arbitrary_unicode(word in ".*") {
        let _ = stem(&word); // non-lowercase-ASCII passes through
    }

    #[test]
    fn tokenize_outputs_are_lowercase_alnum(text in ".*") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.len() >= 2 && tok.len() <= 30);
            prop_assert!(tok.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
        }
    }

    #[test]
    fn pipeline_documents_are_well_formed(text in ".*") {
        let p = TextPipeline::default();
        let mut dict = TermDictionary::new();
        let d = p.document(0u64, &text, &mut dict);
        // Sorted, deduplicated terms; counts consistent.
        prop_assert!(d.terms().windows(2).all(|w| w[0] < w[1]));
        let total: u64 = d.term_counts().map(|(_, c)| u64::from(c)).sum();
        prop_assert_eq!(total, d.total_occurrences());
    }

    #[test]
    fn filter_always_matches_its_own_text(words in prop::collection::vec("[a-z]{3,10}", 1..6)) {
        let text = words.join(" ");
        let p = TextPipeline::default();
        let mut dict = TermDictionary::new();
        let f = p.filter(1u64, &text, &mut dict);
        let d = p.document(1u64, &text, &mut dict);
        // Unless every word was a stop word, the filter matches its source.
        if !f.is_empty() {
            prop_assert!(f.matches(&d));
        }
    }
}
