//! Engine tuning knobs.

use crate::supervisor::SupervisionPolicy;
use std::time::Duration;

/// What the router does when a worker's bounded mailbox is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the router until the worker drains — lossless backpressure
    /// that propagates to the publisher through the bounded command
    /// channel. The default; required for delivery-completeness guarantees.
    #[default]
    Block,
    /// Drop the batch and count it in
    /// [`RuntimeReport::tasks_shed`](crate::RuntimeReport::tasks_shed) —
    /// the load-shedding stance of a system that prefers freshness over
    /// completeness under overload.
    Shed,
}

/// How the dispatch planes (the serial router and every ingest thread)
/// size their per-node document batches.
///
/// Batching is the live engine's main per-message-overhead lever: every
/// batch is one channel send, one mailbox slot, and one worker wakeup, so
/// larger batches amortize that cost — at the price of tasks idling in the
/// dispatcher's pending buffer. [`BatchPolicy::Adaptive`] (the default)
/// trades the two off automatically against a residency target instead of
/// pinning a fixed [`RuntimeConfig::batch_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Always flush at exactly [`RuntimeConfig::batch_size`] tasks — the
    /// pre-adaptive behaviour. The interleaving harness pins this policy:
    /// the adaptive controller's wall-clock feedback would make schedules
    /// nondeterministic.
    Fixed,
    /// Latency-targeted AIMD controller: each flush observes the batch's
    /// *residency* (how long its oldest task waited in the pending
    /// buffer). Residency above `target` halves the batch limit;
    /// residency below `target / 2` grows it gently. The limit starts at
    /// [`RuntimeConfig::batch_size`] clamped into `[min, max]`.
    Adaptive {
        /// Batch-residency target. The controller keeps the time a task
        /// spends waiting to be dispatched near (but under) this.
        target: Duration,
        /// Batch-limit floor (at least 1).
        min: usize,
        /// Batch-limit ceiling.
        max: usize,
    },
}

impl BatchPolicy {
    /// The default adaptive controller: 1 ms residency target, batches
    /// between 1 and 512 tasks. Under throughput load the pending buffers
    /// fill in microseconds, so batches grow toward the ceiling and the
    /// per-message overhead (the dominant live-vs-sim gap on few cores)
    /// amortizes away; under trickle load batches shrink to 1 and latency
    /// stays bounded by the target plus the flush interval.
    #[must_use]
    pub fn adaptive_default() -> Self {
        Self::Adaptive {
            target: Duration::from_millis(1),
            min: 1,
            max: 512,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::adaptive_default()
    }
}

/// The per-dispatcher batch-size governor behind [`BatchPolicy`]. Each
/// dispatching thread (the serial router, each ingest thread) owns one —
/// no sharing, no locks.
#[derive(Debug, Clone)]
pub(crate) struct BatchController {
    limit: usize,
    min: usize,
    max: usize,
    target: Duration,
    hwm: usize,
}

impl BatchController {
    pub(crate) fn new(config: &RuntimeConfig) -> Self {
        let (min, max, target) = match config.batch_policy {
            BatchPolicy::Fixed => {
                let b = config.batch_size.max(1);
                (b, b, Duration::MAX)
            }
            BatchPolicy::Adaptive { target, min, max } => {
                let min = min.max(1);
                (min, max.max(min), target)
            }
        };
        let limit = config.batch_size.clamp(min, max);
        Self {
            limit,
            min,
            max,
            target,
            hwm: limit,
        }
    }

    /// The current flush threshold (tasks per node batch).
    pub(crate) fn limit(&self) -> usize {
        self.limit
    }

    /// Highest limit the controller ever reached (observability).
    pub(crate) fn hwm(&self) -> usize {
        self.hwm
    }

    /// Feeds back one flushed batch's residency — the age of its oldest
    /// task at flush time. AIMD: halve over target, grow gently under half
    /// the target, hold in between.
    pub(crate) fn observe(&mut self, residency: Duration) {
        if self.min == self.max {
            return; // Fixed policy
        }
        if residency > self.target {
            self.limit = (self.limit / 2).max(self.min);
        } else if residency < self.target / 2 {
            self.limit = (self.limit + 1 + self.limit / 8).min(self.max);
        }
        self.hwm = self.hwm.max(self.limit);
    }
}

/// Configuration of the live engine.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity of each worker mailbox (messages). Small values exercise
    /// backpressure; large values decouple the router from slow workers.
    /// Under [`BatchPolicy::Adaptive`] this knob is no longer
    /// load-bearing: the controller grows batches (messages shrink in
    /// number, not in task count), so the default depth is ample.
    pub mailbox_capacity: usize,
    /// Capacity of the publisher→router command channel.
    pub command_capacity: usize,
    /// Behaviour when a worker mailbox is full.
    pub overflow: OverflowPolicy,
    /// Documents per node accumulated before a
    /// [`NodeMessage::PublishDocument`](crate::NodeMessage) batch is sent.
    /// Under [`BatchPolicy::Fixed`] this is exact; under
    /// [`BatchPolicy::Adaptive`] it is only the controller's starting
    /// point.
    pub batch_size: usize,
    /// How the dispatch planes size batches (see [`BatchPolicy`]).
    pub batch_policy: BatchPolicy,
    /// Maximum time a partially filled batch may wait before being flushed
    /// to its worker.
    pub flush_interval: Duration,
    /// What the router does when it detects a dead worker (restart +
    /// journal replay, or replica failover).
    pub supervision: SupervisionPolicy,
    /// Publisher-facing ingest threads. `1` (the default) keeps the
    /// classic single router thread; `> 1` boots a pool of that many
    /// ingest threads routing concurrently against an immutable
    /// [`RoutingView`](move_core::RoutingView) snapshot, with one control
    /// thread retaining registration, allocation refresh, supervision and
    /// fault injection.
    pub publishers: usize,
    /// Match lanes per node worker. `1` (the default) matches inline on
    /// the worker thread; `> 1` fans each document batch out over a
    /// work-stealing pool of that many lanes (the worker thread itself
    /// plus `match_lanes - 1` helper threads) with per-lane scratch
    /// buffers — see [`crate::lanes`]. Delivery sets and counters are
    /// identical either way; only the core count changes.
    pub match_lanes: usize,
    /// Per-unit scan-cost target of the lane planner, in posting entries:
    /// a batch is split into stealable units whose summed posting-list
    /// lengths approach this target (lowered automatically when the batch
    /// is too small to fill `4 × match_lanes` units at it). Smaller
    /// targets mean finer-grained stealing at more per-unit merge
    /// overhead. Ignored with one lane.
    pub lane_cost_target: usize,
}

/// Default [`RuntimeConfig::lane_cost_target`]: enough posting entries
/// per unit that the unit's scan dwarfs its lock round-trip, small enough
/// that realistic batches still split across lanes.
pub const DEFAULT_LANE_COST_TARGET: usize = 4096;

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            mailbox_capacity: 64,
            command_capacity: 256,
            overflow: OverflowPolicy::Block,
            batch_size: 8,
            batch_policy: BatchPolicy::default(),
            flush_interval: Duration::from_millis(2),
            supervision: SupervisionPolicy::default(),
            publishers: 1,
            match_lanes: 1,
            lane_cost_target: DEFAULT_LANE_COST_TARGET,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive(start: usize) -> BatchController {
        BatchController::new(&RuntimeConfig {
            batch_size: start,
            batch_policy: BatchPolicy::Adaptive {
                target: Duration::from_millis(1),
                min: 1,
                max: 64,
            },
            ..RuntimeConfig::default()
        })
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut c = BatchController::new(&RuntimeConfig {
            batch_size: 8,
            batch_policy: BatchPolicy::Fixed,
            ..RuntimeConfig::default()
        });
        c.observe(Duration::from_secs(10));
        c.observe(Duration::ZERO);
        assert_eq!(c.limit(), 8);
        assert_eq!(c.hwm(), 8);
    }

    #[test]
    fn adaptive_grows_under_target_and_halves_over_it() {
        let mut c = adaptive(8);
        for _ in 0..100 {
            c.observe(Duration::ZERO);
        }
        assert_eq!(c.limit(), 64, "fast flushes must grow to the ceiling");
        c.observe(Duration::from_millis(5));
        assert_eq!(c.limit(), 32, "a slow flush halves");
        for _ in 0..100 {
            c.observe(Duration::from_secs(1));
        }
        assert_eq!(c.limit(), 1, "sustained overload reaches the floor");
        assert_eq!(c.hwm(), 64);
    }

    #[test]
    fn adaptive_holds_in_the_dead_band() {
        let mut c = adaptive(8);
        c.observe(Duration::from_micros(700)); // between target/2 and target
        assert_eq!(c.limit(), 8);
    }

    #[test]
    fn start_is_clamped_into_bounds() {
        let c = BatchController::new(&RuntimeConfig {
            batch_size: 100_000,
            batch_policy: BatchPolicy::Adaptive {
                target: Duration::from_millis(1),
                min: 2,
                max: 16,
            },
            ..RuntimeConfig::default()
        });
        assert_eq!(c.limit(), 16);
    }
}
