//! Engine tuning knobs.

use crate::supervisor::SupervisionPolicy;
use std::time::Duration;

/// What the router does when a worker's bounded mailbox is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the router until the worker drains — lossless backpressure
    /// that propagates to the publisher through the bounded command
    /// channel. The default; required for delivery-completeness guarantees.
    #[default]
    Block,
    /// Drop the batch and count it in
    /// [`RuntimeReport::tasks_shed`](crate::RuntimeReport::tasks_shed) —
    /// the load-shedding stance of a system that prefers freshness over
    /// completeness under overload.
    Shed,
}

/// Configuration of the live engine.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity of each worker mailbox (messages). Small values exercise
    /// backpressure; large values decouple the router from slow workers.
    pub mailbox_capacity: usize,
    /// Capacity of the publisher→router command channel.
    pub command_capacity: usize,
    /// Behaviour when a worker mailbox is full.
    pub overflow: OverflowPolicy,
    /// Documents per node accumulated before a
    /// [`NodeMessage::PublishDocument`](crate::NodeMessage) batch is sent.
    pub batch_size: usize,
    /// Maximum time a partially filled batch may wait before being flushed
    /// to its worker.
    pub flush_interval: Duration,
    /// What the router does when it detects a dead worker (restart +
    /// journal replay, or replica failover).
    pub supervision: SupervisionPolicy,
    /// Publisher-facing ingest threads. `1` (the default) keeps the
    /// classic single router thread; `> 1` boots a pool of that many
    /// ingest threads routing concurrently against an immutable
    /// [`RoutingView`](move_core::RoutingView) snapshot, with one control
    /// thread retaining registration, allocation refresh, supervision and
    /// fault injection.
    pub publishers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            mailbox_capacity: 64,
            command_capacity: 256,
            overflow: OverflowPolicy::Block,
            batch_size: 8,
            flush_interval: Duration::from_millis(2),
            supervision: SupervisionPolicy::default(),
            publishers: 1,
        }
    }
}
