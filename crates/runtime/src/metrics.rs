//! Observability: per-node counters and the end-of-run report.

use move_stats::LatencySummary;
use move_types::{DocId, NodeId};
use serde::{Deserialize, Serialize};

/// Counters of one node worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// The worker's node id.
    pub node: NodeId,
    /// Mailbox messages handled (all [`crate::NodeMessage`] kinds).
    pub messages_processed: u64,
    /// Document match tasks executed.
    pub doc_tasks: u64,
    /// Posting entries scanned while matching.
    pub postings_scanned: u64,
    /// Filter deliveries emitted (matched filter ids, pre-union).
    pub deliveries: u64,
    /// Highest mailbox depth observed by the worker.
    pub queue_depth_hwm: u64,
    /// Queued document tasks destroyed by an injected crash (0 on a
    /// healthy node).
    pub tasks_lost: u64,
    /// Work-stealing steals performed by this node's match lanes (0 when
    /// [`crate::RuntimeConfig::match_lanes`] is 1).
    #[serde(default)]
    pub steals: u64,
    /// Chunked match units executed by this node's match lanes (0 when
    /// matching runs inline on the worker thread).
    #[serde(default)]
    pub lane_units: u64,
    /// Wall-clock latency from router dispatch to match completion,
    /// nanoseconds.
    pub latency: LatencySummary,
}

/// Counters of one publisher-facing ingest thread (router-pool mode).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestMetrics {
    /// Ingest-thread index (`0..publishers`).
    pub thread: usize,
    /// Documents this thread routed.
    pub docs_routed: u64,
    /// Node match tasks this thread dispatched to worker mailboxes.
    pub tasks_dispatched: u64,
    /// Node match tasks this thread dropped under
    /// [`crate::OverflowPolicy::Shed`].
    pub tasks_shed: u64,
    /// Documents this thread double-routed to a moved partition's old home
    /// during a join's handover window.
    #[serde(default)]
    pub docs_double_routed: u64,
    /// Highest batch limit this thread's adaptive controller reached
    /// (equals the fixed batch size under
    /// [`crate::BatchPolicy::Fixed`]).
    #[serde(default)]
    pub batch_limit_hwm: u64,
}

/// What [`crate::Engine::shutdown`] returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Scheme name ("move", "il", "rs").
    pub scheme: String,
    /// Documents routed by the engine.
    pub docs_published: u64,
    /// Node match tasks dispatched to workers.
    pub tasks_dispatched: u64,
    /// Node match tasks dropped under [`crate::OverflowPolicy::Shed`]
    /// (always 0 under `Block`).
    pub tasks_shed: u64,
    /// Allocation refreshes that re-shipped index shards to the workers.
    pub allocation_updates: u64,
    /// Node joins committed by the live rebalancer (see
    /// [`crate::rebalance`]).
    #[serde(default)]
    pub joins: u64,
    /// Term-partitions re-homed onto joining nodes across all joins.
    #[serde(default)]
    pub partitions_moved: u64,
    /// Documents double-routed to a moved partition's old home during
    /// handover windows (router + ingest threads combined).
    #[serde(default)]
    pub docs_double_routed: u64,
    /// Documents published inside handover windows.
    #[serde(default)]
    pub handover_docs: u64,
    /// Total wall-clock nanoseconds spent inside handover windows
    /// (stage → commit).
    #[serde(default)]
    pub handover_nanos: u64,
    /// Worker restarts the supervisor performed after detected deaths.
    pub restarts: u64,
    /// Batch sends retried across worker restarts.
    pub retries: u64,
    /// Document tasks re-routed to replica nodes after a failover.
    pub failovers: u64,
    /// Tasks lost to crashes: queued work destroyed with a dead worker
    /// plus failover tasks that found no live replica. Always 0 in a
    /// fault-free run.
    pub tasks_lost: u64,
    /// The documents those lost tasks belonged to (sorted, deduplicated) —
    /// the at-most-once allowance: a document outside this list was
    /// delivered completely, one inside it may be missing matches.
    pub lost_docs: Vec<DocId>,
    /// The published-document count at the moment the *last* worker death
    /// was discovered (`None` when nothing died). Deaths are discovered
    /// lazily — on the first failed send — so documents routed before this
    /// point may have been routed under the pre-crash placement; documents
    /// routed after it saw the fully settled dead set. The fault oracles
    /// use this to compare post-crash deliveries against the simulator
    /// without guessing at discovery latency.
    pub deaths_settled_at: Option<u64>,
    /// Per-ingest-thread routed/dispatched/shed counters (empty in the
    /// classic single-router mode), so backpressure accounting stays exact
    /// under the pool: the report's `tasks_dispatched`/`tasks_shed` totals
    /// include these.
    pub ingest: Vec<IngestMetrics>,
    /// The scheme's merged `q′ᵢ` document-frequency statistics per node at
    /// shutdown (empty for schemes without routing statistics) — lets the
    /// serial-vs-parallel equivalence suite assert the sharded accumulators
    /// merged to the same totals the serial observer would have produced.
    pub q_hits: Vec<u64>,
    /// Highest per-node batch limit any dispatcher's adaptive controller
    /// reached (the router's own, maxed with every ingest thread's).
    #[serde(default)]
    pub batch_limit_hwm: u64,
    /// Live filter registrations applied through the engine's control
    /// plane after start (churn workloads; 0 for static filter sets).
    #[serde(default)]
    pub registrations: u64,
    /// Live filter unregistrations applied through the control plane.
    #[serde(default)]
    pub unregistrations: u64,
    /// Registrations that hit an already-live canonical predicate, so the
    /// control plane shipped only a `Subscribe` broadcast — no posting
    /// entries were written anywhere (the aggregation win; DESIGN.md §12).
    #[serde(default)]
    pub canonical_hits: u64,
    /// Distinct canonical predicates live at shutdown (equals the live
    /// filter count when aggregation is disabled).
    #[serde(default)]
    pub canonical_filters: u64,
    /// Control-plane aggregation bookkeeping bytes at shutdown: canonical
    /// maps plus compressed fan-out sets. 0 when aggregation is disabled.
    #[serde(default)]
    pub aggregation_bytes: u64,
    /// Per-node counters, indexed by node id (a node restarted mid-run
    /// reports the merged counters of all its incarnations).
    pub nodes: Vec<NodeMetrics>,
    /// Match latency merged across all workers, nanoseconds.
    pub latency: LatencySummary,
}

impl RuntimeReport {
    /// Total posting entries scanned across the cluster.
    #[must_use]
    pub fn postings_scanned(&self) -> u64 {
        self.nodes.iter().map(|n| n.postings_scanned).sum()
    }

    /// Total deliveries emitted across the cluster (pre-union).
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.nodes.iter().map(|n| n.deliveries).sum()
    }

    /// Total work-stealing steals across the cluster's match lanes.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.nodes.iter().map(|n| n.steals).sum()
    }
}
