//! Observability: per-node counters and the end-of-run report.

use move_stats::LatencySummary;
use move_types::{DocId, NodeId};
use serde::{Deserialize, Serialize};

/// Counters of one node worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// The worker's node id.
    pub node: NodeId,
    /// Mailbox messages handled (all [`crate::NodeMessage`] kinds).
    pub messages_processed: u64,
    /// Document match tasks executed.
    pub doc_tasks: u64,
    /// Posting entries scanned while matching.
    pub postings_scanned: u64,
    /// Filter deliveries emitted (matched filter ids, pre-union).
    pub deliveries: u64,
    /// Highest mailbox depth observed by the worker.
    pub queue_depth_hwm: u64,
    /// Queued document tasks destroyed by an injected crash (0 on a
    /// healthy node).
    pub tasks_lost: u64,
    /// Wall-clock latency from router dispatch to match completion,
    /// nanoseconds.
    pub latency: LatencySummary,
}

/// What [`crate::Engine::shutdown`] returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Scheme name ("move", "il", "rs").
    pub scheme: String,
    /// Documents routed by the engine.
    pub docs_published: u64,
    /// Node match tasks dispatched to workers.
    pub tasks_dispatched: u64,
    /// Node match tasks dropped under [`crate::OverflowPolicy::Shed`]
    /// (always 0 under `Block`).
    pub tasks_shed: u64,
    /// Allocation refreshes that re-shipped index shards to the workers.
    pub allocation_updates: u64,
    /// Worker restarts the supervisor performed after detected deaths.
    pub restarts: u64,
    /// Batch sends retried across worker restarts.
    pub retries: u64,
    /// Document tasks re-routed to replica nodes after a failover.
    pub failovers: u64,
    /// Tasks lost to crashes: queued work destroyed with a dead worker
    /// plus failover tasks that found no live replica. Always 0 in a
    /// fault-free run.
    pub tasks_lost: u64,
    /// The documents those lost tasks belonged to (sorted, deduplicated) —
    /// the at-most-once allowance: a document outside this list was
    /// delivered completely, one inside it may be missing matches.
    pub lost_docs: Vec<DocId>,
    /// Per-node counters, indexed by node id (a node restarted mid-run
    /// reports the merged counters of all its incarnations).
    pub nodes: Vec<NodeMetrics>,
    /// Match latency merged across all workers, nanoseconds.
    pub latency: LatencySummary,
}

impl RuntimeReport {
    /// Total posting entries scanned across the cluster.
    #[must_use]
    pub fn postings_scanned(&self) -> u64 {
        self.nodes.iter().map(|n| n.postings_scanned).sum()
    }

    /// Total deliveries emitted across the cluster (pre-union).
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.nodes.iter().map(|n| n.deliveries).sum()
    }
}
