//! Observability: per-node counters and the end-of-run report.

use move_stats::LatencySummary;
use move_types::NodeId;
use serde::{Deserialize, Serialize};

/// Counters of one node worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// The worker's node id.
    pub node: NodeId,
    /// Mailbox messages handled (all [`crate::NodeMessage`] kinds).
    pub messages_processed: u64,
    /// Document match tasks executed.
    pub doc_tasks: u64,
    /// Posting entries scanned while matching.
    pub postings_scanned: u64,
    /// Filter deliveries emitted (matched filter ids, pre-union).
    pub deliveries: u64,
    /// Highest mailbox depth observed by the worker.
    pub queue_depth_hwm: u64,
    /// Wall-clock latency from router dispatch to match completion,
    /// nanoseconds.
    pub latency: LatencySummary,
}

/// What [`crate::Engine::shutdown`] returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Scheme name ("move", "il", "rs").
    pub scheme: String,
    /// Documents routed by the engine.
    pub docs_published: u64,
    /// Node match tasks dispatched to workers.
    pub tasks_dispatched: u64,
    /// Node match tasks dropped under [`crate::OverflowPolicy::Shed`]
    /// (always 0 under `Block`).
    pub tasks_shed: u64,
    /// Allocation refreshes that re-shipped index shards to the workers.
    pub allocation_updates: u64,
    /// Per-node counters, indexed by node id.
    pub nodes: Vec<NodeMetrics>,
    /// Match latency merged across all workers, nanoseconds.
    pub latency: LatencySummary,
}

impl RuntimeReport {
    /// Total posting entries scanned across the cluster.
    #[must_use]
    pub fn postings_scanned(&self) -> u64 {
        self.nodes.iter().map(|n| n.postings_scanned).sum()
    }

    /// Total deliveries emitted across the cluster (pre-union).
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.nodes.iter().map(|n| n.deliveries).sum()
    }
}
