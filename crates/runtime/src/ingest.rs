//! The parallel ingest plane: publisher-facing router threads.
//!
//! With [`RuntimeConfig::publishers`](crate::RuntimeConfig) greater than
//! one, the engine boots a pool of *ingest threads*. Each one routes
//! documents against the current [`RoutingView`] snapshot — published by
//! the control thread as an epoch-stamped [`Arc`] inside an
//! [`IngestTable`] — and fans the resulting batches out to the worker
//! mailboxes directly, with no lock on the hot path beyond one uncontended
//! `Arc` clone of the table. The mutable residue of routing (MOVE's `q′ᵢ`
//! document-frequency counters) goes into a per-thread [`StatsDelta`]
//! shard that the control thread drains and merges at its leisure.
//!
//! Control traffic flows the other way on two channels:
//!
//! * each ingest thread has a bounded command mailbox of
//!   [`IngestCommand`]s (publishes round-robined by the engine, plus the
//!   control thread's barrier/fence/shutdown protocol);
//! * dead-worker batches and end-of-life counters travel to the control
//!   thread over the engine's command channel
//!   ([`Command::Gone`](crate::engine::Command) /
//!   [`Command::IngestExited`](crate::engine::Command)), so supervision,
//!   failover and fault injection remain exclusively the control thread's
//!   business — the PR 3 journal/replay/failover semantics are untouched.
//!
//! The barrier/fence protocol gives the control plane exact ordering:
//! a **barrier** makes a thread flush its pending batches and ack (used
//! before registrations and stats snapshots, so everything enqueued
//! earlier is in the worker mailboxes first); a **fence** additionally
//! parks the thread until released (used around allocation refreshes, so
//! no document routed under the old layout can be dispatched after the
//! [`AllocationUpdate`](crate::NodeMessage) ships).

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};
use move_core::{MatchTask, RoutingView, StatsDelta};
use move_types::Document;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{BatchController, OverflowPolicy, RuntimeConfig};
use crate::engine::{reclaim, BatchOutcome, Command};
use crate::message::{DocTask, NodeMessage};
use crate::metrics::IngestMetrics;

/// Everything an ingest thread reads per routed document, republished
/// wholesale by the control thread whenever any part changes (view epoch,
/// worker restart, membership change). Immutable once shared.
pub(crate) struct IngestTable {
    /// The routing snapshot (see [`RoutingView`]).
    pub(crate) view: RoutingView,
    /// Current mailbox sender per worker (replaced on restart).
    pub(crate) senders: Vec<Sender<NodeMessage>>,
    /// Nodes the control thread has declared dead under failover — the
    /// ingest thread hands their batches straight back instead of
    /// attempting a doomed send.
    pub(crate) dead: Vec<bool>,
}

/// State shared between the control thread and every ingest thread.
pub(crate) struct IngestShared {
    /// The current table; swapped atomically under a (briefly held) lock.
    pub(crate) table: Mutex<Arc<IngestTable>>,
    /// Documents routed across the pool — drives fault-plan triggers and
    /// the end-of-run report.
    pub(crate) docs_published: AtomicU64,
    /// One statistics shard per ingest thread; a thread only ever locks
    /// its own (uncontended except when the control thread drains it).
    pub(crate) shards: Vec<Mutex<StatsDelta>>,
}

impl IngestShared {
    /// Builds the shared state for `publishers` threads over `nodes`
    /// workers, seeded with the boot-time table.
    pub(crate) fn new(publishers: usize, nodes: usize, table: IngestTable) -> Self {
        Self {
            table: Mutex::new(Arc::new(table)),
            docs_published: AtomicU64::new(0),
            shards: (0..publishers)
                .map(|_| Mutex::new(StatsDelta::new(nodes)))
                .collect(),
        }
    }

    /// Publishes a new table; ingest threads pick it up on their next
    /// document.
    pub(crate) fn publish_table(&self, table: IngestTable) {
        *self.table.lock() = Arc::new(table);
    }
}

/// A command in an ingest thread's bounded mailbox.
pub(crate) enum IngestCommand {
    /// Route this document against the current table.
    Publish(Box<Document>),
    /// Flush all pending batches to the worker mailboxes, then ack.
    Barrier {
        /// Acked once the flush is complete.
        ack: Sender<()>,
    },
    /// Flush, ack, then park until the control thread releases the fence
    /// (one `()` per fenced thread on the shared release channel).
    Fence {
        /// Acked once the flush is complete and the thread is parked.
        ack: Sender<()>,
        /// Parks until a token (or disconnect) arrives.
        release: Receiver<()>,
    },
    /// Flush and exit; final counters travel to the control thread as
    /// [`Command::IngestExited`].
    Shutdown,
}

/// The handles the control thread keeps on a running ingest pool.
pub(crate) struct Pool {
    /// State shared with the ingest threads.
    pub(crate) shared: Arc<IngestShared>,
    /// Command senders, indexed by thread.
    pub(crate) ingest: Vec<Sender<IngestCommand>>,
    /// Join handles, collected after every thread's exit notice.
    pub(crate) handles: Vec<JoinHandle<()>>,
}

/// One publisher-facing ingest thread: routes against the shared table,
/// batches per node, and flushes under the engine's overflow policy.
pub(crate) struct IngestThread {
    thread: usize,
    shared: Arc<IngestShared>,
    control: Sender<Command>,
    overflow: OverflowPolicy,
    /// This thread's batch-size governor (see [`crate::BatchPolicy`]) —
    /// independent per thread, so each adapts to its own node mix.
    batcher: BatchController,
    flush_interval: Duration,
    /// Per-node batch under accumulation (thread-local, flushed on size,
    /// idleness, and every barrier/fence/shutdown).
    pending: Vec<Vec<DocTask>>,
    /// This thread's replica-choice RNG. Replica rows and groups hold
    /// identical filter subsets, so per-thread streams do not change
    /// delivery sets — only which replica does the work.
    rng: StdRng,
    docs_routed: u64,
    tasks_dispatched: u64,
    tasks_shed: u64,
    docs_double_routed: u64,
}

impl IngestThread {
    /// Builds the thread state; `seed` decorrelates the pool's
    /// replica-choice streams.
    pub(crate) fn new(
        thread: usize,
        nodes: usize,
        shared: Arc<IngestShared>,
        control: Sender<Command>,
        config: &RuntimeConfig,
        seed: u64,
    ) -> Self {
        Self {
            thread,
            shared,
            control,
            overflow: config.overflow,
            batcher: BatchController::new(config),
            flush_interval: config.flush_interval,
            pending: vec![Vec::new(); nodes],
            rng: StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            docs_routed: 0,
            tasks_dispatched: 0,
            tasks_shed: 0,
            docs_double_routed: 0,
        }
    }

    /// The thread's main loop: route publishes, age out partial batches on
    /// idle, obey the barrier/fence protocol, and report counters on exit.
    pub(crate) fn run(mut self, commands: &Receiver<IngestCommand>) {
        loop {
            match commands.recv_timeout(self.flush_interval) {
                Ok(IngestCommand::Publish(doc)) => self.publish(&Arc::new(*doc)),
                Ok(IngestCommand::Barrier { ack }) => {
                    self.flush_all();
                    let _ = ack.send(());
                }
                Ok(IngestCommand::Fence { ack, release }) => {
                    self.flush_all();
                    let _ = ack.send(());
                    // Parked until the control thread finishes the refresh;
                    // a disconnect (teardown) releases too.
                    let _ = release.recv();
                }
                Ok(IngestCommand::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => self.flush_all(),
            }
        }
        self.flush_all();
        let _ = self.control.send(Command::IngestExited {
            metrics: IngestMetrics {
                thread: self.thread,
                docs_routed: self.docs_routed,
                tasks_dispatched: self.tasks_dispatched,
                tasks_shed: self.tasks_shed,
                docs_double_routed: self.docs_double_routed,
                batch_limit_hwm: self.batcher.hwm() as u64,
            },
        });
    }

    /// Routes one document against the current table and accumulates its
    /// tasks into the per-node batches.
    fn publish(&mut self, doc: &Arc<Document>) {
        let table = Arc::clone(&self.shared.table.lock());
        self.grow_to(table.senders.len());
        // During a join's handover window the view appends double-route
        // steps to the moved partitions' old homes — same code path as the
        // serial router.
        let (steps, doubled) = table.view.route_handover(doc, &mut self.rng);
        if doubled {
            self.docs_double_routed += 1;
        }
        self.shared.docs_published.fetch_add(1, Ordering::Relaxed);
        self.docs_routed += 1;
        {
            // Only this thread bumps this shard; the control thread drains
            // it between documents, so the lock is all but uncontended.
            let mut shard = self.shared.shards[self.thread].lock();
            table.view.observe(doc, &mut shard);
        }
        let dispatched = Instant::now();
        for step in steps {
            // As in the serial router, the Forward hop is the control
            // plane's own table lookup — nothing ships to a worker.
            if matches!(step.task, MatchTask::Forward) {
                continue;
            }
            let n = step.node.as_usize();
            self.pending[n].push(DocTask {
                doc: Arc::clone(doc),
                task: step.task,
                dispatched,
            });
            if self.pending[n].len() >= self.batcher.limit() {
                self.flush_node(&table, n);
            }
        }
    }

    /// Ships node `n`'s batch under the overflow policy. Batches for nodes
    /// the control thread declared dead — and batches whose send finds a
    /// disconnected mailbox — travel to the control thread as
    /// [`Command::Gone`] for supervised restart or failover.
    fn flush_node(&mut self, table: &IngestTable, n: usize) {
        if self.pending[n].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending[n]);
        // Feed the adaptive controller this batch's residency — the age of
        // its oldest task. A no-op under `BatchPolicy::Fixed`.
        self.batcher.observe(batch[0].dispatched.elapsed());
        if table.dead[n] {
            let _ = self.control.send(Command::Gone { node: n, batch });
            return;
        }
        let count = batch.len() as u64;
        let outcome = match self.overflow {
            OverflowPolicy::Block => {
                match table.senders[n].send(NodeMessage::PublishDocument { batch }) {
                    Ok(()) => BatchOutcome::Delivered,
                    Err(e) => reclaim(e.0),
                }
            }
            OverflowPolicy::Shed => {
                match table.senders[n].try_send(NodeMessage::PublishDocument { batch }) {
                    Ok(()) => BatchOutcome::Delivered,
                    Err(TrySendError::Full(_)) => BatchOutcome::Shed,
                    Err(TrySendError::Disconnected(m)) => reclaim(m),
                }
            }
        };
        match outcome {
            BatchOutcome::Delivered => self.tasks_dispatched += count,
            BatchOutcome::Shed => self.tasks_shed += count,
            BatchOutcome::Gone(batch) => {
                let _ = self.control.send(Command::Gone { node: n, batch });
            }
        }
    }

    /// Grows the per-node batch table after a node join published a wider
    /// sender set (nodes never shrink; a dead node keeps its slot).
    fn grow_to(&mut self, nodes: usize) {
        if self.pending.len() < nodes {
            self.pending.resize_with(nodes, Vec::new);
        }
    }

    /// Flushes every pending batch against the *current* table (senders
    /// may have been replaced by a supervised restart since the batches
    /// accumulated).
    fn flush_all(&mut self) {
        let table = Arc::clone(&self.shared.table.lock());
        self.grow_to(table.senders.len());
        for n in 0..self.pending.len() {
            self.flush_node(&table, n);
        }
    }
}
