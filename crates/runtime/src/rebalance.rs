//! Live partition rebalancing: staged node joins under load.
//!
//! A join is a two-phase protocol driven by the control thread against the
//! same [`Transport`] seam every other router action uses, so the threaded
//! engine and the deterministic interleaving harness run identical code:
//!
//! 1. **Stage** ([`Router::begin_join`]) — the scheme stages and commits
//!    the next [`ClusterLayout`](move_cluster::ClusterLayout) version and
//!    synchronously copies every re-homed (term-partition → node)
//!    assignment onto the joiner, *without* removing the old homes' copies.
//!    The transport spawns the new worker with an empty shard, then the
//!    moved partitions stream to it as its first mailbox message
//!    ([`NodeMessage::InstallPartitions`]) — FIFO-ordered ahead of any
//!    document routed under the new view. The routing snapshot is
//!    republished carrying a **handover map**: documents touching a moved
//!    term are double-routed to the term's old home as well
//!    ([`move_core::RoutingView::route_handover`]), so in-flight batches
//!    and the freshly installed copies both deliver — duplicates are
//!    benign, consumers union per document.
//! 2. **Commit** ([`Router::commit_join`]) — after the handover window,
//!    the router flushes (pool mode: fences the ingest plane — *the fence
//!    gates the commit, not the copy*; ingest never stops for the copy
//!    itself), retires the old homes' duplicate copies
//!    ([`NodeMessage::RetirePartitions`]), and republishes the committed
//!    view with no handover map.
//!
//! Either view is sound at every instant of the window: the joiner serves
//! its partitions from the moment it is spawned, and the old homes keep
//! theirs until the commit fence has ordered every double-routed document
//! ahead of the retirement. A joiner that crashes mid-window needs no
//! rollback — the old copies were never removed, so the commit simply
//! refuses to retire them and the handover view keeps serving.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use move_core::JoinSummary;
use move_index::InvertedIndex;
use move_types::{MoveError, NodeId, Result, TermId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::{Command, Router, ThreadTransport, Transport};
use crate::ingest::{IngestCommand, Pool};
use crate::message::NodeMessage;

/// What one committed node join did, as returned by
/// [`Engine::join_node`](crate::Engine::join_node).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinOutcome {
    /// The node that joined.
    pub node: NodeId,
    /// The layout version the join committed.
    pub layout_version: u64,
    /// Term-partitions the staged layout re-homed onto the joiner.
    pub partitions_moved: u64,
    /// Documents published inside the handover window (double-routing
    /// active).
    pub handover_docs: u64,
    /// Wall-clock length of the handover window, stage to commit,
    /// nanoseconds.
    pub handover_nanos: u64,
}

/// Migration counters the router accumulates across joins for the
/// [`RuntimeReport`](crate::RuntimeReport).
#[derive(Debug, Default)]
pub(crate) struct MigrationCounters {
    /// Node joins committed.
    pub joins: u64,
    /// Term-partitions moved across all joins.
    pub partitions_moved: u64,
    /// Documents double-routed to a moved partition's old home (serial
    /// router only; pool-mode double-routes are counted per ingest
    /// thread).
    pub docs_double_routed: u64,
    /// Documents published inside handover windows.
    pub handover_docs: u64,
    /// Total wall-clock nanoseconds spent inside handover windows.
    pub handover_nanos: u64,
}

/// A staged-but-uncommitted join: the scheme already serves the new
/// layout, the old homes still hold their copies, and the routing view
/// double-routes the moved terms.
pub(crate) struct PendingJoin {
    /// What the scheme staged (joiner, layout version, moved terms with
    /// their old homes).
    pub summary: JoinSummary,
    /// When the window opened.
    pub started: Instant,
    /// `docs_published` at the moment the window opened.
    pub docs_at_begin: u64,
}

impl PendingJoin {
    /// The handover map the routing view carries: moved term → old home.
    pub(crate) fn moved_map(&self) -> HashMap<TermId, NodeId> {
        self.summary.moved_terms.iter().copied().collect()
    }
}

impl<T: Transport> Router<T> {
    /// Phase 1 of a node join: stage the next layout version, spawn the
    /// joining worker, stream it the re-homed filter partitions, and
    /// publish the handover routing view. Publishing never stops — the
    /// caller keeps routing against the handover view until it commits.
    ///
    /// # Errors
    ///
    /// Propagates the scheme's staging error, and refuses to stage while
    /// another join is still in its handover window or when the transport
    /// cannot spawn workers (engine teardown).
    pub(crate) fn begin_join(&mut self) -> Result<()> {
        if self.pending_join.is_some() {
            return Err(MoveError::Runtime(
                "a node join is already in its handover window".into(),
            ));
        }
        // Everything routed under the old layout reaches the mailboxes
        // before the layout changes under it.
        self.flush_all();
        let summary = self.scheme.join_node()?;
        let node = summary.node;
        let index = self.scheme.shared_node_index(node);
        // The worker boots empty; the moved partitions arrive as its first
        // mailbox message, FIFO-ordered ahead of any document routed under
        // the handover view published below.
        // The joiner missed every subscription broadcast sent so far, so
        // it is seeded with the scheme's current fan-out snapshot — first
        // with the worker's boot copy, then (same message as the shard)
        // with the one the install pins alongside the moved partitions.
        let fanout = self.scheme.fanout_table();
        let empty = Arc::new(InvertedIndex::new(index.semantics()));
        if !self.transport.join(empty, Arc::clone(&fanout)) {
            return Err(MoveError::Runtime(
                "transport refused to spawn the joining worker".into(),
            ));
        }
        let installed = self.transport.control(
            node.as_usize(),
            NodeMessage::InstallPartitions {
                index: Arc::clone(&index),
                fanout: Arc::clone(&fanout),
                layout_version: summary.layout_version,
            },
        );
        debug_assert!(installed, "a freshly spawned worker cannot be dead");
        let _ = installed;
        // The joiner's journal base is the installed shard plus the seeded
        // fan-out table: a crash of the joining node replays exactly what
        // the handover streamed to it.
        self.supervisor.admit(&index, &fanout);
        self.pending.push(Vec::new());
        self.dead.push(false);
        self.migration.partitions_moved += summary.partitions_moved;
        self.pending_join = Some(PendingJoin {
            summary,
            started: Instant::now(),
            docs_at_begin: self.docs_published,
        });
        // Publish the handover view: moved terms route to the joiner *and*
        // double-route to their old homes while the window is open.
        self.pin_docs = 0;
        self.refresh_view();
        Ok(())
    }

    /// Phase 2 of a node join: flush everything routed under the handover
    /// view, retire the moved partitions' old copies, and publish the
    /// committed view. Returns the migration outcome.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Runtime`] when no join is staged, or when the
    /// joining node died inside its window — in that case nothing is
    /// retired (the old homes still hold every moved partition, so the
    /// handover view keeps serving; there is no rollback to perform).
    pub(crate) fn commit_join(&mut self) -> Result<JoinOutcome> {
        if self.pending_join.is_none() {
            return Err(MoveError::Runtime("no staged join to commit".into()));
        }
        // The fence gates the commit, not the copy: every document routed
        // under the handover view is in the mailboxes — ordered ahead of
        // the retirement below — before any old copy is dropped. Flushed
        // *before* the liveness check and with `pending_join` still in
        // place: worker deaths are discovered lazily on a failed send, so
        // this flush is what surfaces a joiner that died silently — and if
        // it does, the failover re-route inside it must still see the
        // handover view.
        self.flush_all();
        let Some(join) = self.pending_join.take() else {
            return Err(MoveError::Runtime("no staged join to commit".into()));
        };
        let joiner = join.summary.node.as_usize();
        if self.dead.get(joiner).copied().unwrap_or(true) {
            self.pending_join = Some(join);
            return Err(MoveError::Runtime(
                "joining node died during the handover window; old copies retained".into(),
            ));
        }
        self.scheme.retire_join(&join.summary)?;
        let old_homes: BTreeSet<usize> = join
            .summary
            .moved_terms
            .iter()
            .map(|&(_, old)| old.as_usize())
            .collect();
        for n in old_homes {
            if self.dead[n] {
                continue;
            }
            let index = self.scheme.shared_node_index(NodeId(n as u32));
            self.supervisor.record_snapshot(n, &index);
            if !self.transport.control(
                n,
                NodeMessage::RetirePartitions {
                    index,
                    layout_version: join.summary.layout_version,
                },
            ) {
                self.supervise_control_failure(n);
            }
        }
        self.migration.joins += 1;
        let handover_docs = self.docs_published - join.docs_at_begin;
        let handover_nanos = u64::try_from(join.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.migration.handover_docs += handover_docs;
        self.migration.handover_nanos += handover_nanos;
        // Committed view: no handover map (pending_join is gone).
        self.pin_docs = 0;
        self.refresh_view();
        Ok(JoinOutcome {
            node: join.summary.node,
            layout_version: join.summary.layout_version,
            partitions_moved: join.summary.partitions_moved,
            handover_docs,
            handover_nanos,
        })
    }
}

impl Router<ThreadTransport> {
    /// The router-pool join protocol: barrier → stage → publish the
    /// handover table → keep ingest flowing for `window_docs` more
    /// documents → fence → commit → publish the committed table → release.
    /// The ingest plane only parks for the commit fence — never for the
    /// partition copy, so ingest cannot fully stall during the handover.
    pub(crate) fn pool_join(
        &mut self,
        window_docs: u64,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
        pool: &Pool,
        exited: &mut usize,
    ) -> Result<JoinOutcome> {
        // Barrier first: documents already routed under the old layout
        // reach the worker mailboxes before the layout changes.
        self.pool_barrier(commands, backlog, pool);
        self.docs_published = pool.shared.docs_published.load(Ordering::Relaxed);
        self.begin_join()?;
        // The handover table: grown sender set plus the double-routing
        // view. Ingest threads pick it up on their next document.
        self.publish_table(pool);
        let start = pool.shared.docs_published.load(Ordering::Relaxed);
        while pool.shared.docs_published.load(Ordering::Relaxed) < start + window_docs {
            // Publishing continues on the ingest threads; this loop only
            // keeps the control channel drained (supervising dead-worker
            // batches inline, deferring everything else) until the window
            // fills or the engine tears down.
            match commands.recv_timeout(Duration::from_millis(1)) {
                Ok(Command::Gone { node, batch }) => {
                    self.handle_gone(node, batch);
                    self.publish_table(pool);
                }
                Ok(Command::IngestExited { metrics }) => {
                    self.ingest_metrics.push(metrics);
                    *exited += 1;
                    if *exited == pool.ingest.len() {
                        break; // every publisher exited: the window cannot fill
                    }
                }
                Ok(Command::Shutdown) => {
                    backlog.push_back(Command::Shutdown);
                    break;
                }
                Ok(cmd) => backlog.push_back(cmd),
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // The commit fence: park the ingest plane, merge its statistics
        // shards, retire the old copies, publish the committed table, and
        // only then release — no document routed under the handover view
        // can be dispatched after the retirement.
        let (ack_tx, ack_rx) = bounded(pool.ingest.len().max(1));
        let (rel_tx, rel_rx) = bounded(pool.ingest.len().max(1));
        let mut fenced = 0usize;
        for tx in &pool.ingest {
            if tx
                .send(IngestCommand::Fence {
                    ack: ack_tx.clone(),
                    release: rel_rx.clone(),
                })
                .is_ok()
            {
                fenced += 1;
            }
        }
        drop(ack_tx);
        self.wait_for_acks(&ack_rx, fenced, commands, backlog);
        self.absorb_shards(&pool.shared);
        self.docs_published = pool.shared.docs_published.load(Ordering::Relaxed);
        let outcome = self.commit_join();
        self.publish_table(pool);
        for _ in 0..fenced {
            let _ = rel_tx.send(());
        }
        outcome
    }
}
