//! The live execution engine: real OS threads, bounded mailboxes, and
//! wall-clock metrics for the MOVE dissemination schemes.
//!
//! The rest of the workspace evaluates the paper's schemes under a
//! *virtual-time* queueing simulation — perfectly reproducible, but every
//! cost is a model. This crate executes the very same routing decisions as
//! a real concurrent system:
//!
//! * every cluster node becomes an OS-thread **worker** owning its shard of
//!   the serving inverted index and a bounded [`crossbeam`] mailbox of
//!   typed [`NodeMessage`]s;
//! * a **router** thread owns the scheme (any [`move_core::Dissemination`])
//!   as its control plane: it calls the shared
//!   [`route`](move_core::Dissemination::route) method — the same one the
//!   simulator's `publish` executes — and dispatches the resulting
//!   [`move_core::RouteStep`]s to the workers as document batches;
//! * mailboxes are bounded, giving end-to-end **backpressure**: with
//!   [`OverflowPolicy::Block`] a slow worker stalls the router (and
//!   ultimately the publisher) without losing anything; with
//!   [`OverflowPolicy::Shed`] overload drops batches and counts them;
//! * each worker keeps wall-clock **match-latency** percentiles in a
//!   mergeable [`move_stats::LatencyHistogram`], plus message counts,
//!   postings-scanned counters, and its queue-depth high-watermark;
//! * [`Engine::shutdown`] drains every mailbox before the workers exit, so
//!   a graceful shutdown never loses queued deliveries.
//!
//! Because routing, matching, and maintenance all run through the exact
//! code paths of the simulated schemes, the delivery set produced by the
//! live engine equals the simulator's (and hence the brute-force oracle's)
//! — the property the integration tests pin down.
//!
//! # Examples
//!
//! ```
//! use move_core::{Dissemination, IlScheme, SystemConfig};
//! use move_runtime::{Engine, RuntimeConfig};
//! use move_types::{Document, Filter, TermId};
//!
//! let scheme = Box::new(IlScheme::new(SystemConfig::small_test()).unwrap());
//! let engine = Engine::start(scheme, RuntimeConfig::default()).unwrap();
//! engine.register(Filter::new(1u64, [TermId(3)]));
//! let matched = engine.publish_sync(Document::from_distinct_terms(1u64, [TermId(3)]));
//! assert_eq!(matched, vec![move_types::FilterId(1)]);
//! let report = engine.shutdown().unwrap();
//! assert_eq!(report.docs_published, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod fault;
mod ingest;
/// Deterministic schedule-permutation harness over the same router/worker
/// code the threaded engine runs.
pub mod interleave;
mod lanes;
mod message;
mod metrics;
/// Live partition rebalancing: staged node joins committed under load.
pub mod rebalance;
mod supervisor;
mod worker;

pub use config::{BatchPolicy, OverflowPolicy, RuntimeConfig, DEFAULT_LANE_COST_TARGET};
pub use engine::Engine;
pub use fault::{FaultAction, FaultEvent, FaultPlan};
pub use message::{Delivery, DocTask, NodeMessage};
pub use metrics::{IngestMetrics, NodeMetrics, RuntimeReport};
pub use rebalance::JoinOutcome;
pub use supervisor::SupervisionPolicy;
