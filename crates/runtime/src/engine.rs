//! The engine façade, its router, and the transport seam between them.
//!
//! The router's decision logic — routing plans, batching, flush ordering,
//! the overflow policy, allocation-refresh fencing, and since PR 3 the
//! fault-injection and supervision machinery — lives in [`Router`], which
//! is generic over a [`Transport`]: the production engine plugs in
//! [`ThreadTransport`] (real worker threads behind bounded channels), while
//! the deterministic interleaving harness in [`crate::interleave`] plugs in
//! an in-process transport it can single-step. Both drivers therefore
//! exercise the *same* router code path, so schedules the harness proves
//! safe are schedules of the production router, not of a model of it.
//!
//! # Failure semantics
//!
//! A worker is **dead** exactly when its mailbox receiver is gone: sends
//! fail, which every send site observes. The router reacts per its
//! [`SupervisionPolicy`]:
//!
//! * **restart** — respawn the worker from its registration journal's base
//!   snapshot, replay the journaled registrations, and resend the batch
//!   (with bounded retries and backoff). Registrations are journaled
//!   before the send, so a send that discovers the death is itself covered
//!   by the replay.
//! * **failover** — declare the node dead in the scheme's membership and
//!   re-route the stranded documents; the scheme's own routing (the same
//!   `route` the simulator uses) then fails the hop over to the
//!   placement's replica rows. Re-routed documents may produce duplicate
//!   deliveries on nodes that already matched them — consumers union per
//!   document, so duplicates are benign, and false deliveries remain
//!   structurally impossible (workers only hold genuinely placed filters).
//!
//! Work already *queued* at a crashed worker dies with it (counted in
//! [`RuntimeReport::tasks_lost`]): delivery is at-most-once for documents
//! in flight at the moment of a crash, exactly-once otherwise.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use move_core::{Dissemination, MatchTask, RegisterOp, RoutingView, UnregisterOp};
use move_index::{FanoutTable, InvertedIndex};
use move_stats::LatencyHistogram;
use move_types::{DocId, Document, Filter, FilterId, MoveError, NodeId, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::config::{BatchController, OverflowPolicy, RuntimeConfig};
use crate::fault::{FaultEvent, FaultPlan};
use crate::ingest::{IngestCommand, IngestShared, IngestTable, IngestThread, Pool};
use crate::message::{Delivery, DocTask, NodeMessage};
use crate::metrics::{IngestMetrics, NodeMetrics, RuntimeReport};
use crate::supervisor::{JournalOp, Supervisor};
use crate::worker::{Worker, WorkerFinal};

/// The seed of the control thread's replica-choice RNG (ingest threads
/// derive their own from it; see [`IngestThread::new`]).
const VIEW_RNG_SEED: u64 = 0x1357_9BDF_2468_ACE0;

/// Publisher-facing commands on the bounded router channel. The bound is
/// the outermost backpressure stage: when the router stalls on a full
/// worker mailbox (Block policy), this channel fills and `publish` blocks.
/// In router-pool mode the same channel doubles as the ingest threads'
/// up-link to the control thread ([`Command::Gone`],
/// [`Command::IngestExited`]).
pub(crate) enum Command {
    Register(Filter),
    /// Pool-mode registration: acked only after the control thread has
    /// barriered the ingest plane and placed the filter, so a publisher's
    /// register→publish order is preserved end to end.
    RegisterSync(Filter, Sender<()>),
    Unregister(FilterId),
    /// Pool-mode unregistration, acked like [`Command::RegisterSync`].
    UnregisterSync(FilterId, Sender<()>),
    Publish(Box<Document>),
    Stats(Sender<Vec<NodeMetrics>>),
    /// An ingest thread found worker `node` dead (or already declared
    /// dead); the stranded batch comes to the control thread for
    /// supervised restart or failover.
    Gone {
        node: usize,
        batch: Vec<DocTask>,
    },
    /// An ingest thread exited; its final counters for the report.
    IngestExited {
        metrics: IngestMetrics,
    },
    /// Stage a node join, run the handover window, and commit the new
    /// layout — the live-rebalancing entry point (see [`crate::rebalance`]).
    Join {
        /// Documents the handover window stays open for (pool mode; the
        /// serial router commits immediately — nothing publishes
        /// concurrently with it).
        window_docs: u64,
        /// Where the migration outcome (or the staging error) goes.
        reply: Sender<Result<crate::rebalance::JoinOutcome>>,
    },
    Shutdown,
}

/// What happened to a document batch handed to the transport.
#[derive(Debug)]
pub(crate) enum BatchOutcome {
    /// The batch was enqueued on the worker's mailbox.
    Delivered,
    /// The mailbox was full under [`OverflowPolicy::Shed`]; the batch was
    /// dropped.
    Shed,
    /// The worker is gone (its mailbox disconnected); the undelivered
    /// tasks come back so the supervisor can resend or fail them over.
    Gone(Vec<DocTask>),
}

/// Recovers the tasks of a batch message a dead worker's mailbox returned.
pub(crate) fn reclaim(msg: NodeMessage) -> BatchOutcome {
    match msg {
        NodeMessage::PublishDocument { batch } => BatchOutcome::Gone(batch),
        // `Transport::batch` is only ever called with `PublishDocument`;
        // other returned messages carry no tasks to reclaim.
        NodeMessage::RegisterFilter { .. }
        | NodeMessage::UnregisterFilter { .. }
        | NodeMessage::Subscribe { .. }
        | NodeMessage::Unsubscribe { .. }
        | NodeMessage::AllocationUpdate { .. }
        | NodeMessage::InstallPartitions { .. }
        | NodeMessage::RetirePartitions { .. }
        | NodeMessage::StatsReport { .. }
        | NodeMessage::Fault { .. }
        | NodeMessage::Ping { .. }
        | NodeMessage::Shutdown => BatchOutcome::Gone(Vec::new()),
    }
}

/// The router's outbound seam: how messages reach node workers.
///
/// Control messages (registration, allocation updates, stats requests,
/// shutdown, injected faults, heartbeats) must not be silently shed, so
/// [`Transport::control`] reports only delivered-or-dead; document batches
/// go through [`Transport::batch`], which applies the overflow policy.
/// [`Transport::restart`] is the supervision hook: replace a dead worker
/// with a fresh one booted from the given index shard.
pub(crate) trait Transport {
    /// Number of node workers reachable through this transport.
    fn nodes(&self) -> usize;

    /// Delivers a control message to node `n`, blocking if necessary.
    /// Returns `false` when the worker is dead (mailbox disconnected).
    fn control(&mut self, n: usize, msg: NodeMessage) -> bool;

    /// Delivers a document batch to node `n` under the overflow policy.
    fn batch(&mut self, n: usize, msg: NodeMessage) -> BatchOutcome;

    /// Replaces a dead worker `n` with a fresh one serving `index` and
    /// expanding deliveries through `fanout`. Returns `false` when this
    /// transport cannot restart workers (e.g. during engine teardown).
    fn restart(&mut self, n: usize, index: Arc<InvertedIndex>, fanout: Arc<FanoutTable>) -> bool;

    /// Admits a **new** worker at index `nodes()` serving `index` with
    /// fan-out table `fanout` — the transport half of a staged node join.
    /// Returns `false` when this transport cannot spawn workers (engine
    /// teardown).
    fn join(&mut self, index: Arc<InvertedIndex>, fanout: Arc<FanoutTable>) -> bool;
}

/// The production transport: one bounded crossbeam channel per worker
/// thread, plus everything needed to respawn one.
pub(crate) struct ThreadTransport {
    workers: Vec<Sender<NodeMessage>>,
    handles: Vec<JoinHandle<()>>,
    overflow: OverflowPolicy,
    mailbox_capacity: usize,
    /// Match lanes per worker (1 = inline matching; see [`crate::lanes`]).
    match_lanes: usize,
    /// Per-unit scan-cost target of the lane planner
    /// ([`RuntimeConfig::lane_cost_target`]).
    lane_cost_target: usize,
    delivery_tx: Sender<Delivery>,
    /// `None` once shutdown starts — restarts are refused and the finals
    /// channel can disconnect.
    final_tx: Option<Sender<WorkerFinal>>,
}

impl ThreadTransport {
    /// Spawns (or respawns) worker `n` serving `index`, expanding
    /// deliveries through `fanout`.
    fn spawn_worker(
        &mut self,
        n: usize,
        index: Arc<InvertedIndex>,
        fanout: Arc<FanoutTable>,
    ) -> Result<()> {
        let Some(final_tx) = self.final_tx.clone() else {
            return Err(MoveError::Runtime("engine is shutting down".into()));
        };
        let (tx, rx) = bounded(self.mailbox_capacity);
        let worker = Worker::with_lanes(
            NodeId(n as u32),
            index,
            fanout,
            rx,
            self.delivery_tx.clone(),
            self.match_lanes,
            self.lane_cost_target,
            false,
        );
        let handle = thread::Builder::new()
            .name(format!("move-node-{n}"))
            .spawn(move || {
                let _ = final_tx.send(worker.run());
            })
            .map_err(|e| MoveError::Runtime(format!("spawn worker thread {n}: {e}")))?;
        if n < self.workers.len() {
            self.workers[n] = tx;
        } else {
            self.workers.push(tx);
        }
        self.handles.push(handle);
        Ok(())
    }
}

impl Transport for ThreadTransport {
    fn nodes(&self) -> usize {
        self.workers.len()
    }

    fn control(&mut self, n: usize, msg: NodeMessage) -> bool {
        self.workers[n].send(msg).is_ok()
    }

    fn batch(&mut self, n: usize, msg: NodeMessage) -> BatchOutcome {
        match self.overflow {
            OverflowPolicy::Block => match self.workers[n].send(msg) {
                Ok(()) => BatchOutcome::Delivered,
                Err(e) => reclaim(e.0),
            },
            OverflowPolicy::Shed => match self.workers[n].try_send(msg) {
                Ok(()) => BatchOutcome::Delivered,
                Err(TrySendError::Full(_)) => BatchOutcome::Shed,
                Err(TrySendError::Disconnected(m)) => reclaim(m),
            },
        }
    }

    fn restart(&mut self, n: usize, index: Arc<InvertedIndex>, fanout: Arc<FanoutTable>) -> bool {
        self.spawn_worker(n, index, fanout).is_ok()
    }

    fn join(&mut self, index: Arc<InvertedIndex>, fanout: Arc<FanoutTable>) -> bool {
        let n = self.workers.len();
        self.spawn_worker(n, index, fanout).is_ok()
    }
}

/// A running live engine over one dissemination scheme.
///
/// See the crate docs for the architecture; see [`RuntimeConfig`] for the
/// tuning knobs. All methods take `&self` — the engine is driven from one
/// publisher thread but is internally thread-safe.
#[derive(Debug)]
pub struct Engine {
    commands: Sender<Command>,
    /// Ingest-thread command senders (empty in single-router mode).
    ingest: Vec<Sender<IngestCommand>>,
    /// Round-robin cursor over `ingest`.
    next_ingest: AtomicUsize,
    deliveries: Receiver<Delivery>,
    router: Option<JoinHandle<Result<RuntimeReport>>>,
}

impl Engine {
    /// Boots one worker thread per cluster node (shards cloned from the
    /// scheme's current state, so filters registered before `start` are
    /// served) plus the router thread owning `scheme`. No faults are
    /// injected; see [`Engine::start_with_faults`].
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Runtime`] if the OS refuses to spawn a thread;
    /// any workers already spawned observe their mailboxes disconnect and
    /// exit on their own.
    pub fn start(scheme: Box<dyn Dissemination + Send>, config: RuntimeConfig) -> Result<Self> {
        Self::start_with_faults(scheme, config, FaultPlan::none())
    }

    /// Like [`Engine::start`], but with a seeded [`FaultPlan`] the router
    /// injects as it publishes — the wall-clock counterpart of the
    /// simulator's `fail_fraction`. Recovery follows
    /// [`RuntimeConfig::supervision`].
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Runtime`] if the OS refuses to spawn a thread.
    pub fn start_with_faults(
        scheme: Box<dyn Dissemination + Send>,
        config: RuntimeConfig,
        plan: FaultPlan,
    ) -> Result<Self> {
        let nodes = scheme.cluster().len();
        // The delivery stream must outlive shutdown (consumers drain it
        // after the workers exit) and bounding it would deadlock workers
        // against consumers that only start reading after `shutdown()`.
        let (delivery_tx, delivery_rx) = unbounded(); // xtask:allow-unbounded
                                                      // Each worker *incarnation* sends exactly one final; restarts make
                                                      // the count dynamic, so the channel is unbounded — its true bound
                                                      // is initial workers + supervised restarts.
        let (final_tx, final_rx) = unbounded(); // xtask:allow-unbounded
        let mut transport = ThreadTransport {
            workers: Vec::with_capacity(nodes),
            handles: Vec::with_capacity(nodes),
            overflow: config.overflow,
            mailbox_capacity: config.mailbox_capacity,
            match_lanes: config.match_lanes.max(1),
            lane_cost_target: config.lane_cost_target.max(1),
            delivery_tx,
            final_tx: Some(final_tx),
        };
        // Filters registered before `start` may already be aggregated;
        // every worker boots from the scheme's current fan-out snapshot
        // (empty for non-aggregating schemes — identity expansion).
        let fanout = scheme.fanout_table();
        let mut bases = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let index = scheme.shared_node_index(NodeId(i as u32));
            bases.push(Arc::clone(&index));
            transport.spawn_worker(i, index, Arc::clone(&fanout))?;
        }

        let (cmd_tx, cmd_rx) = bounded(config.command_capacity);
        let publishers = config.publishers.max(1);
        let command_capacity = config.command_capacity;
        let router = Router::new(scheme, config, transport, plan, bases);
        if publishers == 1 {
            let handle = thread::Builder::new()
                .name("move-router".into())
                .spawn(move || router.run(&cmd_rx, &final_rx))
                .map_err(|e| MoveError::Runtime(format!("spawn router thread: {e}")))?;
            return Ok(Self {
                commands: cmd_tx,
                ingest: Vec::new(),
                next_ingest: AtomicUsize::new(0),
                deliveries: delivery_rx,
                router: Some(handle),
            });
        }

        // Router-pool mode: N publisher-facing ingest threads route
        // against the shared snapshot table; this thread becomes the
        // control plane (registration, allocation refresh, supervision,
        // fault injection).
        let shared = Arc::new(IngestShared::new(
            publishers,
            nodes,
            IngestTable {
                view: router.view.clone(),
                senders: router.transport.workers.clone(),
                dead: router.dead.clone(),
            },
        ));
        let mut ingest_txs = Vec::with_capacity(publishers);
        let mut ingest_handles = Vec::with_capacity(publishers);
        for t in 0..publishers {
            let (tx, rx) = bounded(command_capacity);
            let thread_state = IngestThread::new(
                t,
                nodes,
                Arc::clone(&shared),
                cmd_tx.clone(),
                &router.config,
                VIEW_RNG_SEED,
            );
            let handle = thread::Builder::new()
                .name(format!("move-ingest-{t}"))
                .spawn(move || thread_state.run(&rx))
                .map_err(|e| MoveError::Runtime(format!("spawn ingest thread {t}: {e}")))?;
            ingest_txs.push(tx);
            ingest_handles.push(handle);
        }
        let pool = Pool {
            shared,
            ingest: ingest_txs.clone(),
            handles: ingest_handles,
        };
        let handle = thread::Builder::new()
            .name("move-router".into())
            .spawn(move || router.run_pool(&cmd_rx, &final_rx, pool))
            .map_err(|e| MoveError::Runtime(format!("spawn router thread: {e}")))?;
        Ok(Self {
            commands: cmd_tx,
            ingest: ingest_txs,
            next_ingest: AtomicUsize::new(0),
            deliveries: delivery_rx,
            router: Some(handle),
        })
    }

    /// Registers a filter: the control plane places it, then the affected
    /// workers install serving copies (FIFO-ordered after any documents
    /// already queued for them). In router-pool mode the call is
    /// synchronous — it returns only after the control thread has fenced
    /// the ingest plane and placed the filter, so a subsequent `publish`
    /// is guaranteed to route against the registered filter.
    pub fn register(&self, filter: Filter) {
        if self.ingest.is_empty() {
            let _ = self.commands.send(Command::Register(filter));
            return;
        }
        let (tx, rx) = bounded(1);
        if self
            .commands
            .send(Command::RegisterSync(filter, tx))
            .is_ok()
        {
            let _ = rx.recv();
        }
    }

    /// Unregisters a subscriber: the control plane removes the
    /// subscription and — when it was the predicate's last — drops the
    /// canonical's serving copies from the affected workers. Synchronous
    /// in router-pool mode, like [`Engine::register`].
    pub fn unregister(&self, id: FilterId) {
        if self.ingest.is_empty() {
            let _ = self.commands.send(Command::Unregister(id));
            return;
        }
        let (tx, rx) = bounded(1);
        if self.commands.send(Command::UnregisterSync(id, tx)).is_ok() {
            let _ = rx.recv();
        }
    }

    /// Publishes a document into the pipeline. Blocks when the command
    /// channel is full — the backpressure the bounded mailboxes propagate
    /// up under [`OverflowPolicy::Block`]. In router-pool mode documents
    /// are round-robined over the ingest threads.
    pub fn publish(&self, doc: Document) {
        if self.ingest.is_empty() {
            let _ = self.commands.send(Command::Publish(Box::new(doc)));
            return;
        }
        let i = self.next_ingest.fetch_add(1, Ordering::Relaxed) % self.ingest.len();
        let _ = self.ingest[i].send(IngestCommand::Publish(Box::new(doc)));
    }

    /// Snapshot of every worker's metrics. This is also a **barrier**: the
    /// router first flushes all pending batches and each worker replies
    /// only after handling everything earlier in its mailbox, so on return
    /// all previously published documents have been fully matched.
    #[must_use]
    pub fn stats(&self) -> Vec<NodeMetrics> {
        let (tx, rx) = bounded(1);
        if self.commands.send(Command::Stats(tx)).is_err() {
            return Vec::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// Blocks until all previously published documents are fully matched.
    pub fn flush(&self) {
        let _ = self.stats();
    }

    /// Adds a node to the running cluster without stopping the publishers:
    /// stages the next layout version, spawns the new worker with the
    /// re-homed filter partitions, keeps ingest flowing (double-routing
    /// affected documents to the partitions' old homes) for a handover
    /// window of `window_docs` more published documents, then commits the
    /// layout and retires the old copies. In serial mode (one publisher)
    /// nothing publishes concurrently, so the window is empty and the join
    /// commits immediately.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Runtime`] when the engine is shutting down, and
    /// propagates the scheme's staging error (e.g. a scheme without
    /// elastic-join support).
    pub fn join_node(&self, window_docs: u64) -> Result<crate::rebalance::JoinOutcome> {
        let (tx, rx) = bounded(1);
        self.commands
            .send(Command::Join {
                window_docs,
                reply: tx,
            })
            .map_err(|_| MoveError::Runtime("engine is shutting down".into()))?;
        rx.recv()
            .map_err(|_| MoveError::Runtime("router exited during the join".into()))?
    }

    /// A handle to the delivery stream (cloneable; deliveries already
    /// consumed elsewhere are not replayed).
    #[must_use]
    pub fn deliveries(&self) -> Receiver<Delivery> {
        self.deliveries.clone()
    }

    /// Publishes one document and waits for its complete delivery set —
    /// the interactive (CLI) mode. Only meaningful when the caller is the
    /// sole publisher: the internal barrier drains the shared delivery
    /// stream, discarding other documents' deliveries.
    #[must_use]
    pub fn publish_sync(&self, doc: Document) -> Vec<FilterId> {
        let id = doc.id();
        self.publish(doc);
        self.flush();
        let mut matched: Vec<FilterId> = self
            .deliveries
            .try_iter()
            .filter(|d| d.doc == id)
            .flat_map(|d| d.matched)
            .collect();
        matched.sort_unstable();
        matched.dedup();
        matched
    }

    /// Graceful shutdown: drains every mailbox, stops all threads, and
    /// returns the merged report. Deliveries still queued in the delivery
    /// stream remain readable from handles obtained via
    /// [`Engine::deliveries`] before this call.
    ///
    /// # Errors
    ///
    /// Propagates a control-plane (allocation) error that aborted the
    /// router, and reports a panicked router or worker thread as
    /// [`MoveError::Runtime`]; worker state is torn down either way.
    pub fn shutdown(mut self) -> Result<RuntimeReport> {
        for tx in &self.ingest {
            let _ = tx.send(IngestCommand::Shutdown);
        }
        let _ = self.commands.send(Command::Shutdown);
        let Some(handle) = self.router.take() else {
            return Err(MoveError::Runtime("router already joined".into()));
        };
        handle
            .join()
            .map_err(|_| MoveError::Runtime("router thread panicked".into()))?
    }
}

/// The decision half of the engine: owns the scheme, accumulates per-node
/// batches, injects scheduled faults, supervises dead workers, and speaks
/// to workers only through its [`Transport`].
pub(crate) struct Router<T> {
    pub(crate) scheme: Box<dyn Dissemination + Send>,
    pub(crate) config: RuntimeConfig,
    pub(crate) transport: T,
    /// The immutable routing snapshot every document is routed against —
    /// the same object ingest threads hold in pool mode. Republished
    /// (epoch + 1) on registration, allocation refresh, and membership
    /// change; see [`Router::refresh_view`].
    pub(crate) view: RoutingView,
    /// Replica-row / replica-group choices for view-based routing. The
    /// stream differs from the scheme's own RNG, which is fine: replicas
    /// hold identical filter subsets, so delivery sets are unaffected.
    view_rng: StdRng,
    /// When nonzero, registration-driven view refreshes are deferred for
    /// this many more published documents — the interleaving harness's
    /// model of an ingest thread still routing on a stale snapshot.
    /// Allocation refreshes and membership changes clear the pin (they
    /// fence the real pool).
    pub(crate) pin_docs: u64,
    /// Final counters reported by exited ingest threads (pool mode).
    pub(crate) ingest_metrics: Vec<IngestMetrics>,
    /// Per-node batch under accumulation.
    pub(crate) pending: Vec<Vec<DocTask>>,
    /// The router's own batch-size governor (see [`crate::BatchPolicy`]);
    /// ingest threads each own an independent one.
    batcher: BatchController,
    /// Scheduled fault events, sorted by trigger point.
    plan: Vec<FaultEvent>,
    /// Index of the next unfired fault event.
    next_fault: usize,
    /// The supervision state: per-node registration journals + counters.
    pub(crate) supervisor: Supervisor,
    /// Nodes declared dead under the failover policy (never routed to
    /// again until revived).
    pub(crate) dead: Vec<bool>,
    /// The staged-but-uncommitted node join, if one is in its handover
    /// window (see [`crate::rebalance`]).
    pub(crate) pending_join: Option<crate::rebalance::PendingJoin>,
    /// Live-rebalancing counters for the report.
    pub(crate) migration: crate::rebalance::MigrationCounters,
    /// Documents whose re-routed tasks found no live replica.
    pub(crate) lost_docs: BTreeSet<DocId>,
    /// `docs_published` at the most recent death discovery (see
    /// [`RuntimeReport::deaths_settled_at`]).
    deaths_settled_at: Option<u64>,
    /// Tasks dropped because failover found no live replica.
    tasks_failed: u64,
    pub(crate) docs_published: u64,
    pub(crate) tasks_dispatched: u64,
    pub(crate) tasks_shed: u64,
    pub(crate) allocation_updates: u64,
    /// Live registrations applied (post-start churn included).
    pub(crate) registrations: u64,
    /// Live unregistrations applied.
    pub(crate) unregistrations: u64,
    /// Registrations that hit an already-live canonical predicate.
    pub(crate) canonical_hits: u64,
}

impl<T: Transport> Router<T> {
    pub(crate) fn new(
        scheme: Box<dyn Dissemination + Send>,
        config: RuntimeConfig,
        transport: T,
        plan: FaultPlan,
        bases: Vec<Arc<InvertedIndex>>,
    ) -> Self {
        let nodes = transport.nodes();
        let view = scheme.routing_view(0);
        let batcher = BatchController::new(&config);
        let supervisor = Supervisor::new(bases, scheme.fanout_table());
        Self {
            scheme,
            config,
            batcher,
            transport,
            view,
            view_rng: StdRng::seed_from_u64(VIEW_RNG_SEED),
            pin_docs: 0,
            ingest_metrics: Vec::new(),
            pending: vec![Vec::new(); nodes],
            plan: plan.events,
            next_fault: 0,
            supervisor,
            dead: vec![false; nodes],
            pending_join: None,
            migration: crate::rebalance::MigrationCounters::default(),
            lost_docs: BTreeSet::new(),
            deaths_settled_at: None,
            tasks_failed: 0,
            docs_published: 0,
            tasks_dispatched: 0,
            tasks_shed: 0,
            allocation_updates: 0,
            registrations: 0,
            unregistrations: 0,
            canonical_hits: 0,
        }
    }

    /// Applies one publisher command. Returns `Ok(false)` when the command
    /// asks the router to stop ([`Command::Shutdown`]).
    ///
    /// # Errors
    ///
    /// Propagates control-plane errors from the scheme (registration or
    /// allocation-refresh failures).
    pub(crate) fn handle_command(&mut self, cmd: Command) -> Result<bool> {
        match cmd {
            Command::Publish(doc) => self.publish(&Arc::new(*doc))?,
            Command::Register(filter) => self.register(&filter)?,
            Command::RegisterSync(filter, ack) => {
                self.register(&filter)?;
                let _ = ack.send(());
            }
            Command::Unregister(id) => self.unregister(id)?,
            Command::UnregisterSync(id, ack) => {
                self.unregister(id)?;
                let _ = ack.send(());
            }
            Command::Stats(reply) => self.stats(&reply),
            Command::Gone { node, batch } => self.handle_gone(node, batch),
            Command::IngestExited { metrics } => self.ingest_metrics.push(metrics),
            Command::Join { reply, .. } => {
                // Serial router: no publisher runs concurrently with this
                // command, so the handover window is empty — stage and
                // commit back to back. The window knob only matters in
                // pool mode (see `pool_join`).
                let outcome = self.begin_join().and_then(|()| self.commit_join());
                let _ = reply.send(outcome);
            }
            Command::Shutdown => return Ok(false),
        }
        Ok(true)
    }

    /// Re-freezes the routing snapshot from the scheme's current state
    /// under the next epoch. Every mutation of routing inputs —
    /// registration, allocation refresh, membership change — funnels
    /// through here; in pool mode the caller then republishes the ingest
    /// table so the pool picks the new epoch up. While a join is in its
    /// handover window, the re-frozen view keeps carrying the handover
    /// map — double-routing must survive any mid-window refresh until the
    /// old copies are retired at commit.
    pub(crate) fn refresh_view(&mut self) {
        let epoch = self.view.epoch + 1;
        let mut view = self.scheme.routing_view(epoch);
        if let Some(join) = &self.pending_join {
            view = view.with_handover(join.moved_map());
        }
        self.view = view;
    }

    /// Defers registration-driven view refreshes for the next `docs`
    /// published documents — the deterministic model of a snapshot-refresh
    /// race (an ingest thread keeps routing on the old epoch while the
    /// control plane has already advanced). Used by the interleaving
    /// harness's `PinView` script op.
    pub(crate) fn pin_view(&mut self, docs: u64) {
        self.pin_docs = docs;
    }

    /// Injects a fault into node `n`'s mailbox out of schedule — the
    /// interleaving harness's `Crash` script op. A send to an
    /// already-dead worker is ignored (nothing left to fault).
    pub(crate) fn fault(&mut self, n: usize, action: crate::fault::FaultAction) {
        let _ = self.transport.control(n, NodeMessage::Fault { action });
    }

    /// Restarts node `n` from its journal and welcomes it back into the
    /// membership — the failover-then-the-node-returns transition (the
    /// interleaving harness's `Restart` script op). Returns `false` when
    /// the transport refuses.
    pub(crate) fn revive(&mut self, n: usize) -> bool {
        if !self.supervisor.restart_and_replay(n, &mut self.transport) {
            return false;
        }
        self.dead[n] = false;
        self.scheme
            .cluster_mut()
            .membership_mut()
            .recover(NodeId(n as u32));
        self.pin_docs = 0;
        self.refresh_view();
        true
    }

    /// Flushes the remaining batches and sends every worker a
    /// [`NodeMessage::Shutdown`], FIFO-ordered behind all earlier work.
    /// Send failures are ignored: a dead worker is already shut down.
    pub(crate) fn shutdown_workers(&mut self) {
        self.flush_all();
        for n in 0..self.transport.nodes() {
            let _ = self.transport.control(n, NodeMessage::Shutdown);
        }
    }

    /// Merges worker finals with the router's own counters into the final
    /// report. A node restarted mid-run contributed one final per
    /// incarnation; they are summed (histograms merged) into one
    /// [`NodeMetrics`] entry.
    pub(crate) fn into_report(self, results: Vec<WorkerFinal>) -> RuntimeReport {
        let node_count = self.transport.nodes();
        let mut merged = LatencyHistogram::new();
        let mut per_node: BTreeMap<usize, (NodeMetrics, LatencyHistogram)> = BTreeMap::new();
        let mut worker_lost = 0u64;
        let mut lost_docs: BTreeSet<DocId> = self.lost_docs;
        for f in results {
            merged.merge(&f.histogram);
            worker_lost += f.metrics.tasks_lost;
            lost_docs.extend(f.lost_docs.iter().copied());
            let i = f.metrics.node.as_usize().min(node_count.saturating_sub(1));
            match per_node.get_mut(&i) {
                None => {
                    per_node.insert(i, (f.metrics, f.histogram));
                }
                Some((m, h)) => {
                    m.messages_processed += f.metrics.messages_processed;
                    m.doc_tasks += f.metrics.doc_tasks;
                    m.postings_scanned += f.metrics.postings_scanned;
                    m.deliveries += f.metrics.deliveries;
                    m.queue_depth_hwm = m.queue_depth_hwm.max(f.metrics.queue_depth_hwm);
                    m.tasks_lost += f.metrics.tasks_lost;
                    m.steals += f.metrics.steals;
                    m.lane_units += f.metrics.lane_units;
                    h.merge(&f.histogram);
                }
            }
        }
        let nodes = per_node
            .into_values()
            .map(|(mut m, h)| {
                m.latency = h.summary();
                m
            })
            .collect();
        let mut ingest = self.ingest_metrics;
        ingest.sort_by_key(|m| m.thread);
        RuntimeReport {
            scheme: self.scheme.name().to_owned(),
            docs_published: self.docs_published,
            tasks_dispatched: self.tasks_dispatched
                + ingest.iter().map(|m| m.tasks_dispatched).sum::<u64>(),
            tasks_shed: self.tasks_shed + ingest.iter().map(|m| m.tasks_shed).sum::<u64>(),
            allocation_updates: self.allocation_updates,
            joins: self.migration.joins,
            partitions_moved: self.migration.partitions_moved,
            docs_double_routed: self.migration.docs_double_routed
                + ingest.iter().map(|m| m.docs_double_routed).sum::<u64>(),
            handover_docs: self.migration.handover_docs,
            handover_nanos: self.migration.handover_nanos,
            restarts: self.supervisor.restarts,
            retries: self.supervisor.retries,
            failovers: self.supervisor.failovers,
            tasks_lost: worker_lost + self.tasks_failed,
            lost_docs: lost_docs.into_iter().collect(),
            deaths_settled_at: self.deaths_settled_at,
            batch_limit_hwm: ingest
                .iter()
                .map(|m| m.batch_limit_hwm)
                .fold(self.batcher.hwm() as u64, u64::max),
            registrations: self.registrations,
            unregistrations: self.unregistrations,
            canonical_hits: self.canonical_hits,
            canonical_filters: self.scheme.canonical_filters(),
            aggregation_bytes: self.scheme.aggregation_bytes(),
            ingest,
            q_hits: self.scheme.doc_hits_per_node(),
            nodes,
            latency: merged.summary(),
        }
    }

    fn serve(&mut self, commands: &Receiver<Command>) -> Result<()> {
        loop {
            match commands.recv_timeout(self.config.flush_interval) {
                Ok(cmd) => {
                    if !self.handle_command(cmd)? {
                        return Ok(());
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
                // Idle: age out partially filled batches, then probe the
                // workers so a death with no pending traffic still heals.
                Err(RecvTimeoutError::Timeout) => {
                    self.flush_all();
                    self.heartbeat();
                }
            }
        }
    }

    /// Sends every live worker a [`NodeMessage::Ping`]. A worker is only
    /// declared dead on a *failed send* (disconnected mailbox) — a slow
    /// reply means a deep queue, not a death, so replies are not awaited.
    fn heartbeat(&mut self) {
        let (tx, _rx) = bounded(self.transport.nodes().max(1));
        for n in 0..self.transport.nodes() {
            if self.dead[n] {
                continue;
            }
            if !self
                .transport
                .control(n, NodeMessage::Ping { reply: tx.clone() })
            {
                self.supervise_control_failure(n);
            }
        }
    }

    /// Fires every scheduled fault whose trigger point has been reached.
    /// Sends to already-dead workers are ignored — a fault cannot kill a
    /// node twice.
    fn inject_faults(&mut self) {
        while self.next_fault < self.plan.len()
            && self.plan[self.next_fault].at_doc <= self.docs_published
        {
            let ev = self.plan[self.next_fault];
            self.next_fault += 1;
            let _ = self
                .transport
                .control(ev.node.as_usize(), NodeMessage::Fault { action: ev.action });
        }
    }

    fn publish(&mut self, doc: &Arc<Document>) -> Result<()> {
        // Route against the immutable snapshot — the identical code path
        // the ingest pool runs, so the serial router *is* a pool of one.
        // During a handover window the view appends double-route steps to
        // the moved partitions' old homes (duplicates are benign).
        let (steps, doubled) = self.view.route_handover(doc, &mut self.view_rng);
        if doubled {
            self.migration.docs_double_routed += 1;
        }
        self.docs_published += 1;
        let dispatched = Instant::now();
        for step in steps {
            // The router itself plays the home node's forwarding hop: a
            // Forward step touches no posting list, so there is nothing to
            // ship to the worker.
            if matches!(step.task, MatchTask::Forward) {
                continue;
            }
            let n = step.node.as_usize();
            self.pending[n].push(DocTask {
                doc: Arc::clone(doc),
                task: step.task,
                dispatched,
            });
            if self.pending[n].len() >= self.batcher.limit() {
                self.flush_node(n);
            }
        }
        // The observe/allocate refresh cycle, split so the pool can batch
        // the observation half into sharded deltas.
        self.scheme.note_published(doc);
        self.apply_refresh()?;
        // A pinned (stale) view ages out with published documents; the
        // expiry refresh picks up any registrations deferred meanwhile.
        if self.pin_docs > 0 {
            self.pin_docs -= 1;
            if self.pin_docs == 0 {
                self.refresh_view();
            }
        }
        self.inject_faults();
        Ok(())
    }

    /// Runs the scheme's allocation refresh if it is due. A layout change
    /// must reach the workers *after* everything routed under the old
    /// layout (hence the flush) and before anything routed under the new
    /// one — mailbox FIFO order guarantees both once the update is sent
    /// here. Refreshes the routing snapshot afterwards either way it went.
    fn apply_refresh(&mut self) -> Result<()> {
        if self.scheme.refresh_allocation()? {
            self.flush_all();
            self.allocation_updates += 1;
            for n in 0..self.transport.nodes() {
                // A structural share of the scheme's shard: the journal
                // snapshot and the worker's serving copy are the same
                // allocation, and the scheme copies-on-write at its next
                // mutation — zero deep clones on the refresh path.
                let index = self.scheme.shared_node_index(NodeId(n as u32));
                self.supervisor.record_snapshot(n, &index);
                if !self
                    .transport
                    .control(n, NodeMessage::AllocationUpdate { index })
                {
                    self.supervise_control_failure(n);
                }
            }
            self.pin_docs = 0;
            self.refresh_view();
        }
        Ok(())
    }

    fn register(&mut self, filter: &Filter) -> Result<()> {
        // The scheme applies the mutation to its own serving state and
        // describes what the workers must be told (DESIGN.md §12).
        let ops = self.scheme.register_op(filter)?;
        let mut layout_changed = false;
        if let Some(displaced) = ops.displaced {
            // The same subscriber id re-registering with a different
            // predicate: its old subscription leaves first.
            layout_changed |= self.ship_unregister_op(displaced);
        }
        match ops.op {
            RegisterOp::NoOp => {}
            RegisterOp::Subscribe {
                canonical,
                subscriber,
            } => {
                // Canonical hit: no posting entry moves anywhere and the
                // routing inputs are untouched, so the (comparatively
                // expensive) view refresh is skipped — the control-plane
                // aggregation win under registration churn.
                self.registrations += 1;
                self.canonical_hits += 1;
                self.broadcast_subscription(canonical, subscriber, true);
            }
            RegisterOp::NewCanonical {
                canonical,
                subscriber,
                targets,
            } => {
                self.registrations += 1;
                let id = canonical.id();
                for (node, terms) in targets {
                    let n = node.as_usize();
                    // Flush first so documents published before this
                    // registration are matched against the
                    // pre-registration shard.
                    self.flush_node(n);
                    // Journal before sending: if the send finds the worker
                    // dead, the replay already covers this registration.
                    self.supervisor.record_op(
                        n,
                        JournalOp::Register {
                            filter: Arc::clone(&canonical),
                            terms: terms.clone(),
                        },
                    );
                    if !self.transport.control(
                        n,
                        NodeMessage::RegisterFilter {
                            filter: Arc::clone(&canonical),
                            terms,
                        },
                    ) {
                        self.supervise_control_failure(n);
                    }
                }
                // Subscribe *after* the serving copies: a document slotted
                // between the two on a target node expands the canonical
                // through the identity fallback — exactly the one live
                // subscriber it has.
                self.broadcast_subscription(id, subscriber, true);
                layout_changed = true;
            }
        }
        // A pinned view defers the refresh — the registration takes routing
        // effect only at pin expiry, like a snapshot still in flight.
        if layout_changed && self.pin_docs == 0 {
            self.refresh_view();
        }
        Ok(())
    }

    fn unregister(&mut self, id: FilterId) -> Result<()> {
        let op = self.scheme.unregister_op(id)?;
        if matches!(op, UnregisterOp::NotRegistered) {
            return Ok(());
        }
        self.unregistrations += 1;
        if self.ship_unregister_op(op) && self.pin_docs == 0 {
            self.refresh_view();
        }
        Ok(())
    }

    /// Ships one unregistration's worker messages; returns whether the
    /// posting layout changed (and the routing view therefore went stale).
    fn ship_unregister_op(&mut self, op: UnregisterOp) -> bool {
        match op {
            UnregisterOp::NotRegistered => false,
            UnregisterOp::Unsubscribe {
                canonical,
                subscriber,
            } => {
                self.broadcast_subscription(canonical, subscriber, false);
                false
            }
            UnregisterOp::RemoveCanonical {
                canonical,
                subscriber,
                targets,
            } => {
                // Postings first, fan-out entry second: a document slotted
                // between the two on a target node no longer matches the
                // canonical, so the (already drained, possibly dropped)
                // fan-out entry is never consulted for it — no spurious
                // identity-fallback delivery of a long-gone donor id.
                for (node, terms) in targets {
                    let n = node.as_usize();
                    self.flush_node(n);
                    self.supervisor.record_op(
                        n,
                        JournalOp::Unregister {
                            id: canonical,
                            terms: terms.clone(),
                        },
                    );
                    if !self.transport.control(
                        n,
                        NodeMessage::UnregisterFilter {
                            id: canonical,
                            terms,
                        },
                    ) {
                        self.supervise_control_failure(n);
                    }
                }
                self.broadcast_subscription(canonical, subscriber, false);
                true
            }
        }
    }

    /// Broadcasts a fan-out mutation — `Subscribe` when `add`, else
    /// `Unsubscribe` — to every worker, journaled per node so a restart
    /// replays subscription refcounts exactly.
    fn broadcast_subscription(&mut self, canonical: FilterId, subscriber: FilterId, add: bool) {
        for n in 0..self.transport.nodes() {
            // Flush first: a document routed before this control op must
            // expand through the pre-op fan-out table.
            self.flush_node(n);
            let (op, msg) = if add {
                (
                    JournalOp::Subscribe {
                        canonical,
                        subscriber,
                    },
                    NodeMessage::Subscribe {
                        canonical,
                        subscriber,
                    },
                )
            } else {
                (
                    JournalOp::Unsubscribe {
                        canonical,
                        subscriber,
                    },
                    NodeMessage::Unsubscribe {
                        canonical,
                        subscriber,
                    },
                )
            };
            self.supervisor.record_op(n, op);
            if !self.transport.control(n, msg) {
                self.supervise_control_failure(n);
            }
        }
    }

    fn stats(&mut self, reply: &Sender<Vec<NodeMetrics>>) {
        self.flush_all();
        // One reply per worker, so this gather channel can never fill.
        let (tx, rx) = bounded(self.transport.nodes().max(1));
        for n in 0..self.transport.nodes() {
            // The snapshot doubles as a liveness probe: a failed send is
            // supervised exactly like a failed heartbeat ping, so under
            // the restart policy the revived worker still contributes a
            // (fresh-incarnation) snapshot. A worker that stays dead
            // simply contributes none — its sender clone drops unsent,
            // so the gather below still terminates.
            if !self
                .transport
                .control(n, NodeMessage::StatsReport { reply: tx.clone() })
            {
                self.supervise_control_failure(n);
                let _ = self
                    .transport
                    .control(n, NodeMessage::StatsReport { reply: tx.clone() });
            }
        }
        drop(tx);
        let mut all: Vec<NodeMetrics> = rx.iter().collect();
        all.sort_by_key(|m| m.node);
        let _ = reply.send(all);
    }

    /// A control send found worker `n` dead: restart-and-replay if the
    /// policy allows (the journal already covers the lost message),
    /// otherwise declare the node dead in the membership.
    pub(crate) fn supervise_control_failure(&mut self, n: usize) {
        self.deaths_settled_at = Some(self.docs_published);
        if self.config.supervision.restart
            && self.supervisor.restart_and_replay(n, &mut self.transport)
        {
            return;
        }
        self.mark_dead(n);
    }

    /// Declares node `n` dead both to the router (never routed to again)
    /// and to the scheme's membership, so `route` fails subsequent
    /// documents over to replica rows.
    fn mark_dead(&mut self, n: usize) {
        if !self.dead[n] {
            self.dead[n] = true;
            self.scheme
                .cluster_mut()
                .membership_mut()
                .crash(NodeId(n as u32));
            // Membership changes always refresh immediately — the real
            // pool fences around them, so no stale-view pin survives one.
            self.pin_docs = 0;
            self.refresh_view();
        }
    }

    /// A batch send found worker `n` dead. Under the restart policy the
    /// worker is respawned from its journal and the batch resent (bounded
    /// retries with backoff); otherwise — or once retries are exhausted —
    /// the stranded documents fail over to the replica set.
    pub(crate) fn handle_gone(&mut self, n: usize, mut batch: Vec<DocTask>) {
        // Every path into here found a dead mailbox, so this marks the
        // latest death discovery (last write wins — the report exposes the
        // point after which routing saw the fully settled dead set).
        self.deaths_settled_at = Some(self.docs_published);
        if self.config.supervision.restart {
            for attempt in 0..self.config.supervision.max_retries {
                if attempt > 0 && !self.config.supervision.backoff.is_zero() {
                    thread::sleep(self.config.supervision.backoff);
                }
                if !self.supervisor.restart_and_replay(n, &mut self.transport) {
                    break;
                }
                self.supervisor.retries += 1;
                let count = batch.len() as u64;
                match self
                    .transport
                    .batch(n, NodeMessage::PublishDocument { batch })
                {
                    BatchOutcome::Delivered => {
                        self.tasks_dispatched += count;
                        return;
                    }
                    BatchOutcome::Shed => {
                        self.tasks_shed += count;
                        return;
                    }
                    BatchOutcome::Gone(b) => batch = b,
                }
            }
        }
        self.failover(n, batch);
    }

    /// Replica failover: declare `n` dead and re-route each stranded
    /// document through the scheme, whose routing now avoids the corpse.
    /// Re-routing the whole document may duplicate deliveries already made
    /// by live nodes — benign, consumers union per document. A document
    /// with no live replica left is counted lost.
    fn failover(&mut self, n: usize, batch: Vec<DocTask>) {
        let discovery = !self.dead[n];
        self.mark_dead(n);
        if discovery {
            // One discovered death usually means a correlated kill wave:
            // sweep-probe the survivors so every corpse is found *now*,
            // not lazily on its next routed batch — re-routing below (and
            // all subsequent routing) then sees the full dead set.
            self.heartbeat();
        }
        self.supervisor.failovers += batch.len() as u64;
        // One re-route per distinct stranded document.
        let mut by_doc: BTreeMap<DocId, (DocTask, u64)> = BTreeMap::new();
        for task in batch {
            by_doc
                .entry(task.doc.id())
                .and_modify(|(_, c)| *c += 1)
                .or_insert((task, 1));
        }
        for (task, count) in by_doc.into_values() {
            // Re-route through the (just refreshed) routing view, not the
            // bare scheme: during a join's handover window the view carries
            // the double-route to the moved partitions' old homes, which is
            // exactly what keeps those partitions served when the corpse is
            // the joiner itself.
            let (steps, _) = self.view.route_handover(&task.doc, &mut self.view_rng);
            let mut placed = false;
            for step in steps {
                if matches!(step.task, MatchTask::Forward) {
                    continue;
                }
                let m = step.node.as_usize();
                if self.dead[m] {
                    continue; // schemes without liveness-aware routing
                }
                self.pending[m].push(DocTask {
                    doc: Arc::clone(&task.doc),
                    task: step.task,
                    dispatched: task.dispatched,
                });
                placed = true;
                if self.pending[m].len() >= self.batcher.limit() {
                    self.flush_node(m);
                }
            }
            if !placed {
                self.tasks_failed += count;
                self.lost_docs.insert(task.doc.id());
            }
        }
    }

    /// Ships node `n`'s accumulated batch through the transport. Only
    /// document batches obey the overflow policy — control messages always
    /// go through (see [`Transport`]).
    fn flush_node(&mut self, n: usize) {
        if self.pending[n].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending[n]);
        // Feed the adaptive controller this batch's residency — the age of
        // its oldest task. A no-op under `BatchPolicy::Fixed`.
        self.batcher.observe(batch[0].dispatched.elapsed());
        if self.dead[n] {
            // Known-dead node under failover: skip the doomed send.
            self.failover(n, batch);
            return;
        }
        let count = batch.len() as u64;
        match self
            .transport
            .batch(n, NodeMessage::PublishDocument { batch })
        {
            BatchOutcome::Delivered => self.tasks_dispatched += count,
            BatchOutcome::Shed => self.tasks_shed += count,
            BatchOutcome::Gone(b) => self.handle_gone(n, b),
        }
    }

    /// Flushes until no batch remains pending anywhere. Failover inside
    /// one flush may re-route tasks onto nodes this pass already visited,
    /// so the sweep repeats until it finds nothing — each re-route either
    /// lands on a live node or kills another corpse, so it terminates.
    pub(crate) fn flush_all(&mut self) {
        loop {
            let mut any = false;
            for n in 0..self.pending.len() {
                if !self.pending[n].is_empty() {
                    any = true;
                    self.flush_node(n);
                }
            }
            if !any {
                return;
            }
        }
    }
}

impl Router<ThreadTransport> {
    /// The router thread's main loop (threaded driver only).
    fn run(
        mut self,
        commands: &Receiver<Command>,
        finals: &Receiver<WorkerFinal>,
    ) -> Result<RuntimeReport> {
        // Serve until shutdown or a control-plane error; tear the workers
        // down in both cases, then surface the error.
        let served = self.serve(commands);
        self.shutdown_workers();
        // Drop our finals sender so the drain below observes disconnect
        // once every worker incarnation has exited.
        self.transport.final_tx = None;
        let results: Vec<WorkerFinal> = finals.iter().collect();
        let mut worker_panic = false;
        for handle in std::mem::take(&mut self.transport.handles) {
            worker_panic |= handle.join().is_err();
        }
        served?;
        if worker_panic {
            return Err(MoveError::Runtime("worker thread panicked".into()));
        }
        Ok(self.into_report(results))
    }

    /// The control thread's main loop in router-pool mode: ingest threads
    /// own the publish hot path, this thread owns everything mutable —
    /// registration, allocation refresh, supervision, fault injection.
    fn run_pool(
        mut self,
        commands: &Receiver<Command>,
        finals: &Receiver<WorkerFinal>,
        mut pool: Pool,
    ) -> Result<RuntimeReport> {
        let served = self.serve_pool(commands, &pool);
        // Every ingest thread has sent its exit notice by now (or the
        // engine handle is gone); join them before tearing down workers so
        // no batch is in flight past this point.
        for handle in std::mem::take(&mut pool.handles) {
            let _ = handle.join();
        }
        self.absorb_shards(&pool.shared);
        self.docs_published = pool.shared.docs_published.load(Ordering::Relaxed);
        self.pool_settle_faults();
        self.shutdown_workers();
        self.transport.final_tx = None;
        let results: Vec<WorkerFinal> = finals.iter().collect();
        let mut worker_panic = false;
        for handle in std::mem::take(&mut self.transport.handles) {
            worker_panic |= handle.join().is_err();
        }
        served?;
        if worker_panic {
            return Err(MoveError::Runtime("worker thread panicked".into()));
        }
        Ok(self.into_report(results))
    }

    /// Publishes the current routing table (view + worker senders +
    /// dead-set) to the ingest plane. Cheap: the view's bulky innards are
    /// `Arc`-shared, so this clones a few pointers per node.
    pub(crate) fn publish_table(&self, pool: &Pool) {
        pool.shared.publish_table(IngestTable {
            view: self.view.clone(),
            senders: self.transport.workers.clone(),
            dead: self.dead.clone(),
        });
    }

    /// Serves control commands until shutdown (all ingest threads exited)
    /// or a control-plane error.
    fn serve_pool(&mut self, commands: &Receiver<Command>, pool: &Pool) -> Result<()> {
        // Commands deferred while waiting for barrier/fence acks (see
        // `wait_for_acks`) are replayed from here first, preserving order.
        let mut backlog: VecDeque<Command> = VecDeque::new();
        let mut exited = 0usize;
        let mut shutting_down = false;
        loop {
            let cmd = match backlog.pop_front() {
                Some(cmd) => cmd,
                None => match commands.recv_timeout(self.config.flush_interval) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Disconnected) => return Ok(()),
                    Err(RecvTimeoutError::Timeout) => {
                        self.pool_tick(commands, &mut backlog, pool)?;
                        continue;
                    }
                },
            };
            match cmd {
                // Publishes normally go straight to the ingest threads; one
                // arriving here (a raced engine handle) still routes fine.
                Command::Publish(doc) => self.publish(&Arc::new(*doc))?,
                Command::Register(filter) => {
                    self.pool_register(&filter, commands, &mut backlog, pool)?;
                }
                Command::RegisterSync(filter, ack) => {
                    self.pool_register(&filter, commands, &mut backlog, pool)?;
                    let _ = ack.send(());
                }
                Command::Unregister(id) => {
                    self.pool_unregister(id, commands, &mut backlog, pool)?;
                }
                Command::UnregisterSync(id, ack) => {
                    self.pool_unregister(id, commands, &mut backlog, pool)?;
                    let _ = ack.send(());
                }
                Command::Stats(reply) => {
                    // Barrier the ingest plane first so "previously
                    // published" includes documents still in ingest hands.
                    self.pool_barrier(commands, &mut backlog, pool);
                    self.docs_published = pool.shared.docs_published.load(Ordering::Relaxed);
                    self.absorb_shards(&pool.shared);
                    self.stats(&reply);
                }
                Command::Gone { node, batch } => {
                    self.handle_gone(node, batch);
                    // Restart or failover changed senders or the dead-set;
                    // tell the ingest plane before it strands more batches.
                    self.publish_table(pool);
                }
                Command::IngestExited { metrics } => {
                    self.ingest_metrics.push(metrics);
                    exited += 1;
                    if shutting_down && exited == pool.ingest.len() {
                        return Ok(());
                    }
                }
                Command::Join { window_docs, reply } => {
                    let outcome =
                        self.pool_join(window_docs, commands, &mut backlog, pool, &mut exited);
                    let _ = reply.send(outcome);
                }
                Command::Shutdown => {
                    shutting_down = true;
                    if exited == pool.ingest.len() {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// The idle tick of the pool control plane: sync the published-count,
    /// fire due faults, drain the statistics shards, run a due allocation
    /// refresh under a fence, probe the workers, and republish the table.
    fn pool_tick(
        &mut self,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
        pool: &Pool,
    ) -> Result<()> {
        self.docs_published = pool.shared.docs_published.load(Ordering::Relaxed);
        self.inject_faults();
        self.absorb_shards(&pool.shared);
        if self.scheme.refresh_due() {
            self.pool_fence_refresh(commands, backlog, pool)?;
        }
        self.flush_all();
        self.heartbeat();
        // Republishing unconditionally is cheap (Arc clones) and heals any
        // sender replaced by a heartbeat-driven restart above.
        self.publish_table(pool);
        Ok(())
    }

    /// Drains every ingest thread's statistics shard into the scheme —
    /// the merge half of the sharded `q′ᵢ` accumulators.
    pub(crate) fn absorb_shards(&mut self, shared: &IngestShared) {
        for shard in &shared.shards {
            let mut guard = shard.lock();
            if guard.is_empty() {
                continue;
            }
            let delta = std::mem::take(&mut *guard);
            drop(guard);
            self.scheme.absorb_stats(&delta);
        }
    }

    /// Waits for `want` acks while keeping the shared command channel
    /// drained — an ingest thread blocked on a full command channel could
    /// otherwise never reach the barrier it must ack. Dead-worker batches
    /// are handled inline (they cannot wait); everything else is deferred
    /// to the backlog in arrival order.
    pub(crate) fn wait_for_acks(
        &mut self,
        acks: &Receiver<()>,
        want: usize,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
    ) {
        let mut got = 0usize;
        while got < want {
            match acks.recv_timeout(Duration::from_millis(1)) {
                Ok(()) => got += 1,
                // All remaining ack senders dropped (ingest thread exited
                // mid-protocol during teardown): stop waiting.
                Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {
                    while let Ok(cmd) = commands.try_recv() {
                        if let Command::Gone { node, batch } = cmd {
                            self.handle_gone(node, batch);
                        } else {
                            backlog.push_back(cmd);
                        }
                    }
                }
            }
        }
    }

    /// Barriers the ingest plane: every thread flushes its pending batches
    /// to the worker mailboxes and acks. On return, everything published
    /// before the barrier is in mailbox FIFO order ahead of whatever the
    /// control thread sends next.
    pub(crate) fn pool_barrier(
        &mut self,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
        pool: &Pool,
    ) {
        let (ack_tx, ack_rx) = bounded(pool.ingest.len().max(1));
        let mut sent = 0usize;
        for tx in &pool.ingest {
            if tx
                .send(IngestCommand::Barrier {
                    ack: ack_tx.clone(),
                })
                .is_ok()
            {
                sent += 1;
            }
        }
        drop(ack_tx);
        self.wait_for_acks(&ack_rx, sent, commands, backlog);
    }

    /// Fires every still-due scheduled fault and supervises the fallout
    /// before worker teardown. The pool fires faults from the idle tick
    /// of the control loop, and a fast run can reach shutdown before a
    /// single tick elapses — but the serial engine fires them
    /// synchronously per publish, so the pooled report must account for
    /// the same schedule. Runs after the ingest threads are joined: the
    /// published-document count is final and no batch is in flight.
    fn pool_settle_faults(&mut self) {
        let due: Vec<usize> = self.plan[self.next_fault..]
            .iter()
            .take_while(|ev| ev.at_doc <= self.docs_published)
            .map(|ev| ev.node.as_usize())
            .collect();
        if due.is_empty() {
            return;
        }
        self.inject_faults();
        for n in due {
            if self.dead[n] {
                continue;
            }
            // The fault is a FIFO-ordered poison pill the worker
            // dequeues asynchronously. A ping queued behind it settles
            // the outcome: a reply means the action left the worker
            // alive (pause/slow), a dropped channel means it died.
            let (tx, rx) = bounded(1);
            if self.transport.control(n, NodeMessage::Ping { reply: tx }) {
                let _ = rx.recv_timeout(Duration::from_secs(5));
            }
        }
        // Probe the survivors: each failed send routes through the
        // supervisor (restart or failover) exactly as a mid-run
        // discovery would.
        self.heartbeat();
    }

    /// Runs a due allocation refresh under a stop-the-world fence: every
    /// ingest thread flushes and parks, the statistics shards are merged
    /// (so the allocator sees complete `q′ᵢ`), the refresh ships the new
    /// shards, the new table is published, and only then is the plane
    /// released — no document routed under the old layout can be
    /// dispatched after the [`NodeMessage::AllocationUpdate`].
    fn pool_fence_refresh(
        &mut self,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
        pool: &Pool,
    ) -> Result<()> {
        let (ack_tx, ack_rx) = bounded(pool.ingest.len().max(1));
        let (rel_tx, rel_rx) = bounded(pool.ingest.len().max(1));
        let mut fenced = 0usize;
        for tx in &pool.ingest {
            if tx
                .send(IngestCommand::Fence {
                    ack: ack_tx.clone(),
                    release: rel_rx.clone(),
                })
                .is_ok()
            {
                fenced += 1;
            }
        }
        drop(ack_tx);
        self.wait_for_acks(&ack_rx, fenced, commands, backlog);
        self.absorb_shards(&pool.shared);
        self.apply_refresh()?;
        self.publish_table(pool);
        for _ in 0..fenced {
            let _ = rel_tx.send(());
        }
        Ok(())
    }

    /// Pool-mode registration: barrier first so documents the publisher
    /// enqueued before registering hit the worker mailboxes ahead of the
    /// filter (preserving pre-registration matching), then place the
    /// filter and publish the refreshed table.
    fn pool_register(
        &mut self,
        filter: &Filter,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
        pool: &Pool,
    ) -> Result<()> {
        self.pool_barrier(commands, backlog, pool);
        self.register(filter)?;
        self.publish_table(pool);
        Ok(())
    }

    /// Pool-mode unregistration: the same barrier discipline as
    /// [`Router::pool_register`], so documents published before the call
    /// still expand through the pre-unregistration fan-out table.
    fn pool_unregister(
        &mut self,
        id: FilterId,
        commands: &Receiver<Command>,
        backlog: &mut VecDeque<Command>,
        pool: &Pool,
    ) -> Result<()> {
        self.pool_barrier(commands, backlog, pool);
        self.unregister(id)?;
        self.publish_table(pool);
        Ok(())
    }
}
