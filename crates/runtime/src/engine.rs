//! The engine façade and its router thread.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use move_core::{Dissemination, MatchTask};
use move_stats::LatencyHistogram;
use move_types::{Document, Filter, FilterId, NodeId, Result};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crate::config::{OverflowPolicy, RuntimeConfig};
use crate::message::{Delivery, DocTask, NodeMessage};
use crate::metrics::{NodeMetrics, RuntimeReport};
use crate::worker::{Worker, WorkerFinal};

/// Publisher-facing commands on the bounded router channel. The bound is
/// the outermost backpressure stage: when the router stalls on a full
/// worker mailbox (Block policy), this channel fills and `publish` blocks.
enum Command {
    Register(Filter),
    Publish(Box<Document>),
    Stats(Sender<Vec<NodeMetrics>>),
    Shutdown,
}

/// A running live engine over one dissemination scheme.
///
/// See the crate docs for the architecture; see [`RuntimeConfig`] for the
/// tuning knobs. All methods take `&self` — the engine is driven from one
/// publisher thread but is internally thread-safe.
#[derive(Debug)]
pub struct Engine {
    commands: Sender<Command>,
    deliveries: Receiver<Delivery>,
    router: Option<JoinHandle<Result<RuntimeReport>>>,
}

impl Engine {
    /// Boots one worker thread per cluster node (shards cloned from the
    /// scheme's current state, so filters registered before `start` are
    /// served) plus the router thread owning `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn threads.
    #[must_use]
    pub fn start(scheme: Box<dyn Dissemination + Send>, config: RuntimeConfig) -> Self {
        let nodes = scheme.cluster().len();
        let (delivery_tx, delivery_rx) = unbounded();
        let (final_tx, final_rx) = unbounded();
        let mut workers = Vec::with_capacity(nodes);
        let mut handles = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let node = NodeId(i as u32);
            let (tx, rx) = bounded(config.mailbox_capacity);
            let worker = Worker::new(
                node,
                scheme.node_index(node).clone(),
                rx,
                delivery_tx.clone(),
            );
            let final_tx = final_tx.clone();
            let handle = thread::Builder::new()
                .name(format!("move-node-{i}"))
                .spawn(move || {
                    let _ = final_tx.send(worker.run());
                })
                .expect("spawn worker thread");
            workers.push(tx);
            handles.push(handle);
        }
        drop(delivery_tx);
        drop(final_tx);

        let (cmd_tx, cmd_rx) = bounded(config.command_capacity);
        let router = Router {
            scheme,
            config,
            workers,
            pending: vec![Vec::new(); nodes],
            docs_published: 0,
            tasks_dispatched: 0,
            tasks_shed: 0,
            allocation_updates: 0,
        };
        let handle = thread::Builder::new()
            .name("move-router".into())
            .spawn(move || router.run(&cmd_rx, &final_rx, handles))
            .expect("spawn router thread");
        Self {
            commands: cmd_tx,
            deliveries: delivery_rx,
            router: Some(handle),
        }
    }

    /// Registers a filter: the control plane places it, then the affected
    /// workers install serving copies (FIFO-ordered after any documents
    /// already queued for them).
    pub fn register(&self, filter: Filter) {
        let _ = self.commands.send(Command::Register(filter));
    }

    /// Publishes a document into the pipeline. Blocks when the command
    /// channel is full — the backpressure the bounded mailboxes propagate
    /// up under [`OverflowPolicy::Block`].
    pub fn publish(&self, doc: Document) {
        let _ = self.commands.send(Command::Publish(Box::new(doc)));
    }

    /// Snapshot of every worker's metrics. This is also a **barrier**: the
    /// router first flushes all pending batches and each worker replies
    /// only after handling everything earlier in its mailbox, so on return
    /// all previously published documents have been fully matched.
    #[must_use]
    pub fn stats(&self) -> Vec<NodeMetrics> {
        let (tx, rx) = unbounded();
        if self.commands.send(Command::Stats(tx)).is_err() {
            return Vec::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// Blocks until all previously published documents are fully matched.
    pub fn flush(&self) {
        let _ = self.stats();
    }

    /// A handle to the delivery stream (cloneable; deliveries already
    /// consumed elsewhere are not replayed).
    #[must_use]
    pub fn deliveries(&self) -> Receiver<Delivery> {
        self.deliveries.clone()
    }

    /// Publishes one document and waits for its complete delivery set —
    /// the interactive (CLI) mode. Only meaningful when the caller is the
    /// sole publisher: the internal barrier drains the shared delivery
    /// stream, discarding other documents' deliveries.
    #[must_use]
    pub fn publish_sync(&self, doc: Document) -> Vec<FilterId> {
        let id = doc.id();
        self.publish(doc);
        self.flush();
        let mut matched: Vec<FilterId> = self
            .deliveries
            .try_iter()
            .filter(|d| d.doc == id)
            .flat_map(|d| d.matched)
            .collect();
        matched.sort_unstable();
        matched.dedup();
        matched
    }

    /// Graceful shutdown: drains every mailbox, stops all threads, and
    /// returns the merged report. Deliveries still queued in the delivery
    /// stream remain readable from handles obtained via
    /// [`Engine::deliveries`] before this call.
    ///
    /// # Errors
    ///
    /// Propagates a control-plane (allocation) error that aborted the
    /// router; worker state is torn down either way.
    ///
    /// # Panics
    ///
    /// Panics if the router thread itself panicked.
    pub fn shutdown(mut self) -> Result<RuntimeReport> {
        let _ = self.commands.send(Command::Shutdown);
        let handle = self.router.take().expect("router not yet joined");
        handle.join().expect("router thread panicked")
    }
}

struct Router {
    scheme: Box<dyn Dissemination + Send>,
    config: RuntimeConfig,
    workers: Vec<Sender<NodeMessage>>,
    /// Per-node batch under accumulation.
    pending: Vec<Vec<DocTask>>,
    docs_published: u64,
    tasks_dispatched: u64,
    tasks_shed: u64,
    allocation_updates: u64,
}

impl Router {
    fn run(
        mut self,
        commands: &Receiver<Command>,
        finals: &Receiver<WorkerFinal>,
        handles: Vec<JoinHandle<()>>,
    ) -> Result<RuntimeReport> {
        // Serve until shutdown or a control-plane error; tear the workers
        // down in both cases, then surface the error.
        let served = self.serve(commands);
        self.flush_all();
        for tx in &self.workers {
            let _ = tx.send(NodeMessage::Shutdown);
        }
        self.workers.clear();
        let mut results: Vec<WorkerFinal> = finals.iter().collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
        served?;

        results.sort_by_key(|f| f.metrics.node);
        let mut merged = LatencyHistogram::new();
        for f in &results {
            merged.merge(&f.histogram);
        }
        Ok(RuntimeReport {
            scheme: self.scheme.name().to_owned(),
            docs_published: self.docs_published,
            tasks_dispatched: self.tasks_dispatched,
            tasks_shed: self.tasks_shed,
            allocation_updates: self.allocation_updates,
            nodes: results.into_iter().map(|f| f.metrics).collect(),
            latency: merged.summary(),
        })
    }

    fn serve(&mut self, commands: &Receiver<Command>) -> Result<()> {
        loop {
            match commands.recv_timeout(self.config.flush_interval) {
                Ok(Command::Publish(doc)) => self.publish(&Arc::new(*doc))?,
                Ok(Command::Register(filter)) => self.register(&filter)?,
                Ok(Command::Stats(reply)) => self.stats(&reply),
                Ok(Command::Shutdown) | Err(RecvTimeoutError::Disconnected) => return Ok(()),
                // Idle: age out partially filled batches.
                Err(RecvTimeoutError::Timeout) => self.flush_all(),
            }
        }
    }

    fn publish(&mut self, doc: &Arc<Document>) -> Result<()> {
        let steps = self.scheme.route(doc);
        self.docs_published += 1;
        let dispatched = Instant::now();
        for step in steps {
            // The router itself plays the home node's forwarding hop: a
            // Forward step touches no posting list, so there is nothing to
            // ship to the worker.
            if matches!(step.task, MatchTask::Forward) {
                continue;
            }
            let n = step.node.as_usize();
            self.pending[n].push(DocTask {
                doc: Arc::clone(doc),
                task: step.task,
                dispatched,
            });
            if self.pending[n].len() >= self.config.batch_size {
                self.flush_node(n);
            }
        }
        // The observe/allocate refresh cycle. A layout change must reach
        // the workers *after* everything routed under the old layout...
        if self.scheme.maintenance(doc)? {
            self.flush_all();
            self.allocation_updates += 1;
            // ...and before anything routed under the new one — mailbox
            // FIFO order guarantees both once the update is sent here.
            for i in 0..self.workers.len() {
                let index = Box::new(self.scheme.node_index(NodeId(i as u32)).clone());
                let _ = self.workers[i].send(NodeMessage::AllocationUpdate { index });
            }
        }
        Ok(())
    }

    fn register(&mut self, filter: &Filter) -> Result<()> {
        let targets = self.scheme.registration_targets(filter);
        self.scheme.register(filter)?;
        for (node, terms) in targets {
            let n = node.as_usize();
            // Flush first so documents published before this registration
            // are matched against the pre-registration shard.
            self.flush_node(n);
            let _ = self.workers[n].send(NodeMessage::RegisterFilter {
                filter: filter.clone(),
                terms,
            });
        }
        Ok(())
    }

    fn stats(&mut self, reply: &Sender<Vec<NodeMetrics>>) {
        self.flush_all();
        let (tx, rx) = unbounded();
        for w in &self.workers {
            let _ = w.send(NodeMessage::StatsReport { reply: tx.clone() });
        }
        drop(tx);
        let mut all: Vec<NodeMetrics> = rx.iter().collect();
        all.sort_by_key(|m| m.node);
        let _ = reply.send(all);
    }

    /// Ships node `n`'s accumulated batch. Only document batches obey the
    /// overflow policy — control messages (registration, allocation
    /// updates, stats, shutdown) always block, because shedding them would
    /// corrupt worker state rather than just drop work.
    fn flush_node(&mut self, n: usize) {
        if self.pending[n].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending[n]);
        let count = batch.len() as u64;
        let msg = NodeMessage::PublishDocument { batch };
        match self.config.overflow {
            OverflowPolicy::Block => {
                if self.workers[n].send(msg).is_ok() {
                    self.tasks_dispatched += count;
                }
            }
            OverflowPolicy::Shed => match self.workers[n].try_send(msg) {
                Ok(()) => self.tasks_dispatched += count,
                Err(TrySendError::Full(_)) => self.tasks_shed += count,
                Err(TrySendError::Disconnected(_)) => {}
            },
        }
    }

    fn flush_all(&mut self) {
        for n in 0..self.pending.len() {
            self.flush_node(n);
        }
    }
}
