//! The engine façade, its router, and the transport seam between them.
//!
//! The router's decision logic — routing plans, batching, flush ordering,
//! the overflow policy, allocation-refresh fencing — lives in [`Router`],
//! which is generic over a [`Transport`]: the production engine plugs in
//! [`ThreadTransport`] (real worker threads behind bounded channels), while
//! the deterministic interleaving harness in [`crate::interleave`] plugs in
//! an in-process transport it can single-step. Both drivers therefore
//! exercise the *same* router code path, so schedules the harness proves
//! safe are schedules of the production router, not of a model of it.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use move_core::{Dissemination, MatchTask};
use move_stats::LatencyHistogram;
use move_types::{Document, Filter, FilterId, MoveError, NodeId, Result};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crate::config::{OverflowPolicy, RuntimeConfig};
use crate::message::{Delivery, DocTask, NodeMessage};
use crate::metrics::{NodeMetrics, RuntimeReport};
use crate::worker::{Worker, WorkerFinal};

/// Publisher-facing commands on the bounded router channel. The bound is
/// the outermost backpressure stage: when the router stalls on a full
/// worker mailbox (Block policy), this channel fills and `publish` blocks.
pub(crate) enum Command {
    Register(Filter),
    Publish(Box<Document>),
    Stats(Sender<Vec<NodeMetrics>>),
    Shutdown,
}

/// What happened to a document batch handed to the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchOutcome {
    /// The batch was enqueued on the worker's mailbox.
    Delivered,
    /// The mailbox was full under [`OverflowPolicy::Shed`]; the batch was
    /// dropped.
    Shed,
    /// The worker is gone (its mailbox disconnected); the batch was
    /// dropped without counting as shed.
    Gone,
}

/// The router's outbound seam: how messages reach node workers.
///
/// Control messages (registration, allocation updates, stats requests,
/// shutdown) must always be delivered — shedding them would corrupt worker
/// state rather than just drop work — so [`Transport::control`] has no
/// outcome. Document batches go through [`Transport::batch`], which applies
/// the overflow policy.
pub(crate) trait Transport {
    /// Number of node workers reachable through this transport.
    fn nodes(&self) -> usize;

    /// Delivers a control message to node `n`, blocking if necessary.
    fn control(&mut self, n: usize, msg: NodeMessage);

    /// Delivers a document batch to node `n` under the overflow policy.
    fn batch(&mut self, n: usize, msg: NodeMessage) -> BatchOutcome;
}

/// The production transport: one bounded crossbeam channel per worker
/// thread.
pub(crate) struct ThreadTransport {
    workers: Vec<Sender<NodeMessage>>,
    overflow: OverflowPolicy,
}

impl Transport for ThreadTransport {
    fn nodes(&self) -> usize {
        self.workers.len()
    }

    fn control(&mut self, n: usize, msg: NodeMessage) {
        // A failed send means the worker exited (engine teardown in
        // progress); there is no one left to corrupt.
        let _ = self.workers[n].send(msg);
    }

    fn batch(&mut self, n: usize, msg: NodeMessage) -> BatchOutcome {
        match self.overflow {
            OverflowPolicy::Block => match self.workers[n].send(msg) {
                Ok(()) => BatchOutcome::Delivered,
                Err(_) => BatchOutcome::Gone,
            },
            OverflowPolicy::Shed => match self.workers[n].try_send(msg) {
                Ok(()) => BatchOutcome::Delivered,
                Err(TrySendError::Full(_)) => BatchOutcome::Shed,
                Err(TrySendError::Disconnected(_)) => BatchOutcome::Gone,
            },
        }
    }
}

/// A running live engine over one dissemination scheme.
///
/// See the crate docs for the architecture; see [`RuntimeConfig`] for the
/// tuning knobs. All methods take `&self` — the engine is driven from one
/// publisher thread but is internally thread-safe.
#[derive(Debug)]
pub struct Engine {
    commands: Sender<Command>,
    deliveries: Receiver<Delivery>,
    router: Option<JoinHandle<Result<RuntimeReport>>>,
}

impl Engine {
    /// Boots one worker thread per cluster node (shards cloned from the
    /// scheme's current state, so filters registered before `start` are
    /// served) plus the router thread owning `scheme`.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Runtime`] if the OS refuses to spawn a thread;
    /// any workers already spawned observe their mailboxes disconnect and
    /// exit on their own.
    pub fn start(scheme: Box<dyn Dissemination + Send>, config: RuntimeConfig) -> Result<Self> {
        let nodes = scheme.cluster().len();
        // The delivery stream must outlive shutdown (consumers drain it
        // after the workers exit) and bounding it would deadlock workers
        // against consumers that only start reading after `shutdown()`.
        let (delivery_tx, delivery_rx) = unbounded(); // xtask:allow-unbounded
                                                      // Each worker sends exactly one final, so `nodes` slots suffice.
        let (final_tx, final_rx) = bounded(nodes.max(1));
        let mut workers = Vec::with_capacity(nodes);
        let mut handles = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let node = NodeId(i as u32);
            let (tx, rx) = bounded(config.mailbox_capacity);
            let worker = Worker::new(
                node,
                scheme.node_index(node).clone(),
                rx,
                delivery_tx.clone(),
            );
            let final_tx = final_tx.clone();
            let handle = thread::Builder::new()
                .name(format!("move-node-{i}"))
                .spawn(move || {
                    let _ = final_tx.send(worker.run());
                })
                .map_err(|e| MoveError::Runtime(format!("spawn worker thread {i}: {e}")))?;
            workers.push(tx);
            handles.push(handle);
        }
        drop(delivery_tx);
        drop(final_tx);

        let (cmd_tx, cmd_rx) = bounded(config.command_capacity);
        let transport = ThreadTransport {
            workers,
            overflow: config.overflow,
        };
        let router = Router::new(scheme, config, transport);
        let handle = thread::Builder::new()
            .name("move-router".into())
            .spawn(move || router.run(&cmd_rx, &final_rx, handles))
            .map_err(|e| MoveError::Runtime(format!("spawn router thread: {e}")))?;
        Ok(Self {
            commands: cmd_tx,
            deliveries: delivery_rx,
            router: Some(handle),
        })
    }

    /// Registers a filter: the control plane places it, then the affected
    /// workers install serving copies (FIFO-ordered after any documents
    /// already queued for them).
    pub fn register(&self, filter: Filter) {
        let _ = self.commands.send(Command::Register(filter));
    }

    /// Publishes a document into the pipeline. Blocks when the command
    /// channel is full — the backpressure the bounded mailboxes propagate
    /// up under [`OverflowPolicy::Block`].
    pub fn publish(&self, doc: Document) {
        let _ = self.commands.send(Command::Publish(Box::new(doc)));
    }

    /// Snapshot of every worker's metrics. This is also a **barrier**: the
    /// router first flushes all pending batches and each worker replies
    /// only after handling everything earlier in its mailbox, so on return
    /// all previously published documents have been fully matched.
    #[must_use]
    pub fn stats(&self) -> Vec<NodeMetrics> {
        let (tx, rx) = bounded(1);
        if self.commands.send(Command::Stats(tx)).is_err() {
            return Vec::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// Blocks until all previously published documents are fully matched.
    pub fn flush(&self) {
        let _ = self.stats();
    }

    /// A handle to the delivery stream (cloneable; deliveries already
    /// consumed elsewhere are not replayed).
    #[must_use]
    pub fn deliveries(&self) -> Receiver<Delivery> {
        self.deliveries.clone()
    }

    /// Publishes one document and waits for its complete delivery set —
    /// the interactive (CLI) mode. Only meaningful when the caller is the
    /// sole publisher: the internal barrier drains the shared delivery
    /// stream, discarding other documents' deliveries.
    #[must_use]
    pub fn publish_sync(&self, doc: Document) -> Vec<FilterId> {
        let id = doc.id();
        self.publish(doc);
        self.flush();
        let mut matched: Vec<FilterId> = self
            .deliveries
            .try_iter()
            .filter(|d| d.doc == id)
            .flat_map(|d| d.matched)
            .collect();
        matched.sort_unstable();
        matched.dedup();
        matched
    }

    /// Graceful shutdown: drains every mailbox, stops all threads, and
    /// returns the merged report. Deliveries still queued in the delivery
    /// stream remain readable from handles obtained via
    /// [`Engine::deliveries`] before this call.
    ///
    /// # Errors
    ///
    /// Propagates a control-plane (allocation) error that aborted the
    /// router, and reports a panicked router or worker thread as
    /// [`MoveError::Runtime`]; worker state is torn down either way.
    pub fn shutdown(mut self) -> Result<RuntimeReport> {
        let _ = self.commands.send(Command::Shutdown);
        let Some(handle) = self.router.take() else {
            return Err(MoveError::Runtime("router already joined".into()));
        };
        handle
            .join()
            .map_err(|_| MoveError::Runtime("router thread panicked".into()))?
    }
}

/// The decision half of the engine: owns the scheme, accumulates per-node
/// batches, and speaks to workers only through its [`Transport`].
pub(crate) struct Router<T> {
    scheme: Box<dyn Dissemination + Send>,
    config: RuntimeConfig,
    pub(crate) transport: T,
    /// Per-node batch under accumulation.
    pending: Vec<Vec<DocTask>>,
    pub(crate) docs_published: u64,
    pub(crate) tasks_dispatched: u64,
    pub(crate) tasks_shed: u64,
    pub(crate) allocation_updates: u64,
}

impl<T: Transport> Router<T> {
    pub(crate) fn new(
        scheme: Box<dyn Dissemination + Send>,
        config: RuntimeConfig,
        transport: T,
    ) -> Self {
        let nodes = transport.nodes();
        Self {
            scheme,
            config,
            transport,
            pending: vec![Vec::new(); nodes],
            docs_published: 0,
            tasks_dispatched: 0,
            tasks_shed: 0,
            allocation_updates: 0,
        }
    }

    /// Applies one publisher command. Returns `Ok(false)` when the command
    /// asks the router to stop ([`Command::Shutdown`]).
    ///
    /// # Errors
    ///
    /// Propagates control-plane errors from the scheme (registration or
    /// allocation-refresh failures).
    pub(crate) fn handle_command(&mut self, cmd: Command) -> Result<bool> {
        match cmd {
            Command::Publish(doc) => self.publish(&Arc::new(*doc))?,
            Command::Register(filter) => self.register(&filter)?,
            Command::Stats(reply) => self.stats(&reply),
            Command::Shutdown => return Ok(false),
        }
        Ok(true)
    }

    /// Flushes the remaining batches and sends every worker a
    /// [`NodeMessage::Shutdown`], FIFO-ordered behind all earlier work.
    pub(crate) fn shutdown_workers(&mut self) {
        self.flush_all();
        for n in 0..self.transport.nodes() {
            self.transport.control(n, NodeMessage::Shutdown);
        }
    }

    /// Merges worker finals with the router's own counters into the final
    /// report.
    pub(crate) fn into_report(self, mut results: Vec<WorkerFinal>) -> RuntimeReport {
        results.sort_by_key(|f| f.metrics.node);
        let mut merged = LatencyHistogram::new();
        for f in &results {
            merged.merge(&f.histogram);
        }
        RuntimeReport {
            scheme: self.scheme.name().to_owned(),
            docs_published: self.docs_published,
            tasks_dispatched: self.tasks_dispatched,
            tasks_shed: self.tasks_shed,
            allocation_updates: self.allocation_updates,
            nodes: results.into_iter().map(|f| f.metrics).collect(),
            latency: merged.summary(),
        }
    }

    /// The router thread's main loop (threaded driver only).
    fn run(
        mut self,
        commands: &Receiver<Command>,
        finals: &Receiver<WorkerFinal>,
        handles: Vec<JoinHandle<()>>,
    ) -> Result<RuntimeReport> {
        // Serve until shutdown or a control-plane error; tear the workers
        // down in both cases, then surface the error.
        let served = self.serve(commands);
        self.shutdown_workers();
        let results: Vec<WorkerFinal> = finals.iter().collect();
        let mut worker_panic = false;
        for handle in handles {
            worker_panic |= handle.join().is_err();
        }
        served?;
        if worker_panic {
            return Err(MoveError::Runtime("worker thread panicked".into()));
        }
        Ok(self.into_report(results))
    }

    fn serve(&mut self, commands: &Receiver<Command>) -> Result<()> {
        loop {
            match commands.recv_timeout(self.config.flush_interval) {
                Ok(cmd) => {
                    if !self.handle_command(cmd)? {
                        return Ok(());
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
                // Idle: age out partially filled batches.
                Err(RecvTimeoutError::Timeout) => self.flush_all(),
            }
        }
    }

    fn publish(&mut self, doc: &Arc<Document>) -> Result<()> {
        let steps = self.scheme.route(doc);
        self.docs_published += 1;
        let dispatched = Instant::now();
        for step in steps {
            // The router itself plays the home node's forwarding hop: a
            // Forward step touches no posting list, so there is nothing to
            // ship to the worker.
            if matches!(step.task, MatchTask::Forward) {
                continue;
            }
            let n = step.node.as_usize();
            self.pending[n].push(DocTask {
                doc: Arc::clone(doc),
                task: step.task,
                dispatched,
            });
            if self.pending[n].len() >= self.config.batch_size {
                self.flush_node(n);
            }
        }
        // The observe/allocate refresh cycle. A layout change must reach
        // the workers *after* everything routed under the old layout...
        if self.scheme.maintenance(doc)? {
            self.flush_all();
            self.allocation_updates += 1;
            // ...and before anything routed under the new one — mailbox
            // FIFO order guarantees both once the update is sent here.
            for n in 0..self.transport.nodes() {
                let index = Box::new(self.scheme.node_index(NodeId(n as u32)).clone());
                self.transport
                    .control(n, NodeMessage::AllocationUpdate { index });
            }
        }
        Ok(())
    }

    fn register(&mut self, filter: &Filter) -> Result<()> {
        let targets = self.scheme.registration_targets(filter);
        self.scheme.register(filter)?;
        for (node, terms) in targets {
            let n = node.as_usize();
            // Flush first so documents published before this registration
            // are matched against the pre-registration shard.
            self.flush_node(n);
            self.transport.control(
                n,
                NodeMessage::RegisterFilter {
                    filter: filter.clone(),
                    terms,
                },
            );
        }
        Ok(())
    }

    fn stats(&mut self, reply: &Sender<Vec<NodeMetrics>>) {
        self.flush_all();
        // One reply per worker, so this gather channel can never fill.
        let (tx, rx) = bounded(self.transport.nodes().max(1));
        for n in 0..self.transport.nodes() {
            self.transport
                .control(n, NodeMessage::StatsReport { reply: tx.clone() });
        }
        drop(tx);
        let mut all: Vec<NodeMetrics> = rx.iter().collect();
        all.sort_by_key(|m| m.node);
        let _ = reply.send(all);
    }

    /// Ships node `n`'s accumulated batch through the transport. Only
    /// document batches obey the overflow policy — control messages always
    /// go through (see [`Transport`]).
    fn flush_node(&mut self, n: usize) {
        if self.pending[n].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending[n]);
        let count = batch.len() as u64;
        match self
            .transport
            .batch(n, NodeMessage::PublishDocument { batch })
        {
            BatchOutcome::Delivered => self.tasks_dispatched += count,
            BatchOutcome::Shed => self.tasks_shed += count,
            BatchOutcome::Gone => {}
        }
    }

    pub(crate) fn flush_all(&mut self) {
        for n in 0..self.pending.len() {
            self.flush_node(n);
        }
    }
}
