//! Worker supervision: the registration journal and the restart policy.
//!
//! A restarted worker thread starts from an **empty** mailbox, so whatever
//! filter state the dead incarnation held must be rebuilt. The supervisor
//! keeps, per node, exactly what the router has sent it: a **base
//! snapshot** (the shard plus the canonical→subscribers fan-out table
//! cloned at engine start, replaced wholesale on every allocation
//! refresh) plus the **control ops since** that snapshot — registrations,
//! unregistrations, subscribes, and unsubscribes, in send order. Replay =
//! restart the worker with a clone of the base, then re-send the
//! journaled ops — byte-for-byte the same [`NodeMessage`]s the first
//! incarnation received, so the rebuilt shard *and* fan-out refcounts
//! equal a fresh registration of the same filters (the property
//! `fault_props.rs` pins down).
//!
//! Ops are journaled *before* the send is attempted: if the send itself
//! discovers the death, the replay already covers the message that found
//! the body.

use move_index::{FanoutTable, InvertedIndex};
use move_types::{Filter, FilterId, TermId};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Transport;
use crate::message::NodeMessage;

/// What the router does when it finds a dead worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// `true`: restart the worker and replay its journal (self-healing
    /// single-process mode). `false`: declare the node dead in the
    /// scheme's membership and fail affected documents over to the
    /// placement's replica set — the distributed-system stance Fig. 9c/9d
    /// measures.
    pub restart: bool,
    /// How many times a batch send is retried across restarts before the
    /// router gives up on the node and fails over.
    pub max_retries: u32,
    /// Wait between retry attempts (threaded driver only; the
    /// deterministic harness runs with [`Duration::ZERO`]).
    pub backoff: Duration,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        Self {
            restart: true,
            max_retries: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl SupervisionPolicy {
    /// The failover stance: never restart, route around the dead node.
    #[must_use]
    pub fn failover() -> Self {
        Self {
            restart: false,
            ..Self::default()
        }
    }
}

/// One journaled control op, exactly as sent to the worker.
#[derive(Debug, Clone)]
pub(crate) enum JournalOp {
    /// A [`NodeMessage::RegisterFilter`].
    Register {
        filter: Arc<Filter>,
        terms: Option<Vec<TermId>>,
    },
    /// A [`NodeMessage::UnregisterFilter`].
    Unregister {
        id: FilterId,
        terms: Option<Vec<TermId>>,
    },
    /// A [`NodeMessage::Subscribe`].
    Subscribe {
        canonical: FilterId,
        subscriber: FilterId,
    },
    /// A [`NodeMessage::Unsubscribe`].
    Unsubscribe {
        canonical: FilterId,
        subscriber: FilterId,
    },
}

impl JournalOp {
    fn to_message(&self) -> NodeMessage {
        match self {
            JournalOp::Register { filter, terms } => NodeMessage::RegisterFilter {
                filter: Arc::clone(filter),
                terms: terms.clone(),
            },
            JournalOp::Unregister { id, terms } => NodeMessage::UnregisterFilter {
                id: *id,
                terms: terms.clone(),
            },
            JournalOp::Subscribe {
                canonical,
                subscriber,
            } => NodeMessage::Subscribe {
                canonical: *canonical,
                subscriber: *subscriber,
            },
            JournalOp::Unsubscribe {
                canonical,
                subscriber,
            } => NodeMessage::Unsubscribe {
                canonical: *canonical,
                subscriber: *subscriber,
            },
        }
    }
}

/// Per-node control journal: base snapshot + ops since.
pub(crate) struct NodeJournal {
    /// The worker's shard as of the last allocation update (or engine
    /// start) — a structural share of the snapshot the worker serves; the
    /// worker copies-on-write if it mutates, so this stays immutable. A
    /// restarted worker boots directly from another share of it.
    base: Arc<InvertedIndex>,
    /// The worker's fan-out table at the same snapshot — replayed refcounts
    /// start from it, so subscribe/unsubscribe counts rebuild exactly.
    fanout: Arc<FanoutTable>,
    /// Control ops sent after the base snapshot, in send order.
    since: Vec<JournalOp>,
}

/// The router's supervision state: one journal per node plus the degraded-
/// mode counters that end up in the [`RuntimeReport`](crate::RuntimeReport).
pub(crate) struct Supervisor {
    journals: Vec<NodeJournal>,
    /// Worker restarts performed.
    pub restarts: u64,
    /// Batch sends retried after a restart.
    pub retries: u64,
    /// Document tasks re-routed to replica nodes after a failover.
    pub failovers: u64,
}

impl Supervisor {
    /// Seeds one journal per node from the workers' initial shards and the
    /// shared boot-time fan-out snapshot.
    pub(crate) fn new(bases: Vec<Arc<InvertedIndex>>, fanout: Arc<FanoutTable>) -> Self {
        Self {
            journals: bases
                .into_iter()
                .map(|base| NodeJournal {
                    base,
                    fanout: Arc::clone(&fanout),
                    since: Vec::new(),
                })
                .collect(),
            restarts: 0,
            retries: 0,
            failovers: 0,
        }
    }

    /// Journals a control op about to be sent to node `n`.
    pub(crate) fn record_op(&mut self, n: usize, op: JournalOp) {
        self.journals[n].since.push(op);
    }

    /// Admits a joining node: its journal starts from the shard and fan-out
    /// table the migration engine installed (moved partitions included),
    /// with an empty since-log — a crash of the joiner replays exactly what
    /// the handover streamed to it.
    pub(crate) fn admit(&mut self, base: &Arc<InvertedIndex>, fanout: &Arc<FanoutTable>) {
        self.journals.push(NodeJournal {
            base: Arc::clone(base),
            fanout: Arc::clone(fanout),
            since: Vec::new(),
        });
    }

    /// Journals an allocation update: the new shard becomes the index base
    /// and the since-log resets — but only its registration/unregistration
    /// entries are obsolete (the shard already contains every filter the
    /// log would replay). Subscribe/unsubscribe deltas since the fan-out
    /// base are folded into a fresh fan-out snapshot first, so refcounts
    /// survive the reset.
    pub(crate) fn record_snapshot(&mut self, n: usize, index: &Arc<InvertedIndex>) {
        let journal = &mut self.journals[n];
        let mut fanout = Arc::clone(&journal.fanout);
        for op in &journal.since {
            match op {
                JournalOp::Subscribe {
                    canonical,
                    subscriber,
                } => {
                    Arc::make_mut(&mut fanout).subscribe(*canonical, *subscriber);
                }
                JournalOp::Unsubscribe {
                    canonical,
                    subscriber,
                } => {
                    Arc::make_mut(&mut fanout).unsubscribe(*canonical, *subscriber);
                }
                JournalOp::Register { .. } | JournalOp::Unregister { .. } => {}
            }
        }
        journal.base = Arc::clone(index);
        journal.fanout = fanout;
        journal.since.clear();
    }

    /// The shard a restarted worker `n` must boot from (another share of
    /// the journal base; the replay below re-adds the since-log).
    pub(crate) fn base_index(&self, n: usize) -> Arc<InvertedIndex> {
        Arc::clone(&self.journals[n].base)
    }

    /// The fan-out table a restarted worker `n` must boot from.
    pub(crate) fn base_fanout(&self, n: usize) -> Arc<FanoutTable> {
        Arc::clone(&self.journals[n].fanout)
    }

    /// Restarts worker `n` through the transport and replays its journal.
    /// Returns `false` when the transport cannot restart workers.
    pub(crate) fn restart_and_replay<T: Transport>(&mut self, n: usize, transport: &mut T) -> bool {
        if !transport.restart(n, self.base_index(n), self.base_fanout(n)) {
            return false;
        }
        self.restarts += 1;
        for op in &self.journals[n].since {
            // The fresh mailbox cannot be full or disconnected, but a
            // failed send here would mean the restart raced another death;
            // the next batch send detects it and supervises again.
            let _ = transport.control(n, op.to_message());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_types::{FilterId, MatchSemantics};

    #[test]
    fn snapshot_resets_the_since_log() {
        let base = Arc::new(InvertedIndex::new(MatchSemantics::Boolean));
        let mut sup = Supervisor::new(vec![Arc::clone(&base)], Arc::new(FanoutTable::new()));
        sup.record_op(
            0,
            JournalOp::Register {
                filter: Arc::new(Filter::new(1u64, [TermId(3)])),
                terms: None,
            },
        );
        assert_eq!(sup.journals[0].since.len(), 1);
        sup.record_snapshot(0, &base);
        assert!(sup.journals[0].since.is_empty());
    }

    #[test]
    fn snapshot_folds_fanout_deltas_into_the_base() {
        // An allocation refresh obsoletes journaled registrations (the new
        // shard carries them) but NOT subscription refcounts — those must
        // fold into the fan-out base or a post-refresh restart would lose
        // subscribers.
        let base = Arc::new(InvertedIndex::new(MatchSemantics::Boolean));
        let mut sup = Supervisor::new(vec![Arc::clone(&base)], Arc::new(FanoutTable::new()));
        sup.record_op(
            0,
            JournalOp::Subscribe {
                canonical: FilterId(7),
                subscriber: FilterId(100),
            },
        );
        sup.record_op(
            0,
            JournalOp::Subscribe {
                canonical: FilterId(7),
                subscriber: FilterId(101),
            },
        );
        sup.record_op(
            0,
            JournalOp::Unsubscribe {
                canonical: FilterId(7),
                subscriber: FilterId(100),
            },
        );
        sup.record_snapshot(0, &base);
        assert!(sup.journals[0].since.is_empty());
        let fanout = sup.base_fanout(0);
        let mut out = Vec::new();
        fanout.expand_into(&[FilterId(7)], &mut out);
        assert_eq!(out, vec![FilterId(101)]);
    }

    #[test]
    fn journal_base_is_isolated_from_later_shard_mutation() {
        // The journal base is an `Arc` share of the worker's shard at
        // snapshot time. A registration applied to the live shard *after*
        // the snapshot goes through `Arc::make_mut`, which must diverge
        // the worker's copy — never mutate the journal's.
        let mut shard = Arc::new(InvertedIndex::new(MatchSemantics::Boolean));
        Arc::make_mut(&mut shard).insert(Filter::new(1u64, [TermId(3)]));
        let mut sup = Supervisor::new(vec![Arc::clone(&shard)], Arc::new(FanoutTable::new()));
        sup.record_snapshot(0, &shard);

        Arc::make_mut(&mut shard).insert(Filter::new(2u64, [TermId(4)]));
        assert!(shard.filter(FilterId(2)).is_some());
        let base = sup.base_index(0);
        assert!(
            base.filter(FilterId(2)).is_none(),
            "post-snapshot registration leaked into the journal base"
        );
        assert!(base.filter(FilterId(1)).is_some());
    }
}
