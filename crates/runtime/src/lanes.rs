//! The intra-node work-stealing match executor ("match lanes").
//!
//! A worker with [`RuntimeConfig::match_lanes`](crate::RuntimeConfig) > 1
//! does not execute a document batch inline: it plans the batch into
//! *units* — cost-balanced bundles of posting-list scans — deals the units
//! round-robin across a small set of per-lane deques, and lets the lanes
//! race — a lane whose own deque runs dry steals the back half of the
//! longest other deque. Each lane owns a private [`LaneCtx`] (kernel
//! scratch plus a preallocated merge buffer), so the kernels stay
//! allocation-free in steady state and nothing is shared but the pool's
//! one mutex.
//!
//! # Cost-model planning
//!
//! Earlier revisions dealt fixed eight-term chunks, which made unit size
//! blind to posting-list length: lanes fought over cache-cold crumbs and
//! the per-unit lock round-trips dominated. The planner now sizes units by
//! *summed posting cost* (via [`InvertedIndex::posting_len`]) toward a
//! per-unit scan-cost target ([`RuntimeConfig::lane_cost_target`]),
//! clamped so a batch still yields roughly `4 × lanes` stealable units
//! when its total cost is small. Steal granularity is whole units. The
//! same model also decides when *not* to parallelise: a batch whose total
//! cost cannot feed every lane one target-sized unit is matched inline by
//! the threaded worker ([`MatchPool::should_inline`]) — coordination would
//! cost more than the scans it spreads.
//!
//! Under **boolean** semantics the plan is *term-major*: the batch's
//! documents usually share popular terms, so each distinct term becomes
//! one scan that walks the term's posting blocks once — cache-hot — and
//! scatters the ids into every subscribing document's accumulator. (Under
//! boolean semantics a term's whole posting list matches any document
//! containing the term, so no per-document recheck is needed, and the
//! per-task counters are charged exactly as the serial doc-major loop
//! would charge them.) Under **threshold** semantics the plan stays
//! doc-major — per-filter hit multiplicities cannot be split across terms
//! of different units arbitrarily cheaply — with whole tasks packed
//! together (or one oversized task's term list split) toward the same
//! cost target.
//!
//! Two drivers run the *same* [`MatchPool::step_lane`] code:
//!
//! * the threaded worker ([`Worker::run`](crate::worker)) spawns
//!   `match_lanes - 1` helper OS threads and participates as lane 0,
//!   blocking until the batch completes so the mailbox keeps its FIFO
//!   semantics (an `AllocationUpdate` behind a batch is still observed
//!   strictly after it);
//! * the interleaving harness ([`crate::interleave`]) spawns no threads at
//!   all and single-steps individual lanes under a seeded schedule,
//!   exploring steal orders, merge orders, and lane crashes
//!   deterministically.
//!
//! # Why the merge is order-independent
//!
//! Units only ever *append* to their tasks' accumulators: per-unit matched
//! ids plus work counters, staged in the lane's private merge buffer and
//! committed under one lock acquisition. Addition commutes, and the
//! finalize step (run by whichever lane merges the task's last unit)
//! passes the concatenated ids through the same dense-bitmap
//! [`MatchScratch::sort_dedup`] the serial worker uses — a sorted,
//! deduplicated set is a canonical form, so the delivery is byte-identical
//! for every plan, lane count and steal schedule, and identical to the
//! serial worker's. The equivalence property suite in
//! `tests/tests/match_pool.rs` pins this.

use crossbeam::channel::Sender;
use move_core::MatchTask;
use move_index::{FanoutTable, InvertedIndex, MatchOutcome, MatchScratch};
use move_types::{Document, FilterId, MatchSemantics, NodeId, TermId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crate::message::{Delivery, DocTask};

/// Floor on the effective per-unit cost: below this many posting entries
/// the per-unit lock round-trip costs more than the scan it schedules, so
/// the planner stops splitting (unless the configured target is even
/// smaller — the harness pins a target of 1 to force fine-grained units).
const MIN_UNIT_COST: usize = 256;

/// What one scheduling quantum of a lane did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneStep {
    /// The lane executed (and merged) one unit — possibly after stealing.
    Worked,
    /// Nothing to pop and nothing to steal: every remaining unit of the
    /// batch is in flight on another lane (or the pool is idle).
    Idle,
}

/// One staged partial result: a range of the lane's merge buffer destined
/// for one task's accumulator, plus the scan work it represents.
#[derive(Debug)]
struct Part {
    task: usize,
    start: usize,
    end: usize,
    postings: u64,
}

/// A lane's private buffers: kernel scratch, a reusable outcome, and the
/// merge buffer unit partials are staged in. Reused across units so
/// steady-state matching allocates only when a delivery is produced.
#[derive(Debug, Default)]
pub(crate) struct LaneCtx {
    pub(crate) scratch: MatchScratch,
    outcome: MatchOutcome,
    /// Flat staging area for a unit's matched ids; `parts` slices it per
    /// task. Committed to the task accumulators under one lock
    /// acquisition, then truncated — capacity persists across units.
    buf: Vec<FilterId>,
    parts: Vec<Part>,
}

/// One item of a unit's work list.
#[derive(Debug)]
enum Item {
    /// Term-major (boolean): walk `term`'s posting blocks once and scatter
    /// the ids into every listed task's accumulator. Tasks appear once per
    /// occurrence of the term in their term list, so the counters charge
    /// exactly what the serial per-term loop would.
    TermScan { term: TermId, tasks: Vec<usize> },
    /// Doc-major: match a slice of the task's routed terms against the
    /// batch snapshot (threshold semantics re-checks each stored body).
    Terms {
        task: usize,
        doc: Arc<Document>,
        terms: Vec<TermId>,
    },
    /// Doc-major: the whole SIFT kernel — threshold semantics needs
    /// per-filter hit multiplicities, which cannot leave one unit.
    FullDoc { task: usize, doc: Arc<Document> },
}

/// One schedulable, whole-unit-stealable slice of a batch.
#[derive(Debug, Default)]
struct Unit {
    items: Vec<Item>,
    /// Distinct indices of the tasks this unit contributes to; merging the
    /// unit decrements each of their `remaining` counts once. Tasks with
    /// no work at all ([`MatchTask::Forward`], empty term lists) ride
    /// along here so they still finalize (latency + task count).
    tasks: Vec<usize>,
}

/// Per-task accumulator: partial results merge in as units finish, in
/// whatever order the lanes produce them.
#[derive(Debug)]
struct TaskAcc {
    doc: Arc<Document>,
    dispatched: Instant,
    /// Units of this task not yet merged.
    remaining: usize,
    /// Concatenated per-unit matches; canonicalized at finalize.
    matched: Vec<FilterId>,
    postings_scanned: u64,
}

/// Counters of one completed batch, absorbed into the worker's own
/// counters after the batch (so the worker's snapshot and
/// [`WorkerFinal`](crate::worker) merging stay unchanged).
#[derive(Debug, Default)]
pub(crate) struct BatchTotals {
    pub(crate) doc_tasks: u64,
    pub(crate) postings_scanned: u64,
    pub(crate) delivered: u64,
    pub(crate) steals: u64,
    pub(crate) units: u64,
    /// Per-task dispatch→finalize latencies, nanoseconds.
    pub(crate) latencies: Vec<u64>,
}

/// Everything the lanes share, guarded by the pool's one mutex.
#[derive(Debug)]
struct PoolState {
    /// The serving shard the active batch matches against — the snapshot
    /// taken at [`MatchPool::begin_batch`]; an `AllocationUpdate` queued
    /// behind the batch cannot bleed into it.
    index: Option<Arc<InvertedIndex>>,
    /// The fan-out table snapshot of the active batch — a `Subscribe`
    /// queued behind the batch cannot bleed into its deliveries.
    fanout: Option<Arc<FanoutTable>>,
    /// One work deque per lane.
    deques: Vec<VecDeque<Unit>>,
    tasks: Vec<TaskAcc>,
    /// Units not yet merged (queued plus in flight).
    remaining: usize,
    /// Units sitting in deques (equals `remaining` under the harness,
    /// where a step executes its unit atomically).
    queued: usize,
    /// Harness-injected lane deaths: a crashed lane is never stepped
    /// again, but its queued units stay stealable, so the batch still
    /// completes exactly.
    crashed: Vec<bool>,
    totals: BatchTotals,
    /// Set at worker exit; parks helper lane threads permanently.
    shutdown: bool,
}

/// The work-stealing pool owned by one node worker. See the module docs.
#[derive(Debug)]
pub(crate) struct MatchPool {
    node: NodeId,
    deliveries: Sender<Delivery>,
    lanes: usize,
    /// Per-unit scan-cost target (posting entries) the planner packs
    /// toward — [`RuntimeConfig::lane_cost_target`](crate::RuntimeConfig).
    cost_target: usize,
    /// Hardware threads of the host, sampled once at construction — the
    /// fan-out decision in [`MatchPool::should_inline`] needs to know
    /// whether two lanes can run at the same time at all.
    hw_threads: usize,
    state: Mutex<PoolState>,
    /// Signals helper lanes that a batch was queued (or shutdown set).
    work: Condvar,
    /// Signals the batch owner that `remaining` hit zero.
    done: Condvar,
}

impl MatchPool {
    pub(crate) fn new(
        node: NodeId,
        lanes: usize,
        cost_target: usize,
        deliveries: Sender<Delivery>,
    ) -> Self {
        let lanes = lanes.max(1);
        Self {
            node,
            deliveries,
            lanes,
            cost_target: cost_target.max(1),
            hw_threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            state: Mutex::new(PoolState {
                index: None,
                fanout: None,
                deques: (0..lanes).map(|_| VecDeque::new()).collect(),
                tasks: Vec::new(),
                remaining: 0,
                queued: 0,
                crashed: vec![false; lanes],
                totals: BatchTotals::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    pub(crate) fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether a batch is in flight (units not yet merged).
    pub(crate) fn busy(&self) -> bool {
        self.state.lock().remaining > 0
    }

    /// Whether a lane was crashed by the harness.
    pub(crate) fn lane_crashed(&self, lane: usize) -> bool {
        self.state.lock().crashed.get(lane).copied().unwrap_or(true)
    }

    /// Harness fault injection: permanently deschedules `lane`. Lane 0 is
    /// the worker thread itself — it cannot die without the whole worker
    /// crashing — so crashing it is refused.
    pub(crate) fn crash_lane(&self, lane: usize) {
        if lane == 0 || lane >= self.lanes {
            return;
        }
        self.state.lock().crashed[lane] = true;
    }

    /// The effective per-unit cost the planner packs toward: the
    /// configured target, lowered when the batch's total cost is too small
    /// to fill `4 × lanes` units at it (so moderate batches still spread
    /// across every lane), floored at [`MIN_UNIT_COST`] — unless the
    /// configured target is smaller still, which wins: the harness pins a
    /// target of 1 to force maximally fine-grained schedules.
    fn effective_target(&self, total_cost: usize) -> usize {
        let spread = total_cost / (self.lanes * 4).max(1);
        spread.clamp(MIN_UNIT_COST.min(self.cost_target), self.cost_target)
    }

    /// Whether `batch` is too small for fan-out to pay: when the summed
    /// posting cost cannot fill one target-sized unit per lane, the pool's
    /// coordination (planning, lock round-trips, lane wake-ups, merge)
    /// costs more than the scans it would spread, so the threaded worker
    /// matches such batches inline instead — the cost model deciding *not*
    /// to parallelise is as much a part of the scheduler as the splitting.
    /// The interleaving harness ignores this and always pools: its job is
    /// to explore pool schedules, not to be fast.
    ///
    /// The cost sum is the planner's own quantity: summing
    /// `posting_len × occurrences` per (task, term) pair equals the
    /// term-major per-group total and the doc-major per-task total alike.
    pub(crate) fn should_inline(&self, index: &InvertedIndex, batch: &[DocTask]) -> bool {
        // A host that cannot run two lanes concurrently makes every
        // fan-out a pure loss — the helper threads only time-slice against
        // lane 0 — so no batch is large enough to pay there. A micro cost
        // target (below [`MIN_UNIT_COST`]) is the explicit pool-anyway
        // override: the harness and the pool's own test suites pin targets
        // of 1 to drive the machinery on any hardware.
        if self.hw_threads < 2 && self.cost_target >= MIN_UNIT_COST {
            return true;
        }
        let threshold = self.cost_target.saturating_mul(self.lanes);
        let mut total = 0usize;
        for task in batch {
            let terms: &[TermId] = match &task.task {
                MatchTask::Forward => &[],
                MatchTask::Terms(terms) => terms,
                MatchTask::FullIndex => task.doc.terms(),
            };
            for &t in terms {
                total = total.saturating_add(index.posting_len(t).max(1));
                if total >= threshold {
                    return false;
                }
            }
        }
        total < threshold
    }

    /// Plans a batch into cost-balanced units. See the module docs: term-
    /// major under boolean semantics, doc-major under threshold. Every
    /// task lands in at least one unit's `tasks` list (workless tasks ride
    /// along for finalization), and per-task scan counters are charged
    /// exactly as the serial loop would charge them.
    fn plan(&self, index: &InvertedIndex, batch: &[DocTask]) -> Vec<Unit> {
        match index.semantics() {
            MatchSemantics::Boolean => self.plan_term_major(index, batch),
            MatchSemantics::SimilarityThreshold(_) => self.plan_doc_major(index, batch),
        }
    }

    /// Boolean planning: group the batch by distinct term (first-seen
    /// order, so plans are a pure function of the batch), cost each group
    /// at `posting_len × subscribers`, and pack groups into units toward
    /// the effective target.
    fn plan_term_major(&self, index: &InvertedIndex, batch: &[DocTask]) -> Vec<Unit> {
        let mut slots: HashMap<TermId, usize> = HashMap::new();
        let mut groups: Vec<(TermId, Vec<usize>)> = Vec::new();
        let mut workless: Vec<usize> = Vec::new();
        for (ti, task) in batch.iter().enumerate() {
            let terms: &[TermId] = match &task.task {
                MatchTask::Forward => &[],
                MatchTask::Terms(terms) => terms,
                MatchTask::FullIndex => task.doc.terms(),
            };
            if terms.is_empty() {
                workless.push(ti);
                continue;
            }
            for &t in terms {
                let slot = *slots.entry(t).or_insert_with(|| {
                    groups.push((t, Vec::new()));
                    groups.len() - 1
                });
                groups[slot].1.push(ti);
            }
        }
        let cost_of =
            |g: &(TermId, Vec<usize>)| index.posting_len(g.0).max(1).saturating_mul(g.1.len());
        let total: usize = groups.iter().map(cost_of).sum();
        let target = self.effective_target(total);
        let mut units: Vec<Unit> = Vec::new();
        let mut open = Unit::default();
        let mut open_cost = 0usize;
        for group in groups {
            open_cost += cost_of(&group);
            for &ti in &group.1 {
                if !open.tasks.contains(&ti) {
                    open.tasks.push(ti);
                }
            }
            let (term, tasks) = group;
            open.items.push(Item::TermScan { term, tasks });
            if open_cost >= target {
                units.push(std::mem::take(&mut open));
                open_cost = 0;
            }
        }
        Self::close_plan(units, open, workless)
    }

    /// Threshold planning: whole tasks pack together toward the effective
    /// target; a single oversized routed-terms task splits by term (the
    /// per-term threshold check is independent per term, so chunk sums
    /// reproduce the serial counters — the SIFT kernel itself cannot
    /// split).
    fn plan_doc_major(&self, index: &InvertedIndex, batch: &[DocTask]) -> Vec<Unit> {
        let term_cost = |t: TermId| index.posting_len(t).max(1);
        let total: usize = batch
            .iter()
            .map(|task| match &task.task {
                MatchTask::Forward => 0,
                MatchTask::Terms(terms) => terms.iter().map(|&t| term_cost(t)).sum(),
                MatchTask::FullIndex => task.doc.terms().iter().map(|&t| term_cost(t)).sum(),
            })
            .sum();
        let target = self.effective_target(total);
        let mut units: Vec<Unit> = Vec::new();
        let mut open = Unit::default();
        let mut open_cost = 0usize;
        let mut workless: Vec<usize> = Vec::new();
        let mut close_if_full = |open: &mut Unit, open_cost: &mut usize| {
            if *open_cost >= target {
                units.push(std::mem::take(open));
                *open_cost = 0;
            }
        };
        for (ti, task) in batch.iter().enumerate() {
            match &task.task {
                MatchTask::Forward => workless.push(ti),
                MatchTask::Terms(terms) if terms.is_empty() => workless.push(ti),
                MatchTask::Terms(terms) => {
                    // Cost-sized term chunks; small tasks stay whole and
                    // share a unit with their batch neighbours.
                    let mut chunk: Vec<TermId> = Vec::new();
                    let mut chunk_cost = 0usize;
                    for &t in terms {
                        chunk.push(t);
                        chunk_cost += term_cost(t);
                        if chunk_cost >= target {
                            if !open.tasks.contains(&ti) {
                                open.tasks.push(ti);
                            }
                            open.items.push(Item::Terms {
                                task: ti,
                                doc: Arc::clone(&task.doc),
                                terms: std::mem::take(&mut chunk),
                            });
                            open_cost += chunk_cost;
                            chunk_cost = 0;
                            close_if_full(&mut open, &mut open_cost);
                        }
                    }
                    if !chunk.is_empty() {
                        if !open.tasks.contains(&ti) {
                            open.tasks.push(ti);
                        }
                        open.items.push(Item::Terms {
                            task: ti,
                            doc: Arc::clone(&task.doc),
                            terms: chunk,
                        });
                        open_cost += chunk_cost;
                        close_if_full(&mut open, &mut open_cost);
                    }
                }
                MatchTask::FullIndex => {
                    open.tasks.push(ti);
                    open.items.push(Item::FullDoc {
                        task: ti,
                        doc: Arc::clone(&task.doc),
                    });
                    open_cost += task
                        .doc
                        .terms()
                        .iter()
                        .map(|&t| term_cost(t))
                        .sum::<usize>();
                    close_if_full(&mut open, &mut open_cost);
                }
            }
        }
        Self::close_plan(units, open, workless)
    }

    /// Seals a plan: flush the open unit, then attach the workless tasks
    /// (forwards, empty term lists) to the last unit so they finalize with
    /// the batch — or to a dedicated unit when the whole batch is
    /// workless.
    fn close_plan(mut units: Vec<Unit>, open: Unit, workless: Vec<usize>) -> Vec<Unit> {
        if !open.tasks.is_empty() || !open.items.is_empty() {
            units.push(open);
        }
        if !workless.is_empty() {
            if let Some(last) = units.last_mut() {
                last.tasks.extend(workless);
            } else {
                units.push(Unit {
                    items: Vec::new(),
                    tasks: workless,
                });
            }
        }
        units
    }

    /// Plans `batch` into cost-balanced units against the `index` snapshot
    /// and deals them round-robin across the lane deques. Must not be
    /// called while a batch is in flight — the worker completes each batch
    /// before touching its mailbox again.
    pub(crate) fn begin_batch(
        &self,
        index: &Arc<InvertedIndex>,
        fanout: &Arc<FanoutTable>,
        batch: Vec<DocTask>,
    ) {
        let units = self.plan(index, &batch);
        let mut remaining_per_task = vec![0usize; batch.len()];
        for unit in &units {
            for &ti in &unit.tasks {
                remaining_per_task[ti] += 1;
            }
        }
        debug_assert!(
            batch.is_empty() || remaining_per_task.iter().all(|&r| r > 0),
            "every task must be owned by at least one unit"
        );
        let mut st = self.state.lock();
        debug_assert_eq!(st.remaining, 0, "previous batch still in flight");
        st.index = Some(Arc::clone(index));
        st.fanout = Some(Arc::clone(fanout));
        st.tasks.clear();
        for (task, remaining) in batch.into_iter().zip(remaining_per_task) {
            st.tasks.push(TaskAcc {
                doc: task.doc,
                dispatched: task.dispatched,
                remaining,
                matched: Vec::new(),
                postings_scanned: 0,
            });
        }
        let dealt = units.len();
        for (i, unit) in units.into_iter().enumerate() {
            st.deques[i % self.lanes].push_back(unit);
        }
        st.remaining = dealt;
        st.queued = dealt;
        drop(st);
        self.work.notify_all();
    }

    /// One scheduling quantum of `lane`: pop the lane's own deque, steal
    /// the back half of the longest other deque if it is empty, execute
    /// the unit against the batch snapshot (staging partials in the lane's
    /// merge buffer), and commit them under one lock acquisition —
    /// finalizing each task whose last unit lands (canonical sort+dedup,
    /// delivery, latency), and the batch when *its* last unit lands.
    pub(crate) fn step_lane(&self, lane: usize, ctx: &mut LaneCtx) -> LaneStep {
        let mut st = self.state.lock();
        if st.remaining == 0 || st.crashed[lane] {
            return LaneStep::Idle;
        }
        let unit = match st.deques[lane].pop_front() {
            Some(u) => u,
            None => {
                // Steal half: victim is the longest deque (lowest index
                // breaks ties — a pure function of state, so the harness
                // schedule fully determines every steal).
                let victim = (0..self.lanes)
                    .filter(|&v| v != lane)
                    .max_by_key(|&v| (st.deques[v].len(), usize::MAX - v));
                let Some(v) = victim.filter(|&v| !st.deques[v].is_empty()) else {
                    return LaneStep::Idle; // all in flight on other lanes
                };
                let keep = st.deques[v].len() / 2;
                let mut stolen = st.deques[v].split_off(keep);
                std::mem::swap(&mut stolen, &mut st.deques[lane]);
                debug_assert!(stolen.is_empty());
                st.totals.steals += 1;
                match st.deques[lane].pop_front() {
                    Some(u) => u,
                    None => return LaneStep::Idle, // unreachable: stole ≥ 1
                }
            }
        };
        // A dequeued unit implies an active batch, whose snapshot is
        // installed by `begin_batch` before any unit is dealt.
        let Some(index) = st.index.as_ref().map(Arc::clone) else {
            debug_assert!(false, "active batch has no snapshot");
            st.deques[lane].push_front(unit);
            return LaneStep::Idle;
        };
        st.queued -= 1;
        drop(st);

        // Execute outside the lock — this is the parallel section. Every
        // partial stages into the lane-private merge buffer.
        ctx.buf.clear();
        ctx.parts.clear();
        for item in &unit.items {
            match item {
                Item::TermScan { term, tasks } => {
                    let Some(pl) = index.posting(*term) else {
                        continue; // absent list: serial charges nothing too
                    };
                    let postings = pl.len() as u64;
                    let start = ctx.buf.len();
                    for block in pl.blocks() {
                        ctx.buf.extend_from_slice(block.as_slice());
                    }
                    let end = ctx.buf.len();
                    let mut first = true;
                    for &ti in tasks {
                        if first {
                            first = false;
                            ctx.parts.push(Part {
                                task: ti,
                                start,
                                end,
                                postings,
                            });
                        } else {
                            // Scatter: re-emit the scanned run (cache-hot
                            // copy within the buffer) for each further
                            // subscribing task.
                            let s = ctx.buf.len();
                            ctx.buf.extend_from_within(start..end);
                            ctx.parts.push(Part {
                                task: ti,
                                start: s,
                                end: s + (end - start),
                                postings,
                            });
                        }
                    }
                }
                Item::Terms { task, doc, terms } => {
                    let out = &mut ctx.outcome;
                    out.clear();
                    index.match_terms_into(doc, terms, out);
                    let start = ctx.buf.len();
                    ctx.buf.extend_from_slice(&out.matched);
                    ctx.parts.push(Part {
                        task: *task,
                        start,
                        end: ctx.buf.len(),
                        postings: out.postings_scanned,
                    });
                }
                Item::FullDoc { task, doc } => {
                    let out = &mut ctx.outcome;
                    out.clear();
                    index.match_document_into(doc, &mut ctx.scratch, out);
                    let start = ctx.buf.len();
                    ctx.buf.extend_from_slice(&out.matched);
                    ctx.parts.push(Part {
                        task: *task,
                        start,
                        end: ctx.buf.len(),
                        postings: out.postings_scanned,
                    });
                }
            }
        }

        // Commit: one lock acquisition merges every partial, decrements
        // each owned task once, and finalizes the ones that completed.
        let mut st = self.state.lock();
        for part in &ctx.parts {
            let t = &mut st.tasks[part.task];
            t.matched.extend_from_slice(&ctx.buf[part.start..part.end]);
            t.postings_scanned += part.postings;
        }
        st.totals.units += 1;
        for &ti in &unit.tasks {
            let finalize = {
                let t = &mut st.tasks[ti];
                t.remaining -= 1;
                t.remaining == 0
            };
            if finalize {
                self.finalize_task(&mut st, ctx, ti);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            st.index = None;
            st.fanout = None;
            drop(st);
            self.done.notify_all();
        }
        LaneStep::Worked
    }

    /// Emits a completed task: latency, counters, and — when anything
    /// matched — the canonical delivery. Runs under the pool lock, on
    /// whichever lane merged the task's last unit.
    fn finalize_task(&self, st: &mut PoolState, ctx: &mut LaneCtx, ti: usize) {
        let (doc_id, dispatched, postings, mut matched) = {
            let t = &mut st.tasks[ti];
            (
                t.doc.id(),
                t.dispatched,
                t.postings_scanned,
                std::mem::take(&mut t.matched),
            )
        };
        st.totals.doc_tasks += 1;
        st.totals.postings_scanned += postings;
        let nanos = u64::try_from(dispatched.elapsed().as_nanos()).unwrap_or(u64::MAX);
        st.totals.latencies.push(nanos);
        if !matched.is_empty() {
            // The same canonicalization as the serial worker: sorted,
            // deduplicated — identical bytes for every merge order — then
            // canonical→subscriber expansion against the batch's fan-out
            // snapshot, and a second canonical pass.
            ctx.scratch.sort_dedup(&mut matched);
            let mut expanded = Vec::with_capacity(matched.len());
            match st.fanout.as_ref() {
                Some(fanout) => fanout.expand_into(&matched, &mut expanded),
                None => expanded.extend_from_slice(&matched),
            }
            ctx.scratch.sort_dedup(&mut expanded);
            st.totals.delivered += expanded.len() as u64;
            let _ = self.deliveries.send(Delivery {
                doc: doc_id,
                node: self.node,
                matched: expanded,
            });
        }
    }

    /// Blocks until the active batch completes (threaded driver only; the
    /// harness polls [`MatchPool::busy`] instead).
    pub(crate) fn wait_done(&self) {
        let mut st = self.state.lock();
        while st.remaining > 0 {
            self.done.wait(&mut st);
        }
    }

    /// Swaps out the finished batch's counters for the worker to absorb.
    pub(crate) fn take_totals(&self) -> BatchTotals {
        std::mem::take(&mut self.state.lock().totals)
    }

    /// The helper-lane OS-thread loop (lanes `1..lanes` of the threaded
    /// driver): park until a batch is dealt, then step until nothing is
    /// left to pop or steal.
    pub(crate) fn run_lane(self: &Arc<Self>, lane: usize) {
        let mut ctx = LaneCtx::default();
        loop {
            {
                let mut st = self.state.lock();
                while !st.shutdown && st.queued == 0 {
                    self.work.wait(&mut st);
                }
                if st.shutdown {
                    return;
                }
            }
            while self.step_lane(lane, &mut ctx) == LaneStep::Worked {}
        }
    }

    /// Parks every helper lane permanently (worker exit).
    pub(crate) fn shutdown_lanes(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use move_types::Filter;

    fn pool_of(lanes: usize) -> (Arc<MatchPool>, crossbeam::channel::Receiver<Delivery>) {
        pool_with_target(lanes, 4096)
    }

    fn pool_with_target(
        lanes: usize,
        target: usize,
    ) -> (Arc<MatchPool>, crossbeam::channel::Receiver<Delivery>) {
        // xtask:allow-unbounded — drained synchronously by the test.
        let (tx, rx) = unbounded();
        (Arc::new(MatchPool::new(NodeId(0), lanes, target, tx)), rx)
    }

    fn index_with(filters: &[Filter]) -> Arc<InvertedIndex> {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in filters {
            idx.insert(f.clone());
        }
        Arc::new(idx)
    }

    fn empty_fanout() -> Arc<FanoutTable> {
        Arc::new(FanoutTable::new())
    }

    fn task(doc: Document, t: MatchTask) -> DocTask {
        DocTask {
            doc: Arc::new(doc),
            task: t,
            dispatched: Instant::now(),
        }
    }

    /// Drives every queued unit on one lane — the degenerate schedule.
    fn drain_on(pool: &MatchPool, lane: usize) {
        let mut ctx = LaneCtx::default();
        while pool.step_lane(lane, &mut ctx) == LaneStep::Worked {}
        assert!(
            !pool.busy(),
            "single-threaded drain must complete the batch"
        );
    }

    #[test]
    fn a_batch_on_one_lane_matches_serially() {
        let idx = index_with(&[
            Filter::new(1u64, [TermId(3)]),
            Filter::new(2u64, [TermId(3), TermId(4)]),
        ]);
        let (pool, rx) = pool_of(4);
        let doc = Document::from_distinct_terms(9u64, [TermId(3), TermId(4)]);
        pool.begin_batch(&idx, &empty_fanout(), vec![task(doc, MatchTask::FullIndex)]);
        drain_on(&pool, 0);
        let d = rx.try_recv().unwrap();
        assert_eq!(d.matched, vec![FilterId(1), FilterId(2)]);
        let totals = pool.take_totals();
        assert_eq!(totals.doc_tasks, 1);
        assert_eq!(totals.delivered, 2);
        assert_eq!(totals.postings_scanned, 3);
        assert_eq!(totals.latencies.len(), 1);
    }

    #[test]
    fn should_inline_follows_the_cost_threshold() {
        let idx = index_with(&[
            Filter::new(1u64, [TermId(3)]),
            Filter::new(2u64, [TermId(3), TermId(4)]),
        ]);
        let doc = Document::from_distinct_terms(9u64, [TermId(3), TermId(4)]);
        let batch = vec![task(doc, MatchTask::FullIndex)];
        // Cost 3 (two postings for term 3, one for term 4) against a
        // 4096 × 4 threshold: far too small to fan out.
        let (coarse, _rx) = pool_of(4);
        assert!(coarse.should_inline(&idx, &batch));
        // Cost 3 against a 1 × 2 threshold: enough to feed both lanes.
        let (fine, _rx) = pool_with_target(2, 1);
        assert!(!fine.should_inline(&idx, &batch));
        // A workless batch has cost 0 and always inlines.
        let fwd = vec![task(
            Document::from_distinct_terms(1u64, [TermId(3)]),
            MatchTask::Forward,
        )];
        assert!(coarse.should_inline(&idx, &fwd));
    }

    #[test]
    fn stealing_lane_completes_anothers_deque() {
        let idx = index_with(&[Filter::new(1u64, [TermId(1)])]);
        // Target 1 forces one unit per term group, so several units exist
        // to steal even on this tiny workload.
        let (pool, rx) = pool_with_target(2, 1);
        let batch: Vec<DocTask> = (0..6u64)
            .map(|i| {
                task(
                    Document::from_distinct_terms(i, [TermId(1), TermId(10 + i as u32)]),
                    MatchTask::Terms(vec![TermId(1), TermId(10 + i as u32)]),
                )
            })
            .collect();
        pool.begin_batch(&idx, &empty_fanout(), batch);
        // Lane 1 alone must steal lane 0's deals and finish everything.
        drain_on(&pool, 1);
        let totals = pool.take_totals();
        assert_eq!(totals.doc_tasks, 6);
        assert!(
            totals.steals >= 1,
            "lane 1 can only reach lane 0's units by stealing"
        );
        assert_eq!(rx.try_iter().count(), 6);
    }

    #[test]
    fn crashed_lane_units_are_stolen_dry() {
        let idx = index_with(&[Filter::new(1u64, [TermId(1)])]);
        let (pool, rx) = pool_with_target(3, 1);
        let batch: Vec<DocTask> = (0..9u64)
            .map(|i| {
                task(
                    Document::from_distinct_terms(i, [TermId(1), TermId(10 + i as u32)]),
                    MatchTask::Terms(vec![TermId(1), TermId(10 + i as u32)]),
                )
            })
            .collect();
        pool.begin_batch(&idx, &empty_fanout(), batch);
        pool.crash_lane(2);
        let mut ctx = LaneCtx::default();
        assert_eq!(
            pool.step_lane(2, &mut ctx),
            LaneStep::Idle,
            "dead lane never works"
        );
        drain_on(&pool, 0);
        assert_eq!(pool.take_totals().doc_tasks, 9);
        assert_eq!(rx.try_iter().count(), 9);
    }

    #[test]
    fn crash_lane_refuses_lane_zero() {
        let (pool, _rx) = pool_of(2);
        pool.crash_lane(0);
        assert!(!pool.lane_crashed(0), "lane 0 is the worker thread itself");
        pool.crash_lane(7);
        assert!(pool.lane_crashed(7), "out-of-range lanes read as dead");
    }

    #[test]
    fn forward_tasks_finalize_without_matching() {
        let idx = index_with(&[Filter::new(1u64, [TermId(1)])]);
        let (pool, rx) = pool_of(2);
        let doc = Document::from_distinct_terms(5u64, [TermId(1)]);
        pool.begin_batch(&idx, &empty_fanout(), vec![task(doc, MatchTask::Forward)]);
        drain_on(&pool, 0);
        let totals = pool.take_totals();
        assert_eq!(totals.doc_tasks, 1);
        assert_eq!(totals.delivered, 0);
        assert_eq!(totals.latencies.len(), 1);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn term_major_scatter_reproduces_per_doc_deliveries() {
        // Two docs share the popular term 1; one also carries term 2. The
        // term-major plan scans t1's list once and scatters it to both
        // tasks — each doc's delivery must still be exactly its own match
        // set, with serial counters.
        let idx = index_with(&[
            Filter::new(1u64, [TermId(1)]),
            Filter::new(2u64, [TermId(1), TermId(2)]),
            Filter::new(3u64, [TermId(2)]),
        ]);
        let (pool, rx) = pool_of(2);
        let batch = vec![
            task(
                Document::from_distinct_terms(10u64, [TermId(1)]),
                MatchTask::FullIndex,
            ),
            task(
                Document::from_distinct_terms(11u64, [TermId(1), TermId(2)]),
                MatchTask::FullIndex,
            ),
        ];
        pool.begin_batch(&idx, &empty_fanout(), batch);
        drain_on(&pool, 0);
        let mut by_doc: Vec<(u64, Vec<FilterId>)> =
            rx.try_iter().map(|d| (d.doc.0, d.matched)).collect();
        by_doc.sort();
        assert_eq!(
            by_doc,
            vec![
                (10, vec![FilterId(1), FilterId(2)]),
                (11, vec![FilterId(1), FilterId(2), FilterId(3)]),
            ]
        );
        let totals = pool.take_totals();
        // Doc 10 scans t1 (2 postings); doc 11 scans t1 (2) + t2 (2).
        assert_eq!(totals.postings_scanned, 6);
        assert_eq!(totals.doc_tasks, 2);
    }

    #[test]
    fn cost_target_bounds_unit_count() {
        // 32 single-term tasks over distinct terms of posting length 1:
        // total cost 32. A huge target packs everything into one unit; a
        // target of 1 yields one unit per term group.
        let filters: Vec<Filter> = (0..32u64)
            .map(|i| Filter::new(i, [TermId(i as u32)]))
            .collect();
        let idx = index_with(&filters);
        let make_batch = || -> Vec<DocTask> {
            (0..32u64)
                .map(|i| {
                    task(
                        Document::from_distinct_terms(i, [TermId(i as u32)]),
                        MatchTask::Terms(vec![TermId(i as u32)]),
                    )
                })
                .collect()
        };
        let (coarse, _rx1) = pool_with_target(2, 1 << 20);
        coarse.begin_batch(&idx, &empty_fanout(), make_batch());
        drain_on(&coarse, 0);
        let coarse_units = coarse.take_totals().units;
        let (fine, _rx2) = pool_with_target(2, 1);
        fine.begin_batch(&idx, &empty_fanout(), make_batch());
        drain_on(&fine, 0);
        let fine_units = fine.take_totals().units;
        assert_eq!(fine_units, 32, "target 1 → one unit per term group");
        assert!(
            coarse_units < fine_units,
            "a large cost target must coalesce units ({coarse_units} vs {fine_units})"
        );
    }
}
