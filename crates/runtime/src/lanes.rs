//! The intra-node work-stealing match executor ("match lanes").
//!
//! A worker with [`RuntimeConfig::match_lanes`](crate::RuntimeConfig) > 1
//! does not execute a document batch inline: it splits every
//! [`DocTask`](crate::DocTask) into *units* (chunked posting-list scans),
//! deals the units round-robin across a small set of per-lane deques, and
//! lets the lanes race — a lane whose own deque runs dry steals the back
//! half of the longest other deque. Each lane owns a private
//! [`MatchScratch`]/[`MatchOutcome`] pair, so the kernels stay
//! allocation-free and nothing is shared but the pool's one mutex.
//!
//! Two drivers run the *same* [`MatchPool::step_lane`] code:
//!
//! * the threaded worker ([`Worker::run`](crate::worker)) spawns
//!   `match_lanes - 1` helper OS threads and participates as lane 0,
//!   blocking until the batch completes so the mailbox keeps its FIFO
//!   semantics (an `AllocationUpdate` behind a batch is still observed
//!   strictly after it);
//! * the interleaving harness ([`crate::interleave`]) spawns no threads at
//!   all and single-steps individual lanes under a seeded schedule,
//!   exploring steal orders, merge orders, and lane crashes
//!   deterministically.
//!
//! # Why the merge is order-independent
//!
//! Units only ever *append* to their task's accumulator: per-unit matched
//! ids plus work counters. Addition commutes, and the finalize step (run
//! by whichever lane merges the task's last unit) passes the concatenated
//! ids through the same dense-bitmap
//! [`MatchScratch::sort_dedup`] the serial worker uses — a sorted,
//! deduplicated set is a canonical form, so the delivery is byte-identical
//! for every steal schedule, and identical to the serial worker's. The
//! equivalence property suite in `tests/tests/match_pool.rs` pins this.

use crossbeam::channel::Sender;
use move_core::MatchTask;
use move_index::{FanoutTable, InvertedIndex, MatchOutcome, MatchScratch};
use move_types::{MatchSemantics, NodeId, TermId};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crate::message::{Delivery, DocTask};

/// Posting-list scans per unit: a [`MatchTask::Terms`] list (or a
/// full-index document's term list) is cut into chunks of this many terms,
/// so one oversized task still spreads across lanes. Small enough that a
/// typical batch yields several stealable units, large enough that the
/// per-unit lock round-trip stays amortized.
const TERM_CHUNK: usize = 8;

/// What one scheduling quantum of a lane did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneStep {
    /// The lane executed (and merged) one unit — possibly after stealing.
    Worked,
    /// Nothing to pop and nothing to steal: every remaining unit of the
    /// batch is in flight on another lane (or the pool is idle).
    Idle,
}

/// A lane's private kernel buffers; reused across units so steady-state
/// matching allocates only when a delivery is produced.
#[derive(Debug, Default)]
pub(crate) struct LaneCtx {
    pub(crate) scratch: MatchScratch,
    outcome: MatchOutcome,
}

/// One schedulable slice of a document task.
#[derive(Debug)]
struct Unit {
    /// Index of the owning task in the batch's accumulator table.
    task: usize,
    kind: UnitKind,
}

#[derive(Debug)]
enum UnitKind {
    /// Match a chunk of the task's routed terms (inverted-list step).
    RoutedTerms(Vec<TermId>),
    /// Match a `[start, end)` slice of the *document's* terms against the
    /// full local index — only valid under boolean semantics, where the
    /// union of per-term matches equals the SIFT result exactly (counters
    /// included).
    DocTerms(usize, usize),
    /// Run the whole SIFT kernel in one unit — threshold semantics needs
    /// per-filter hit multiplicities, which cannot be split across lanes.
    FullDoc,
    /// Execute nothing, but finalize the task (latency + task count) —
    /// [`MatchTask::Forward`] and empty term lists.
    Noop,
}

/// Per-task accumulator: partial results merge in as units finish, in
/// whatever order the lanes produce them.
#[derive(Debug)]
struct TaskAcc {
    doc: Arc<move_types::Document>,
    dispatched: Instant,
    /// Units of this task not yet merged.
    remaining: usize,
    /// Concatenated per-unit matches; canonicalized at finalize.
    matched: Vec<move_types::FilterId>,
    postings_scanned: u64,
}

/// Counters of one completed batch, absorbed into the worker's own
/// counters after the batch (so the worker's snapshot and
/// [`WorkerFinal`](crate::worker) merging stay unchanged).
#[derive(Debug, Default)]
pub(crate) struct BatchTotals {
    pub(crate) doc_tasks: u64,
    pub(crate) postings_scanned: u64,
    pub(crate) delivered: u64,
    pub(crate) steals: u64,
    pub(crate) units: u64,
    /// Per-task dispatch→finalize latencies, nanoseconds.
    pub(crate) latencies: Vec<u64>,
}

/// Everything the lanes share, guarded by the pool's one mutex.
#[derive(Debug)]
struct PoolState {
    /// The serving shard the active batch matches against — the snapshot
    /// taken at [`MatchPool::begin_batch`]; an `AllocationUpdate` queued
    /// behind the batch cannot bleed into it.
    index: Option<Arc<InvertedIndex>>,
    /// The fan-out table snapshot of the active batch — a `Subscribe`
    /// queued behind the batch cannot bleed into its deliveries.
    fanout: Option<Arc<FanoutTable>>,
    /// One work deque per lane.
    deques: Vec<VecDeque<Unit>>,
    tasks: Vec<TaskAcc>,
    /// Units not yet merged (queued plus in flight).
    remaining: usize,
    /// Units sitting in deques (equals `remaining` under the harness,
    /// where a step executes its unit atomically).
    queued: usize,
    /// Harness-injected lane deaths: a crashed lane is never stepped
    /// again, but its queued units stay stealable, so the batch still
    /// completes exactly.
    crashed: Vec<bool>,
    totals: BatchTotals,
    /// Set at worker exit; parks helper lane threads permanently.
    shutdown: bool,
}

/// The work-stealing pool owned by one node worker. See the module docs.
#[derive(Debug)]
pub(crate) struct MatchPool {
    node: NodeId,
    deliveries: Sender<Delivery>,
    lanes: usize,
    state: Mutex<PoolState>,
    /// Signals helper lanes that a batch was queued (or shutdown set).
    work: Condvar,
    /// Signals the batch owner that `remaining` hit zero.
    done: Condvar,
}

impl MatchPool {
    pub(crate) fn new(node: NodeId, lanes: usize, deliveries: Sender<Delivery>) -> Self {
        let lanes = lanes.max(1);
        Self {
            node,
            deliveries,
            lanes,
            state: Mutex::new(PoolState {
                index: None,
                fanout: None,
                deques: (0..lanes).map(|_| VecDeque::new()).collect(),
                tasks: Vec::new(),
                remaining: 0,
                queued: 0,
                crashed: vec![false; lanes],
                totals: BatchTotals::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    pub(crate) fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether a batch is in flight (units not yet merged).
    pub(crate) fn busy(&self) -> bool {
        self.state.lock().remaining > 0
    }

    /// Whether a lane was crashed by the harness.
    pub(crate) fn lane_crashed(&self, lane: usize) -> bool {
        self.state.lock().crashed.get(lane).copied().unwrap_or(true)
    }

    /// Harness fault injection: permanently deschedules `lane`. Lane 0 is
    /// the worker thread itself — it cannot die without the whole worker
    /// crashing — so crashing it is refused.
    pub(crate) fn crash_lane(&self, lane: usize) {
        if lane == 0 || lane >= self.lanes {
            return;
        }
        self.state.lock().crashed[lane] = true;
    }

    /// Splits `batch` into units against the `index` snapshot and deals
    /// them round-robin across the lane deques. Must not be called while a
    /// batch is in flight — the worker completes each batch before
    /// touching its mailbox again.
    pub(crate) fn begin_batch(
        &self,
        index: &Arc<InvertedIndex>,
        fanout: &Arc<FanoutTable>,
        batch: Vec<DocTask>,
    ) {
        let semantics = index.semantics();
        let mut st = self.state.lock();
        debug_assert_eq!(st.remaining, 0, "previous batch still in flight");
        st.index = Some(Arc::clone(index));
        st.fanout = Some(Arc::clone(fanout));
        st.tasks.clear();
        let mut dealt = 0usize;
        for task in batch {
            let slot = st.tasks.len();
            let mut units = 0usize;
            let mut push = |st: &mut PoolState, kind: UnitKind| {
                st.deques[dealt % self.lanes].push_back(Unit { task: slot, kind });
                dealt += 1;
                units += 1;
            };
            match &task.task {
                MatchTask::Forward => push(&mut st, UnitKind::Noop),
                MatchTask::Terms(terms) => {
                    if terms.is_empty() {
                        push(&mut st, UnitKind::Noop);
                    } else {
                        for chunk in terms.chunks(TERM_CHUNK) {
                            push(&mut st, UnitKind::RoutedTerms(chunk.to_vec()));
                        }
                    }
                }
                MatchTask::FullIndex => match semantics {
                    MatchSemantics::Boolean => {
                        let n = task.doc.terms().len();
                        if n == 0 {
                            push(&mut st, UnitKind::Noop);
                        } else {
                            let mut start = 0;
                            while start < n {
                                let end = (start + TERM_CHUNK).min(n);
                                push(&mut st, UnitKind::DocTerms(start, end));
                                start = end;
                            }
                        }
                    }
                    MatchSemantics::SimilarityThreshold(_) => push(&mut st, UnitKind::FullDoc),
                },
            }
            st.tasks.push(TaskAcc {
                doc: task.doc,
                dispatched: task.dispatched,
                remaining: units,
                matched: Vec::new(),
                postings_scanned: 0,
            });
        }
        st.remaining = dealt;
        st.queued = dealt;
        drop(st);
        self.work.notify_all();
    }

    /// One scheduling quantum of `lane`: pop the lane's own deque, steal
    /// the back half of the longest other deque if it is empty, execute
    /// the unit against the batch snapshot, and merge the partial result —
    /// finalizing the task (canonical sort+dedup, delivery, latency) when
    /// its last unit lands, and the batch when *its* last unit lands.
    pub(crate) fn step_lane(&self, lane: usize, ctx: &mut LaneCtx) -> LaneStep {
        let mut st = self.state.lock();
        if st.remaining == 0 || st.crashed[lane] {
            return LaneStep::Idle;
        }
        let unit = match st.deques[lane].pop_front() {
            Some(u) => u,
            None => {
                // Steal half: victim is the longest deque (lowest index
                // breaks ties — a pure function of state, so the harness
                // schedule fully determines every steal).
                let victim = (0..self.lanes)
                    .filter(|&v| v != lane)
                    .max_by_key(|&v| (st.deques[v].len(), usize::MAX - v));
                let Some(v) = victim.filter(|&v| !st.deques[v].is_empty()) else {
                    return LaneStep::Idle; // all in flight on other lanes
                };
                let keep = st.deques[v].len() / 2;
                let mut stolen = st.deques[v].split_off(keep);
                std::mem::swap(&mut stolen, &mut st.deques[lane]);
                debug_assert!(stolen.is_empty());
                st.totals.steals += 1;
                match st.deques[lane].pop_front() {
                    Some(u) => u,
                    None => return LaneStep::Idle, // unreachable: stole ≥ 1
                }
            }
        };
        // A dequeued unit implies an active batch, whose snapshot is
        // installed by `begin_batch` before any unit is dealt.
        let Some(index) = st.index.as_ref().map(Arc::clone) else {
            debug_assert!(false, "active batch has no snapshot");
            st.deques[lane].push_front(unit);
            return LaneStep::Idle;
        };
        st.queued -= 1;
        let doc = Arc::clone(&st.tasks[unit.task].doc);
        drop(st);

        // Execute outside the lock — this is the parallel section.
        let out = &mut ctx.outcome;
        out.clear();
        match &unit.kind {
            UnitKind::RoutedTerms(terms) => index.match_terms_into(&doc, terms, out),
            UnitKind::DocTerms(s, e) => index.match_terms_into(&doc, &doc.terms()[*s..*e], out),
            UnitKind::FullDoc => index.match_document_into(&doc, &mut ctx.scratch, out),
            UnitKind::Noop => {}
        }

        let mut st = self.state.lock();
        let finalize = {
            let t = &mut st.tasks[unit.task];
            t.matched.extend_from_slice(&out.matched);
            t.postings_scanned += out.postings_scanned;
            t.remaining -= 1;
            t.remaining == 0
        };
        st.totals.units += 1;
        if finalize {
            let (doc_id, dispatched, postings, mut matched) = {
                let t = &mut st.tasks[unit.task];
                (
                    t.doc.id(),
                    t.dispatched,
                    t.postings_scanned,
                    std::mem::take(&mut t.matched),
                )
            };
            st.totals.doc_tasks += 1;
            st.totals.postings_scanned += postings;
            let nanos = u64::try_from(dispatched.elapsed().as_nanos()).unwrap_or(u64::MAX);
            st.totals.latencies.push(nanos);
            if !matched.is_empty() {
                // The same canonicalization as the serial worker: sorted,
                // deduplicated — identical bytes for every merge order —
                // then canonical→subscriber expansion against the batch's
                // fan-out snapshot, and a second canonical pass.
                ctx.scratch.sort_dedup(&mut matched);
                let mut expanded = Vec::with_capacity(matched.len());
                match st.fanout.as_ref() {
                    Some(fanout) => fanout.expand_into(&matched, &mut expanded),
                    None => expanded.extend_from_slice(&matched),
                }
                ctx.scratch.sort_dedup(&mut expanded);
                st.totals.delivered += expanded.len() as u64;
                let _ = self.deliveries.send(Delivery {
                    doc: doc_id,
                    node: self.node,
                    matched: expanded,
                });
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            st.index = None;
            st.fanout = None;
            drop(st);
            self.done.notify_all();
        }
        LaneStep::Worked
    }

    /// Blocks until the active batch completes (threaded driver only; the
    /// harness polls [`MatchPool::busy`] instead).
    pub(crate) fn wait_done(&self) {
        let mut st = self.state.lock();
        while st.remaining > 0 {
            self.done.wait(&mut st);
        }
    }

    /// Swaps out the finished batch's counters for the worker to absorb.
    pub(crate) fn take_totals(&self) -> BatchTotals {
        std::mem::take(&mut self.state.lock().totals)
    }

    /// The helper-lane OS-thread loop (lanes `1..lanes` of the threaded
    /// driver): park until a batch is dealt, then step until nothing is
    /// left to pop or steal.
    pub(crate) fn run_lane(self: &Arc<Self>, lane: usize) {
        let mut ctx = LaneCtx::default();
        loop {
            {
                let mut st = self.state.lock();
                while !st.shutdown && st.queued == 0 {
                    self.work.wait(&mut st);
                }
                if st.shutdown {
                    return;
                }
            }
            while self.step_lane(lane, &mut ctx) == LaneStep::Worked {}
        }
    }

    /// Parks every helper lane permanently (worker exit).
    pub(crate) fn shutdown_lanes(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use move_types::{Document, Filter, FilterId};

    fn pool_of(lanes: usize) -> (Arc<MatchPool>, crossbeam::channel::Receiver<Delivery>) {
        // xtask:allow-unbounded — drained synchronously by the test.
        let (tx, rx) = unbounded();
        (Arc::new(MatchPool::new(NodeId(0), lanes, tx)), rx)
    }

    fn index_with(filters: &[Filter]) -> Arc<InvertedIndex> {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in filters {
            idx.insert(f.clone());
        }
        Arc::new(idx)
    }

    fn empty_fanout() -> Arc<FanoutTable> {
        Arc::new(FanoutTable::new())
    }

    fn task(doc: Document, t: MatchTask) -> DocTask {
        DocTask {
            doc: Arc::new(doc),
            task: t,
            dispatched: Instant::now(),
        }
    }

    /// Drives every queued unit on one lane — the degenerate schedule.
    fn drain_on(pool: &MatchPool, lane: usize) {
        let mut ctx = LaneCtx::default();
        while pool.step_lane(lane, &mut ctx) == LaneStep::Worked {}
        assert!(
            !pool.busy(),
            "single-threaded drain must complete the batch"
        );
    }

    #[test]
    fn a_batch_on_one_lane_matches_serially() {
        let idx = index_with(&[
            Filter::new(1u64, [TermId(3)]),
            Filter::new(2u64, [TermId(3), TermId(4)]),
        ]);
        let (pool, rx) = pool_of(4);
        let doc = Document::from_distinct_terms(9u64, [TermId(3), TermId(4)]);
        pool.begin_batch(&idx, &empty_fanout(), vec![task(doc, MatchTask::FullIndex)]);
        drain_on(&pool, 0);
        let d = rx.try_recv().unwrap();
        assert_eq!(d.matched, vec![FilterId(1), FilterId(2)]);
        let totals = pool.take_totals();
        assert_eq!(totals.doc_tasks, 1);
        assert_eq!(totals.delivered, 2);
        assert_eq!(totals.postings_scanned, 3);
        assert_eq!(totals.latencies.len(), 1);
    }

    #[test]
    fn stealing_lane_completes_anothers_deque() {
        let idx = index_with(&[Filter::new(1u64, [TermId(1)])]);
        let (pool, rx) = pool_of(2);
        let batch: Vec<DocTask> = (0..6u64)
            .map(|i| {
                task(
                    Document::from_distinct_terms(i, [TermId(1)]),
                    MatchTask::Terms(vec![TermId(1)]),
                )
            })
            .collect();
        pool.begin_batch(&idx, &empty_fanout(), batch);
        // Lane 1 alone must steal lane 0's deals and finish everything.
        drain_on(&pool, 1);
        let totals = pool.take_totals();
        assert_eq!(totals.doc_tasks, 6);
        assert!(
            totals.steals >= 1,
            "lane 1 can only reach lane 0's units by stealing"
        );
        assert_eq!(rx.try_iter().count(), 6);
    }

    #[test]
    fn crashed_lane_units_are_stolen_dry() {
        let idx = index_with(&[Filter::new(1u64, [TermId(1)])]);
        let (pool, rx) = pool_of(3);
        let batch: Vec<DocTask> = (0..9u64)
            .map(|i| {
                task(
                    Document::from_distinct_terms(i, [TermId(1)]),
                    MatchTask::Terms(vec![TermId(1)]),
                )
            })
            .collect();
        pool.begin_batch(&idx, &empty_fanout(), batch);
        pool.crash_lane(2);
        let mut ctx = LaneCtx::default();
        assert_eq!(
            pool.step_lane(2, &mut ctx),
            LaneStep::Idle,
            "dead lane never works"
        );
        drain_on(&pool, 0);
        assert_eq!(pool.take_totals().doc_tasks, 9);
        assert_eq!(rx.try_iter().count(), 9);
    }

    #[test]
    fn crash_lane_refuses_lane_zero() {
        let (pool, _rx) = pool_of(2);
        pool.crash_lane(0);
        assert!(!pool.lane_crashed(0), "lane 0 is the worker thread itself");
        pool.crash_lane(7);
        assert!(pool.lane_crashed(7), "out-of-range lanes read as dead");
    }

    #[test]
    fn forward_tasks_finalize_without_matching() {
        let idx = index_with(&[Filter::new(1u64, [TermId(1)])]);
        let (pool, rx) = pool_of(2);
        let doc = Document::from_distinct_terms(5u64, [TermId(1)]);
        pool.begin_batch(&idx, &empty_fanout(), vec![task(doc, MatchTask::Forward)]);
        drain_on(&pool, 0);
        let totals = pool.take_totals();
        assert_eq!(totals.doc_tasks, 1);
        assert_eq!(totals.delivered, 0);
        assert_eq!(totals.latencies.len(), 1);
        assert!(rx.try_recv().is_err());
    }
}
