//! The per-node worker thread: a mailbox loop over [`NodeMessage`]s.
//!
//! The message-handling logic is factored into [`Worker::handle`] so two
//! drivers can share it verbatim: the OS-thread loop of [`Worker::run`]
//! (the production engine) and the single-stepped [`Worker::try_step`] the
//! deterministic interleaving harness uses to explore message orders.

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use move_core::MatchTask;
use move_index::{InvertedIndex, MatchOutcome, MatchScratch};
use move_stats::LatencyHistogram;
use move_types::{DocId, NodeId};
use std::sync::Arc;
use std::time::Duration;

use crate::fault::FaultAction;
use crate::message::{Delivery, DocTask, NodeMessage};
use crate::metrics::NodeMetrics;

/// What a worker hands back when it exits: its final counters plus the full
/// latency histogram (the per-request [`NodeMetrics`] snapshot only carries
/// the summary) so the router can merge an exact cluster-wide distribution,
/// and the documents whose queued tasks an injected crash destroyed (so
/// delivery oracles can scope their at-most-once allowance).
pub(crate) struct WorkerFinal {
    pub metrics: NodeMetrics,
    pub histogram: LatencyHistogram,
    pub lost_docs: Vec<DocId>,
}

/// Outcome of one harness-driven scheduling step; see [`Worker::try_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerStep {
    /// One message was dequeued and handled.
    Handled,
    /// The mailbox was empty — a real worker thread would be parked here.
    Empty,
    /// A [`NodeMessage::Shutdown`] was handled; the worker must not be
    /// stepped again.
    Stopped,
}

pub(crate) struct Worker {
    node: NodeId,
    /// The serving shard. Shared with the router's journal snapshot;
    /// registrations copy-on-write via [`Arc::make_mut`].
    index: Arc<InvertedIndex>,
    mailbox: Receiver<NodeMessage>,
    deliveries: Sender<Delivery>,
    messages_processed: u64,
    doc_tasks: u64,
    postings_scanned: u64,
    delivered: u64,
    queue_depth_hwm: u64,
    /// Queued document tasks destroyed by an injected crash.
    tasks_lost: u64,
    /// The documents those lost tasks belonged to.
    lost_docs: Vec<DocId>,
    /// Per-task delay injected by [`FaultAction::Slow`].
    slow: Option<Duration>,
    latency: LatencyHistogram,
    /// Reusable kernel buffers: steady-state matching allocates only when
    /// a delivery is actually produced.
    scratch: MatchScratch,
    outcome: MatchOutcome,
}

impl Worker {
    pub(crate) fn new(
        node: NodeId,
        index: Arc<InvertedIndex>,
        mailbox: Receiver<NodeMessage>,
        deliveries: Sender<Delivery>,
    ) -> Self {
        Self {
            node,
            index,
            mailbox,
            deliveries,
            messages_processed: 0,
            doc_tasks: 0,
            postings_scanned: 0,
            delivered: 0,
            queue_depth_hwm: 0,
            tasks_lost: 0,
            lost_docs: Vec::new(),
            slow: None,
            latency: LatencyHistogram::new(),
            scratch: MatchScratch::new(),
            outcome: MatchOutcome::default(),
        }
    }

    /// The mailbox loop. Returns the final counters; the mailbox is always
    /// fully drained first — [`NodeMessage::Shutdown`] is FIFO-ordered
    /// behind any queued work, and a disconnected channel is only reported
    /// once empty.
    pub(crate) fn run(mut self) -> WorkerFinal {
        loop {
            self.queue_depth_hwm = self.queue_depth_hwm.max(self.mailbox.len() as u64);
            let Ok(msg) = self.mailbox.recv() else {
                break; // router gone: treat as shutdown after the drain
            };
            if !self.handle(msg) {
                break;
            }
        }
        self.finish()
    }

    /// Dequeues and handles at most one message — the interleaving
    /// harness's scheduling quantum. Equivalent to one iteration of
    /// [`Worker::run`], minus the blocking wait.
    pub(crate) fn try_step(&mut self) -> WorkerStep {
        self.queue_depth_hwm = self.queue_depth_hwm.max(self.mailbox.len() as u64);
        match self.mailbox.try_recv() {
            Ok(msg) => {
                if self.handle(msg) {
                    WorkerStep::Handled
                } else {
                    WorkerStep::Stopped
                }
            }
            Err(TryRecvError::Empty) => WorkerStep::Empty,
            Err(TryRecvError::Disconnected) => WorkerStep::Stopped,
        }
    }

    /// Applies one protocol message to the worker state. Returns `false`
    /// when the message asks the worker to stop ([`NodeMessage::Shutdown`]).
    fn handle(&mut self, msg: NodeMessage) -> bool {
        self.messages_processed += 1;
        match msg {
            NodeMessage::RegisterFilter { filter, terms } => {
                let index = Arc::make_mut(&mut self.index);
                match terms {
                    None => index.insert_shared(filter),
                    Some(terms) => {
                        for t in terms {
                            index.insert_shared_for_term(Arc::clone(&filter), t);
                        }
                    }
                }
            }
            NodeMessage::PublishDocument { batch } => {
                for task in batch {
                    self.execute(task);
                }
            }
            NodeMessage::AllocationUpdate { index } => {
                self.index = index;
            }
            // Both rebalancing messages swap the serving shard exactly like
            // an allocation update; the layout version is the control
            // plane's bookkeeping, not the worker's.
            NodeMessage::InstallPartitions { index, .. }
            | NodeMessage::RetirePartitions { index, .. } => {
                self.index = index;
            }
            NodeMessage::StatsReport { reply } => {
                let _ = reply.send(self.snapshot());
            }
            NodeMessage::Fault { action } => match action {
                FaultAction::Crash => {
                    self.crash();
                    return false;
                }
                FaultAction::Pause(d) => std::thread::sleep(d),
                FaultAction::Slow(d) => self.slow = Some(d),
            },
            NodeMessage::Ping { reply } => {
                let _ = reply.send(self.node);
            }
            NodeMessage::Shutdown => return false,
        }
        true
    }

    /// An injected crash: whatever is still queued dies with the worker.
    /// The doomed document tasks are counted (and their doc ids recorded)
    /// so the report can balance `dispatched == executed + lost`; control
    /// messages in the queue are simply destroyed — the supervisor's
    /// journal replay is what restores registrations.
    fn crash(&mut self) {
        while let Ok(msg) = self.mailbox.try_recv() {
            if let NodeMessage::PublishDocument { batch } = msg {
                self.tasks_lost += batch.len() as u64;
                self.lost_docs.extend(batch.iter().map(|t| t.doc.id()));
            }
        }
    }

    /// Consumes the worker into its final counters and histogram.
    pub(crate) fn finish(self) -> WorkerFinal {
        let metrics = self.snapshot();
        WorkerFinal {
            metrics,
            histogram: self.latency,
            lost_docs: self.lost_docs,
        }
    }

    fn execute(&mut self, task: DocTask) {
        if let Some(d) = self.slow {
            std::thread::sleep(d);
        }
        let out = &mut self.outcome;
        out.clear();
        match &task.task {
            // Forward steps never reach a worker (the router is the
            // forwarding table), but stay executable for completeness.
            MatchTask::Forward => {}
            MatchTask::Terms(terms) => {
                for &t in terms {
                    self.index.match_term_into(&task.doc, t, out);
                }
            }
            MatchTask::FullIndex => {
                self.index
                    .match_document_into(&task.doc, &mut self.scratch, out);
            }
        }
        self.postings_scanned += out.postings_scanned;
        let nanos = u64::try_from(task.dispatched.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.latency.record(nanos);
        self.doc_tasks += 1;
        if !out.matched.is_empty() {
            self.scratch.sort_dedup(&mut out.matched);
            self.delivered += out.matched.len() as u64;
            let _ = self.deliveries.send(Delivery {
                doc: task.doc.id(),
                node: self.node,
                matched: out.matched.clone(),
            });
        }
    }

    fn snapshot(&self) -> NodeMetrics {
        NodeMetrics {
            node: self.node,
            messages_processed: self.messages_processed,
            doc_tasks: self.doc_tasks,
            postings_scanned: self.postings_scanned,
            deliveries: self.delivered,
            queue_depth_hwm: self.queue_depth_hwm,
            tasks_lost: self.tasks_lost,
            latency: self.latency.summary(),
        }
    }
}
