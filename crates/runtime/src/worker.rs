//! The per-node worker thread: a mailbox loop over [`NodeMessage`]s.
//!
//! The message-handling logic is factored into [`Worker::handle`] so two
//! drivers can share it verbatim: the OS-thread loop of [`Worker::run`]
//! (the production engine) and the single-stepped [`Worker::try_step`] the
//! deterministic interleaving harness uses to explore message orders.
//!
//! With [`RuntimeConfig::match_lanes`](crate::RuntimeConfig) > 1 the
//! worker fans each document batch out over a work-stealing
//! [`MatchPool`] instead of matching inline; the batch completes before
//! the next mailbox message is handled, so the mailbox's FIFO semantics
//! (allocation updates ordered behind batches, crashes landing mid-drain)
//! are unchanged. The threaded driver parks `match_lanes - 1` helper
//! threads on the pool; the harness single-steps lanes via
//! [`Worker::step_lane`].

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use move_core::MatchTask;
use move_index::{FanoutTable, InvertedIndex, MatchOutcome, MatchScratch};
use move_stats::LatencyHistogram;
use move_types::{DocId, NodeId};
use std::sync::Arc;
use std::time::Duration;

use crate::fault::FaultAction;
use crate::lanes::{BatchTotals, LaneCtx, LaneStep, MatchPool};
use crate::message::{Delivery, DocTask, NodeMessage};
use crate::metrics::NodeMetrics;

/// What a worker hands back when it exits: its final counters plus the full
/// latency histogram (the per-request [`NodeMetrics`] snapshot only carries
/// the summary) so the router can merge an exact cluster-wide distribution,
/// and the documents whose queued tasks an injected crash destroyed (so
/// delivery oracles can scope their at-most-once allowance).
pub(crate) struct WorkerFinal {
    pub metrics: NodeMetrics,
    pub histogram: LatencyHistogram,
    pub lost_docs: Vec<DocId>,
}

/// Outcome of one harness-driven scheduling step; see [`Worker::try_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerStep {
    /// One message was dequeued and handled.
    Handled,
    /// The mailbox was empty — a real worker thread would be parked here.
    Empty,
    /// A [`NodeMessage::Shutdown`] was handled; the worker must not be
    /// stepped again.
    Stopped,
}

pub(crate) struct Worker {
    node: NodeId,
    /// The serving shard. Shared with the router's journal snapshot;
    /// registrations copy-on-write via [`Arc::make_mut`].
    index: Arc<InvertedIndex>,
    /// Canonical→subscribers fan-out table (DESIGN.md §12), maintained by
    /// broadcast [`NodeMessage::Subscribe`]/[`NodeMessage::Unsubscribe`];
    /// matched canonical ids expand through it at delivery finalize.
    /// Copy-on-write like the index, so pool batch snapshots are stable.
    fanout: Arc<FanoutTable>,
    mailbox: Receiver<NodeMessage>,
    deliveries: Sender<Delivery>,
    messages_processed: u64,
    doc_tasks: u64,
    postings_scanned: u64,
    delivered: u64,
    queue_depth_hwm: u64,
    /// Queued document tasks destroyed by an injected crash.
    tasks_lost: u64,
    /// The documents those lost tasks belonged to.
    lost_docs: Vec<DocId>,
    /// Per-task delay injected by [`FaultAction::Slow`].
    slow: Option<Duration>,
    latency: LatencyHistogram,
    /// Reusable kernel buffers: steady-state matching allocates only when
    /// a delivery is actually produced.
    scratch: MatchScratch,
    outcome: MatchOutcome,
    /// The work-stealing match pool (`None` with one lane — inline match).
    pool: Option<Arc<MatchPool>>,
    /// Per-lane kernel buffers for harness-driven lane steps (the threaded
    /// helper threads own their own).
    lane_ctxs: Vec<LaneCtx>,
    /// `true` when an external scheduler steps the lanes
    /// ([`Worker::step_lane`]); the worker then *begins* pool batches in
    /// [`Worker::handle`] instead of driving them to completion.
    external_lanes: bool,
    /// Steals performed by this worker's lanes (absorbed batch totals).
    steals: u64,
    /// Chunked units executed by this worker's lanes.
    lane_units: u64,
}

impl Worker {
    /// A worker whose batches fan out over `lanes` match lanes (1 =
    /// inline matching, no pool at all), with units packed toward
    /// `lane_cost_target` posting entries each. With
    /// `external_lanes`, lane steps are driven by the caller (the
    /// interleaving harness) instead of helper threads.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_lanes(
        node: NodeId,
        index: Arc<InvertedIndex>,
        fanout: Arc<FanoutTable>,
        mailbox: Receiver<NodeMessage>,
        deliveries: Sender<Delivery>,
        lanes: usize,
        lane_cost_target: usize,
        external_lanes: bool,
    ) -> Self {
        let pool = (lanes > 1).then(|| {
            Arc::new(MatchPool::new(
                node,
                lanes,
                lane_cost_target,
                deliveries.clone(),
            ))
        });
        let lane_ctxs = if external_lanes && pool.is_some() {
            (0..lanes).map(|_| LaneCtx::default()).collect()
        } else {
            Vec::new()
        };
        Self {
            node,
            index,
            fanout,
            mailbox,
            deliveries,
            messages_processed: 0,
            doc_tasks: 0,
            postings_scanned: 0,
            delivered: 0,
            queue_depth_hwm: 0,
            tasks_lost: 0,
            lost_docs: Vec::new(),
            slow: None,
            latency: LatencyHistogram::new(),
            scratch: MatchScratch::new(),
            outcome: MatchOutcome::default(),
            pool,
            lane_ctxs,
            external_lanes,
            steals: 0,
            lane_units: 0,
        }
    }

    /// The mailbox loop. Returns the final counters; the mailbox is always
    /// fully drained first — [`NodeMessage::Shutdown`] is FIFO-ordered
    /// behind any queued work, and a disconnected channel is only reported
    /// once empty.
    pub(crate) fn run(mut self) -> WorkerFinal {
        // Helper lanes 1..n; the worker thread itself is lane 0. A refused
        // thread spawn degrades capacity, not correctness — lane 0 alone
        // completes every batch.
        let mut helpers = Vec::new();
        if let Some(pool) = &self.pool {
            for lane in 1..pool.lanes() {
                let p = Arc::clone(pool);
                let name = format!("move-node-{}-lane-{lane}", self.node);
                if let Ok(h) = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || p.run_lane(lane))
                {
                    helpers.push(h);
                }
            }
        }
        loop {
            self.queue_depth_hwm = self.queue_depth_hwm.max(self.mailbox.len() as u64);
            let Ok(msg) = self.mailbox.recv() else {
                break; // router gone: treat as shutdown after the drain
            };
            if !self.handle(msg) {
                break;
            }
        }
        if let Some(pool) = &self.pool {
            pool.shutdown_lanes();
        }
        for h in helpers {
            let _ = h.join();
        }
        self.finish()
    }

    /// Dequeues and handles at most one message — the interleaving
    /// harness's scheduling quantum. Equivalent to one iteration of
    /// [`Worker::run`], minus the blocking wait. Must not be called while
    /// [`Worker::pool_busy`] — the threaded worker completes each batch
    /// before its next receive, and the harness scheduler mirrors that by
    /// stepping lanes instead.
    pub(crate) fn try_step(&mut self) -> WorkerStep {
        debug_assert!(
            !self.pool_busy(),
            "mailbox stepped while a batch is in flight"
        );
        self.queue_depth_hwm = self.queue_depth_hwm.max(self.mailbox.len() as u64);
        match self.mailbox.try_recv() {
            Ok(msg) => {
                if self.handle(msg) {
                    WorkerStep::Handled
                } else {
                    WorkerStep::Stopped
                }
            }
            Err(TryRecvError::Empty) => WorkerStep::Empty,
            Err(TryRecvError::Disconnected) => WorkerStep::Stopped,
        }
    }

    /// Whether the worker's pool has a batch in flight (always `false`
    /// without a pool, and outside harness mode — the threaded driver
    /// never returns control mid-batch).
    pub(crate) fn pool_busy(&self) -> bool {
        self.pool.as_ref().is_some_and(|p| p.busy())
    }

    /// Match lanes of this worker (1 = inline matching).
    pub(crate) fn lane_count(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.lanes())
    }

    /// Whether `lane` was crashed by the harness.
    pub(crate) fn lane_crashed(&self, lane: usize) -> bool {
        self.pool.as_ref().is_some_and(|p| p.lane_crashed(lane))
    }

    /// Harness fault injection: permanently deschedule one helper lane
    /// (lane 0, the worker thread itself, is refused by the pool).
    pub(crate) fn crash_lane(&self, lane: usize) {
        if let Some(pool) = &self.pool {
            pool.crash_lane(lane);
        }
    }

    /// One harness scheduling quantum of match lane `lane`: pop / steal /
    /// execute / merge one unit, absorbing the batch's counters into the
    /// worker when its last unit lands. Returns whether the lane worked.
    pub(crate) fn step_lane(&mut self, lane: usize) -> bool {
        let Some(pool) = self.pool.clone() else {
            return false;
        };
        let Some(ctx) = self.lane_ctxs.get_mut(lane) else {
            return false;
        };
        let worked = pool.step_lane(lane, ctx) == LaneStep::Worked;
        if !pool.busy() {
            let totals = pool.take_totals();
            self.absorb(totals);
        }
        worked
    }

    /// Applies one protocol message to the worker state. Returns `false`
    /// when the message asks the worker to stop ([`NodeMessage::Shutdown`]).
    fn handle(&mut self, msg: NodeMessage) -> bool {
        self.messages_processed += 1;
        match msg {
            NodeMessage::RegisterFilter { filter, terms } => {
                let index = Arc::make_mut(&mut self.index);
                match terms {
                    None => index.insert_shared(filter),
                    Some(terms) => {
                        for t in terms {
                            index.insert_shared_for_term(Arc::clone(&filter), t);
                        }
                    }
                }
            }
            NodeMessage::UnregisterFilter { id, terms } => {
                let index = Arc::make_mut(&mut self.index);
                match terms {
                    None => {
                        index.remove(id);
                    }
                    Some(terms) => {
                        for t in terms {
                            index.remove_term_posting(id, t);
                        }
                    }
                }
            }
            NodeMessage::Subscribe {
                canonical,
                subscriber,
            } => {
                Arc::make_mut(&mut self.fanout).subscribe(canonical, subscriber);
            }
            NodeMessage::Unsubscribe {
                canonical,
                subscriber,
            } => {
                Arc::make_mut(&mut self.fanout).unsubscribe(canonical, subscriber);
            }
            NodeMessage::PublishDocument { batch } => {
                // The pool path skips [`FaultAction::Slow`] workers: the
                // injected per-task delay models a degraded machine, which
                // parallel lanes would mask — matching stays inline there.
                if self.pool.is_some() && self.slow.is_none() {
                    self.pool_batch(batch);
                } else {
                    for task in batch {
                        self.execute(task);
                    }
                }
            }
            NodeMessage::AllocationUpdate { index } => {
                self.index = index;
            }
            // Both rebalancing messages swap the serving shard exactly like
            // an allocation update; the layout version is the control
            // plane's bookkeeping, not the worker's.
            NodeMessage::InstallPartitions { index, fanout, .. } => {
                self.index = index;
                // The joiner missed every pre-admission Subscribe
                // broadcast; the control plane's snapshot is its baseline.
                self.fanout = fanout;
            }
            NodeMessage::RetirePartitions { index, .. } => {
                self.index = index;
            }
            NodeMessage::StatsReport { reply } => {
                let _ = reply.send(self.snapshot());
            }
            NodeMessage::Fault { action } => match action {
                FaultAction::Crash => {
                    self.crash();
                    return false;
                }
                FaultAction::Pause(d) => std::thread::sleep(d),
                FaultAction::Slow(d) => self.slow = Some(d),
            },
            NodeMessage::Ping { reply } => {
                let _ = reply.send(self.node);
            }
            NodeMessage::Shutdown => return false,
        }
        true
    }

    /// Fans a batch out over the match pool. In the threaded driver the
    /// worker participates as lane 0 and blocks until the batch completes;
    /// in harness mode the batch is only *begun* — the scheduler steps the
    /// lanes via [`Worker::step_lane`].
    fn pool_batch(&mut self, batch: Vec<DocTask>) {
        // The sole caller guards on `self.pool.is_some()`; matching inline
        // is the correct degraded behaviour if that invariant ever breaks.
        let Some(pool) = self.pool.as_ref().map(Arc::clone) else {
            debug_assert!(false, "pool path requires a pool");
            for task in batch {
                self.execute(task);
            }
            return;
        };
        // Cost-model fast path (threaded driver only): a batch too small
        // to feed every lane a target-sized unit is matched inline — the
        // serial loop and the pool produce byte-identical deliveries and
        // books, so only the scheduling overhead differs. The harness
        // always pools; it explores schedules, not throughput.
        if !self.external_lanes && pool.should_inline(&self.index, &batch) {
            for task in batch {
                self.execute(task);
            }
            return;
        }
        pool.begin_batch(&self.index, &self.fanout, batch);
        if self.external_lanes {
            return;
        }
        let mut ctx = LaneCtx::default();
        std::mem::swap(&mut ctx.scratch, &mut self.scratch);
        loop {
            match pool.step_lane(0, &mut ctx) {
                LaneStep::Worked => {}
                LaneStep::Idle => {
                    pool.wait_done();
                    break;
                }
            }
        }
        std::mem::swap(&mut ctx.scratch, &mut self.scratch);
        let totals = pool.take_totals();
        self.absorb(totals);
    }

    /// Folds a completed batch's pool counters into the worker's own, so
    /// snapshots and finals look exactly like the inline path's.
    fn absorb(&mut self, totals: BatchTotals) {
        self.doc_tasks += totals.doc_tasks;
        self.postings_scanned += totals.postings_scanned;
        self.delivered += totals.delivered;
        self.steals += totals.steals;
        self.lane_units += totals.units;
        for nanos in totals.latencies {
            self.latency.record(nanos);
        }
    }

    /// An injected crash: whatever is still queued dies with the worker.
    /// The doomed document tasks are counted (and their doc ids recorded)
    /// so the report can balance `dispatched == executed + lost`; control
    /// messages in the queue are simply destroyed — the supervisor's
    /// journal replay is what restores registrations.
    fn crash(&mut self) {
        while let Ok(msg) = self.mailbox.try_recv() {
            if let NodeMessage::PublishDocument { batch } = msg {
                self.tasks_lost += batch.len() as u64;
                self.lost_docs.extend(batch.iter().map(|t| t.doc.id()));
            }
        }
    }

    /// Consumes the worker into its final counters and histogram.
    pub(crate) fn finish(self) -> WorkerFinal {
        let metrics = self.snapshot();
        WorkerFinal {
            metrics,
            histogram: self.latency,
            lost_docs: self.lost_docs,
        }
    }

    fn execute(&mut self, task: DocTask) {
        if let Some(d) = self.slow {
            std::thread::sleep(d);
        }
        let out = &mut self.outcome;
        out.clear();
        match &task.task {
            // Forward steps never reach a worker (the router is the
            // forwarding table), but stay executable for completeness.
            MatchTask::Forward => {}
            MatchTask::Terms(terms) => {
                for &t in terms {
                    self.index.match_term_into(&task.doc, t, out);
                }
            }
            MatchTask::FullIndex => {
                self.index
                    .match_document_into(&task.doc, &mut self.scratch, out);
            }
        }
        self.postings_scanned += out.postings_scanned;
        let nanos = u64::try_from(task.dispatched.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.latency.record(nanos);
        self.doc_tasks += 1;
        if !out.matched.is_empty() {
            self.scratch.sort_dedup(&mut out.matched);
            // Delivery finalize: expand matched canonical ids to their
            // subscribers (identity for ids without a fan-out entry).
            let mut matched = Vec::with_capacity(out.matched.len());
            self.fanout.expand_into(&out.matched, &mut matched);
            self.scratch.sort_dedup(&mut matched);
            self.delivered += matched.len() as u64;
            let _ = self.deliveries.send(Delivery {
                doc: task.doc.id(),
                node: self.node,
                matched,
            });
        }
    }

    fn snapshot(&self) -> NodeMetrics {
        NodeMetrics {
            node: self.node,
            messages_processed: self.messages_processed,
            doc_tasks: self.doc_tasks,
            postings_scanned: self.postings_scanned,
            deliveries: self.delivered,
            queue_depth_hwm: self.queue_depth_hwm,
            tasks_lost: self.tasks_lost,
            steals: self.steals,
            lane_units: self.lane_units,
            latency: self.latency.summary(),
        }
    }
}
