//! Fault injection: seeded worker crash/pause/slow schedules for the live
//! engine.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s keyed on the router's
//! published-document counter: when document number `at_doc` has been
//! routed, the router injects the event's [`FaultAction`] into the target
//! worker's mailbox as a [`NodeMessage::Fault`](crate::NodeMessage)
//! control message. Because the injection travels through the same
//! [`Transport`](crate::engine::Transport) seam as every other message, it
//! is FIFO-ordered behind the work already queued for that worker — a
//! crash therefore lands *mid-drain*, exactly like a real process death,
//! and the same plan replays identically under the threaded engine and the
//! deterministic interleaving harness.

use move_types::NodeId;
use std::time::Duration;

/// What an injected fault does to the worker that dequeues it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The worker counts its remaining queued document tasks as lost and
    /// exits immediately, dropping its mailbox — subsequent sends fail,
    /// which is how the supervisor detects the death.
    Crash,
    /// The worker stalls for the given duration before handling its next
    /// message (a GC pause / network partition stand-in). Threaded driver
    /// only: the interleaving harness models delays with schedule steps.
    Pause(Duration),
    /// The worker sleeps this long before *every* subsequent match task —
    /// a degraded-but-alive node that exercises backpressure, not
    /// supervision.
    Slow(Duration),
}

/// One scheduled fault: inject `action` into `node`'s mailbox once the
/// router has published `at_doc` documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The worker to fault.
    pub node: NodeId,
    /// Fires when the router's published-document count reaches this value.
    pub at_doc: u64,
    /// What happens to the worker.
    pub action: FaultAction,
}

/// A seeded, deterministic schedule of worker faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The scheduled events, sorted by [`FaultEvent::at_doc`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults (what [`Engine::start`](crate::Engine)
    /// uses).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builds a plan from explicit events (sorted by trigger point).
    #[must_use]
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_doc);
        Self { events }
    }

    /// The paper's §VI failure regime: crash `fraction` of the `nodes`
    /// workers, chosen by `seed`, starting once `at_doc` documents have
    /// been published (one crash per subsequent document, so the deaths
    /// are staggered mid-run rather than simultaneous).
    #[must_use]
    pub fn kill_fraction(nodes: usize, fraction: f64, at_doc: u64, seed: u64) -> Self {
        let victims = ((nodes as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut order: Vec<usize> = (0..nodes).collect();
        // Seeded Fisher–Yates over the node ids; xorshift64* keeps the
        // plan reproducible without pulling a full RNG into this crate.
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let events = order
            .into_iter()
            .take(victims)
            .enumerate()
            .map(|(k, n)| FaultEvent {
                node: NodeId(n as u32),
                at_doc: at_doc + k as u64,
                action: FaultAction::Crash,
            })
            .collect();
        Self::from_events(events)
    }

    /// The node ids this plan crashes (deduplicated, sorted).
    #[must_use]
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Crash))
            .map(|e| e.node)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_fraction_is_seeded_and_sized() {
        let a = FaultPlan::kill_fraction(20, 0.3, 50, 7);
        let b = FaultPlan::kill_fraction(20, 0.3, 50, 7);
        assert_eq!(a.events, b.events, "same seed, same plan");
        assert_eq!(a.crashed_nodes().len(), 6, "30% of 20 nodes");
        assert!(a.events.windows(2).all(|w| w[0].at_doc <= w[1].at_doc));
        let c = FaultPlan::kill_fraction(20, 0.3, 50, 8);
        assert_ne!(a.events, c.events, "different seed, different victims");
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::kill_fraction(10, 0.0, 0, 1).is_empty());
    }
}
