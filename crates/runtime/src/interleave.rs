//! Deterministic schedule-permutation harness for the engine.
//!
//! The production engine runs the router and every node worker on separate
//! OS threads, so the interleaving of router sends and worker receives is
//! chosen by the OS scheduler — unrepeatable and untestable. This module
//! runs the **same** [`Router`](crate::engine) and
//! [`Worker`](crate::worker) code single-threaded, with an explicit,
//! seeded scheduler choosing at every step which component advances by one
//! message. Each seed is one reproducible interleaving; sweeping seeds
//! explores the schedule space (shutdown racing a publish, an allocation
//! refresh landing mid-drain, a crash landing mid-batch, a failover racing
//! the dead node's return) and checks the engine's ordering guarantees on
//! every one.
//!
//! Since PR 3 the script can also inject faults: [`ScriptOp::Crash`] kills
//! a worker through the same [`NodeMessage::Fault`](crate::NodeMessage)
//! path the threaded engine's [`FaultPlan`](crate::FaultPlan) uses,
//! [`ScriptOp::Restart`] brings a crashed node back through the
//! supervisor's journal replay, and [`ScriptOp::Delay`] holds a worker's
//! scheduling for a number of steps (the deterministic analog of
//! [`FaultAction::Slow`]).
//!
//! # Fidelity
//!
//! The harness reuses the router's decision logic verbatim via the
//! [`Transport`] seam, with two deliberate simplifications:
//!
//! * **Command atomicity.** One scripted operation (a publish or a
//!   registration) runs to completion before any worker is stepped. Real
//!   workers can interleave with the middle of a command, but since each
//!   mailbox is FIFO and workers share no state, any such interleaving
//!   produces the same per-mailbox message sequences as some command-atomic
//!   schedule — command atomicity loses no observable outcomes.
//! * **Virtual capacity.** Mailboxes are physically unbounded; the
//!   configured capacity is enforced by the *scheduler*, which refuses to
//!   advance the router under [`OverflowPolicy::Block`] while any live
//!   mailbox is at or over capacity (a real router would block inside the
//!   full mailbox's `send`). Because one command may enqueue a couple of
//!   messages per node, a mailbox can transiently overshoot the capacity
//!   by the fan-out of a single command — equivalent to a real mailbox a
//!   few slots larger, and irrelevant to the ordering properties checked
//!   here. Under [`OverflowPolicy::Shed`] the shed decision is made
//!   per-batch against the current queue length, exactly like the real
//!   `try_send`.
//!
//! One fault-mode divergence from the threaded engine is *tighter*, not
//! looser: a crash and the resulting mailbox disconnect happen in a single
//! scheduler step, so the threaded engine's send-vs-receiver-drop race
//! (a batch that arrives between the crash drain and the channel teardown)
//! does not exist here and the books balance exactly —
//! `dispatched == executed + lost` is asserted, not approximated.
//!
//! # Examples
//!
//! ```
//! use move_core::{IlScheme, SystemConfig};
//! use move_runtime::interleave::{run_schedule, InterleaveConfig, ScriptOp};
//! use move_types::{Document, Filter, TermId};
//!
//! let scheme = Box::new(IlScheme::new(SystemConfig::small_test()).unwrap());
//! let script = vec![
//!     ScriptOp::Register(Filter::new(1u64, [TermId(3)])),
//!     ScriptOp::Publish(Document::from_distinct_terms(1u64, [TermId(3)])),
//! ];
//! let out = run_schedule(scheme, script, &InterleaveConfig::default()).unwrap();
//! let matched = &out.delivered[&move_types::DocId(1)];
//! assert!(matched.contains(&move_types::FilterId(1)));
//! ```

use crossbeam::channel::{unbounded, Sender};
use move_core::Dissemination;
use move_index::{FanoutTable, InvertedIndex};
use move_types::{DocId, Document, Filter, FilterId, MoveError, NodeId, Result};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crate::config::{OverflowPolicy, RuntimeConfig};
use crate::engine::{BatchOutcome, Command, Router, Transport};
use crate::fault::FaultAction;
use crate::message::{Delivery, NodeMessage};
use crate::metrics::RuntimeReport;
use crate::supervisor::SupervisionPolicy;
use crate::worker::{Worker, WorkerStep};

/// Tuning knobs of one harness run.
#[derive(Debug, Clone)]
pub struct InterleaveConfig {
    /// Seed of the scheduling RNG: same seed, same schedule, bit for bit.
    pub seed: u64,
    /// Virtual mailbox capacity (messages) enforced by the scheduler.
    pub mailbox_capacity: usize,
    /// Behaviour when a mailbox is at capacity.
    pub overflow: OverflowPolicy,
    /// Documents per node accumulated before a batch is sent (same knob as
    /// [`RuntimeConfig::batch_size`]). The harness always pins
    /// [`BatchPolicy::Fixed`](crate::BatchPolicy) — the adaptive
    /// controller's wall-clock feedback would make schedules
    /// nondeterministic.
    pub batch_size: usize,
    /// Match lanes per worker (same knob as
    /// [`RuntimeConfig::match_lanes`]). With more than one lane the
    /// workers' pool steps — pop, steal, merge, finalize — become
    /// schedulable actions of their own, so seeds explore steal orders and
    /// merge orders as well as message orders.
    pub match_lanes: usize,
    /// Per-unit scan-cost target of the lane planner (same knob as
    /// [`RuntimeConfig::lane_cost_target`]). The harness default is 1 —
    /// one unit per term group or task item — so the tiny workloads of
    /// interleaving schedules still produce several stealable units and
    /// the seeds keep exploring steal and merge orders.
    pub lane_cost_target: usize,
    /// What the router does when a send finds a crashed worker (same knob
    /// as [`RuntimeConfig::supervision`]). The default uses
    /// [`Duration::ZERO`] backoff — retries cost schedule steps, not
    /// wall-clock time.
    pub supervision: SupervisionPolicy,
}

impl Default for InterleaveConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            batch_size: 1,
            match_lanes: 1,
            lane_cost_target: 1,
            supervision: SupervisionPolicy {
                restart: true,
                max_retries: 3,
                backoff: Duration::ZERO,
            },
        }
    }
}

/// One operation of the publisher script, applied by the router in script
/// order (the router channel is FIFO; the schedule only varies *when* the
/// workers observe the consequences).
#[derive(Debug, Clone)]
pub enum ScriptOp {
    /// Register a filter through the control plane.
    Register(Filter),
    /// Unregister a subscriber through the control plane.
    Unregister(FilterId),
    /// Publish a document through the data plane.
    Publish(Document),
    /// Enqueue a crash fault in the node's mailbox (FIFO behind queued
    /// work, so the death lands mid-drain). No-op on an already-dead node.
    Crash(NodeId),
    /// Restart a crashed node from its registration journal and readmit it
    /// to the membership — the "failed node returns" transition of the
    /// paper's §VI. No-op when the node is alive.
    Restart(NodeId),
    /// Suspend the node's scheduling for the next `steps` scheduler steps
    /// — the deterministic analog of [`FaultAction::Slow`].
    Delay {
        /// The worker to suspend.
        node: NodeId,
        /// How many scheduler steps it stays unschedulable.
        steps: u64,
    },
    /// Pin the router's routing snapshot for the next `docs` published
    /// documents: registrations landing meanwhile are placed on the workers
    /// but do **not** refresh the snapshot until the pin expires — the
    /// deterministic model of an ingest thread still routing on a stale
    /// [`RoutingView`](move_core::RoutingView) epoch while the control
    /// plane has already advanced. Allocation refreshes and membership
    /// changes clear the pin early (the real pool fences around those).
    PinView {
        /// How many more published documents route on the stale snapshot.
        docs: u64,
    },
    /// Stage a node join: spawn the joining worker, stream it the
    /// re-homed filter partitions, and publish the handover
    /// (double-routing) view — phase 1 of [`crate::rebalance`]. The
    /// script ops between this and the matching [`ScriptOp::CommitJoin`]
    /// run inside the handover window.
    Join,
    /// Commit the staged join: retire the moved partitions' old copies
    /// and publish the committed view. Refused (and swallowed) when no
    /// join is staged or the joining node crashed mid-window — the
    /// handover view keeps serving, exactly like the threaded engine.
    CommitJoin,
    /// Permanently deschedule one of a worker's match lanes mid-run — the
    /// deterministic model of a helper lane thread dying. The crashed
    /// lane's queued units stay stealable, so in-flight batches still
    /// complete exactly; lane 0 (the worker thread itself) is refused.
    /// No-op with [`InterleaveConfig::match_lanes`] of 1.
    CrashLane {
        /// The worker whose lane dies.
        node: NodeId,
        /// The lane index (`1..match_lanes`; 0 is refused).
        lane: usize,
    },
}

/// What one scheduled run produced.
#[derive(Debug, Clone)]
pub struct InterleaveReport {
    /// The engine's merged report, identical in shape to what
    /// [`Engine::shutdown`](crate::Engine::shutdown) returns.
    pub report: RuntimeReport,
    /// Union of matched filters per document across all nodes — the
    /// quantity the equivalence oracle predicts.
    pub delivered: BTreeMap<DocId, BTreeSet<FilterId>>,
    /// Documents that had at least one batch shed (only non-empty under
    /// [`OverflowPolicy::Shed`]). A shed doc may still appear in
    /// `delivered` with a subset of its matches: shedding is per
    /// node-batch, not per document.
    pub shed_docs: BTreeSet<DocId>,
    /// Documents that lost at least one task to a crash: destroyed in a
    /// dead worker's queue, or re-routed and finding no live replica. The
    /// at-most-once allowance of the fault-mode delivery oracle: a doc in
    /// here may be missing (some of) its matches; a doc outside `lost_docs
    /// ∪ shed_docs` must be delivered exactly.
    pub lost_docs: BTreeSet<DocId>,
    /// Scheduler steps taken (router commands + worker messages handled).
    pub steps: u64,
}

/// The shared worker table: the scheduler steps the workers, while the
/// transport's `restart` replaces dead entries — single-threaded, so a
/// `RefCell` arbitrates (borrows are scoped to one action each).
type WorkerTable = Rc<RefCell<Vec<Option<Worker>>>>;

/// The harness transport: physically unbounded mailboxes (capacity is the
/// scheduler's job, see the module docs) plus shed bookkeeping and the
/// restart hook.
struct SimTransport {
    // xtask:allow-unbounded — capacity is virtual, enforced by the
    // scheduler; a bounded channel would block the single harness thread.
    mailboxes: Vec<Sender<NodeMessage>>,
    workers: WorkerTable,
    delivery_tx: Sender<Delivery>,
    capacity: usize,
    overflow: OverflowPolicy,
    /// Match lanes per worker, applied to restarted and joined workers too.
    lanes: usize,
    /// Lane planner cost target, applied with `lanes`.
    cost_target: usize,
    shed_docs: BTreeSet<DocId>,
}

impl SimTransport {
    fn queue_len(&self, n: usize) -> usize {
        self.mailboxes[n].len()
    }

    /// Whether any mailbox is at or over the virtual capacity — the state
    /// in which a real router under [`OverflowPolicy::Block`] could be
    /// blocked inside a send. (A crashed worker's mailbox is empty — the
    /// crash drains it — so dead nodes never wedge this check.)
    fn at_capacity(&self) -> bool {
        self.mailboxes.iter().any(|m| m.len() >= self.capacity)
    }
}

impl Transport for SimTransport {
    fn nodes(&self) -> usize {
        self.mailboxes.len()
    }

    fn control(&mut self, n: usize, msg: NodeMessage) -> bool {
        self.mailboxes[n].send(msg).is_ok()
    }

    fn batch(&mut self, n: usize, msg: NodeMessage) -> BatchOutcome {
        if matches!(self.overflow, OverflowPolicy::Shed) && self.queue_len(n) >= self.capacity {
            if let NodeMessage::PublishDocument { batch } = &msg {
                for task in batch {
                    self.shed_docs.insert(task.doc.id());
                }
            }
            return BatchOutcome::Shed;
        }
        match self.mailboxes[n].send(msg) {
            Ok(()) => BatchOutcome::Delivered,
            Err(e) => crate::engine::reclaim(e.0),
        }
    }

    fn restart(&mut self, n: usize, index: Arc<InvertedIndex>, fanout: Arc<FanoutTable>) -> bool {
        // xtask:allow-unbounded — virtual capacity, same as the boot-time
        // mailboxes.
        let (tx, rx) = unbounded();
        let worker = Worker::with_lanes(
            NodeId(n as u32),
            index,
            fanout,
            rx,
            self.delivery_tx.clone(),
            self.lanes,
            self.cost_target,
            true,
        );
        self.workers.borrow_mut()[n] = Some(worker);
        self.mailboxes[n] = tx;
        true
    }

    fn join(&mut self, index: Arc<InvertedIndex>, fanout: Arc<FanoutTable>) -> bool {
        // xtask:allow-unbounded — virtual capacity, same as the boot-time
        // mailboxes.
        let (tx, rx) = unbounded();
        let n = self.mailboxes.len();
        let worker = Worker::with_lanes(
            NodeId(n as u32),
            index,
            fanout,
            rx,
            self.delivery_tx.clone(),
            self.lanes,
            self.cost_target,
            true,
        );
        self.workers.borrow_mut().push(Some(worker));
        self.mailboxes.push(tx);
        true
    }
}

/// The scheduler's choice set: advance the router by one command, one
/// worker by one mailbox message, or one match lane by one pool step
/// (pop / steal / execute / merge one unit).
#[derive(Debug, Clone, Copy)]
enum Action {
    Router,
    Worker(usize),
    /// `(node, lane)` — only offered while that node's pool has a batch in
    /// flight.
    Lane(usize, usize),
}

/// `xorshift64*` — deterministic, seedable, and good enough to pick
/// scheduling actions uniformly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // The all-zero state is a fixed point of xorshift; remap it.
        Self(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Runs `script` against `scheme` under one seeded schedule, then performs
/// the engine's graceful shutdown (flush + drain) and returns everything
/// observable.
///
/// The run is fully deterministic given `(scheme state, script, config)` —
/// schemes with internal randomness (MOVE's row choice, RS's replica-group
/// choice) should be built from a seeded [`SystemConfig`]
/// (`move_core::SystemConfig`) for reproducibility.
///
/// # Errors
///
/// * Control-plane errors from the scheme (registration or allocation
///   failures) propagate as-is.
/// * A schedule in which no component can advance while work remains — a
///   genuine deadlock of the engine's message protocol — is reported as
///   [`MoveError::Internal`], as is exceeding the step budget (a livelock
///   guard; the budget is proportional to the script's maximum fan-out and
///   unreachable by any correct run).
pub fn run_schedule(
    scheme: Box<dyn Dissemination + Send>,
    script: Vec<ScriptOp>,
    config: &InterleaveConfig,
) -> Result<InterleaveReport> {
    let nodes = scheme.cluster().len();
    let lanes = config.match_lanes.max(1);
    let cost_target = config.lane_cost_target.max(1);
    // xtask:allow-unbounded — drained only after the run; bounding it
    // would deadlock the single harness thread.
    let (delivery_tx, delivery_rx) = unbounded();
    let fanout = scheme.fanout_table();
    let mut mailboxes = Vec::with_capacity(nodes);
    let mut table: Vec<Option<Worker>> = Vec::with_capacity(nodes);
    let mut bases = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let node = NodeId(i as u32);
        let index = scheme.shared_node_index(node);
        bases.push(Arc::clone(&index));
        // xtask:allow-unbounded — virtual capacity, see SimTransport.
        let (tx, rx) = unbounded();
        table.push(Some(Worker::with_lanes(
            node,
            index,
            Arc::clone(&fanout),
            rx,
            delivery_tx.clone(),
            lanes,
            cost_target,
            true,
        )));
        mailboxes.push(tx);
    }
    let workers: WorkerTable = Rc::new(RefCell::new(table));

    let transport = SimTransport {
        mailboxes,
        workers: Rc::clone(&workers),
        delivery_tx,
        capacity: config.mailbox_capacity.max(1),
        overflow: config.overflow,
        lanes,
        cost_target,
        shed_docs: BTreeSet::new(),
    };
    let runtime_config = RuntimeConfig {
        mailbox_capacity: config.mailbox_capacity.max(1),
        command_capacity: 1, // unused: the script stands in for the channel
        overflow: config.overflow,
        batch_size: config.batch_size.max(1),
        // The adaptive controller reads wall clocks; pin it off so the
        // schedule (and everything derived from it) is a pure function of
        // the seed.
        batch_policy: crate::config::BatchPolicy::Fixed,
        flush_interval: Duration::from_millis(1), // unused: no idle loop
        supervision: config.supervision,
        publishers: 1, // the harness drives the serial router directly
        match_lanes: lanes,
        lane_cost_target: cost_target,
    };
    let plan = crate::fault::FaultPlan::none();
    let mut router = Router::new(scheme, runtime_config, transport, plan, bases);

    let fault_ops = script
        .iter()
        .filter(|op| {
            matches!(
                op,
                ScriptOp::Crash(_)
                    | ScriptOp::Restart(_)
                    | ScriptOp::Delay { .. }
                    | ScriptOp::Join
                    | ScriptOp::CommitJoin
                    | ScriptOp::CrashLane { .. }
            )
        })
        .count() as u64;
    let join_ops = script
        .iter()
        .filter(|op| matches!(op, ScriptOp::Join))
        .count();
    let mut script: VecDeque<ScriptOp> = script.into();
    // Each script op enqueues at most ~2 messages per node (a batch plus an
    // allocation update), shutdown adds one per node, and every message is
    // handled in one step — so any correct run is far below this budget.
    // Fault ops multiply it: each restart replays the full since-journal,
    // and each delay parks a worker for a stretch of steps. Joins grow the
    // cluster, so the per-node fan-out is sized at the maximum node count.
    let max_nodes = (nodes + join_ops) as u64;
    // With match lanes, each batch message expands into several pool-unit
    // steps (cost-packed term groups or task items; at most one unit per
    // term occurrence), so the budget scales with the lane count too.
    let budget = ((script.len() as u64 + 2) * (2 * max_nodes + 4) * 4 + 1000)
        * (1 + fault_ops)
        * (1 + lanes as u64);
    let mut rng = Rng::new(config.seed);
    let mut shutdown_sent = false;
    let mut finals = Vec::with_capacity(nodes);
    let mut delays: Vec<u64> = vec![0; nodes];
    let mut steps: u64 = 0;
    let mut actions: Vec<Action> = Vec::with_capacity(nodes + 1);

    loop {
        if shutdown_sent && workers.borrow().iter().all(Option::is_none) {
            break; // graceful termination: every worker drained and stopped
        }
        // A staged join may have grown the cluster since last step.
        if delays.len() < router.transport.nodes() {
            delays.resize(router.transport.nodes(), 0);
        }
        actions.clear();
        // The router may advance unless a Block-policy send could be
        // blocked on a full mailbox right now.
        let router_blocked =
            matches!(config.overflow, OverflowPolicy::Block) && router.transport.at_capacity();
        if !shutdown_sent && !router_blocked {
            actions.push(Action::Router);
        }
        for (i, w) in workers.borrow().iter().enumerate() {
            let Some(w) = w else { continue };
            if delays[i] != 0 {
                continue;
            }
            if w.pool_busy() {
                // A batch is in flight: the worker completes it before its
                // next receive (the threaded driver blocks inside the pool
                // here), so the mailbox action is suppressed and the
                // individual lane steps become the schedulable actions.
                for lane in 0..w.lane_count() {
                    if !w.lane_crashed(lane) {
                        actions.push(Action::Lane(i, lane));
                    }
                }
            } else if router.transport.queue_len(i) > 0 {
                actions.push(Action::Worker(i));
            }
        }
        if actions.is_empty() {
            if delays.iter().any(|&d| d > 0) {
                // Every runnable component is parked behind a Delay: time
                // passes (one step), the delays tick down, and scheduling
                // resumes — a stall, not a deadlock.
                steps += 1;
                if steps > budget {
                    return Err(MoveError::Internal(format!(
                        "interleaving livelock: step budget {budget} exceeded (seed {seed})",
                        seed = config.seed
                    )));
                }
                for d in &mut delays {
                    *d = d.saturating_sub(1);
                }
                continue;
            }
            // Work remains but nothing can advance: the message protocol
            // deadlocked (e.g. a lost shutdown would strand a worker here).
            return Err(MoveError::Internal(format!(
                "interleaving deadlock at step {steps}: no enabled actions \
                 (seed {seed})",
                seed = config.seed
            )));
        }
        steps += 1;
        if steps > budget {
            return Err(MoveError::Internal(format!(
                "interleaving livelock: step budget {budget} exceeded (seed {seed})",
                seed = config.seed
            )));
        }
        for d in &mut delays {
            *d = d.saturating_sub(1);
        }
        match actions[rng.below(actions.len())] {
            Action::Router => match script.pop_front() {
                Some(ScriptOp::Register(f)) => {
                    router.handle_command(Command::Register(f))?;
                }
                Some(ScriptOp::Unregister(id)) => {
                    router.handle_command(Command::Unregister(id))?;
                }
                Some(ScriptOp::Publish(d)) => {
                    router.handle_command(Command::Publish(Box::new(d)))?;
                }
                Some(ScriptOp::Crash(n)) => {
                    router.fault(n.as_usize(), FaultAction::Crash);
                }
                Some(ScriptOp::Restart(n)) => {
                    let dead = workers.borrow()[n.as_usize()].is_none();
                    if dead {
                        // The transport always accepts restarts here, so
                        // revive cannot fail; the guard keeps a Restart on
                        // a live node from clobbering its counters.
                        let _ = router.revive(n.as_usize());
                    }
                }
                Some(ScriptOp::Delay { node, steps: s }) => {
                    let n = node.as_usize();
                    delays[n] = delays[n].max(s);
                }
                Some(ScriptOp::PinView { docs }) => {
                    router.pin_view(docs);
                }
                Some(ScriptOp::Join) => {
                    router.begin_join()?;
                }
                Some(ScriptOp::CommitJoin) => {
                    // Refused when the joiner crashed mid-window (old
                    // copies stay, the handover view keeps serving) or
                    // when no join is staged — both are legal schedules,
                    // so the refusal is swallowed, not propagated.
                    let _ = router.commit_join();
                }
                Some(ScriptOp::CrashLane { node, lane }) => {
                    // The pool refuses lane 0 and out-of-range lanes; a
                    // crash on an already-dead worker is a no-op too.
                    if let Some(w) = workers.borrow()[node.as_usize()].as_ref() {
                        w.crash_lane(lane);
                    }
                }
                None => {
                    router.shutdown_workers();
                    shutdown_sent = true;
                }
            },
            Action::Worker(i) => {
                let stepped = match workers.borrow_mut()[i].as_mut() {
                    Some(w) => w.try_step(),
                    None => WorkerStep::Empty,
                };
                if matches!(stepped, WorkerStep::Stopped) {
                    if let Some(w) = workers.borrow_mut()[i].take() {
                        finals.push(w.finish());
                    }
                }
            }
            Action::Lane(i, lane) => {
                if let Some(w) = workers.borrow_mut()[i].as_mut() {
                    // A step on a live lane of a busy pool always finds a
                    // unit (pop or steal) — the return value only matters
                    // for the threaded helper loop.
                    let _ = w.step_lane(lane);
                }
            }
        }
    }

    let shed_docs = std::mem::take(&mut router.transport.shed_docs);
    let report = router.into_report(finals);
    let lost_docs: BTreeSet<DocId> = report.lost_docs.iter().copied().collect();
    let mut delivered: BTreeMap<DocId, BTreeSet<FilterId>> = BTreeMap::new();
    for d in delivery_rx.try_iter() {
        delivered.entry(d.doc).or_default().extend(d.matched);
    }
    Ok(InterleaveReport {
        report,
        delivered,
        shed_docs,
        lost_docs,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_core::{IlScheme, SystemConfig};
    use move_types::TermId;

    fn small_scheme() -> Box<dyn Dissemination + Send> {
        Box::new(IlScheme::new(SystemConfig::small_test()).unwrap())
    }

    fn small_script() -> Vec<ScriptOp> {
        vec![
            ScriptOp::Register(Filter::new(1u64, [TermId(3), TermId(5)])),
            ScriptOp::Register(Filter::new(2u64, [TermId(4)])),
            ScriptOp::Publish(Document::from_distinct_terms(1u64, [TermId(3)])),
            ScriptOp::Publish(Document::from_distinct_terms(2u64, [TermId(4), TermId(5)])),
        ]
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = InterleaveConfig {
            seed: 42,
            ..InterleaveConfig::default()
        };
        let a = run_schedule(small_scheme(), small_script(), &cfg).unwrap();
        let b = run_schedule(small_scheme(), small_script(), &cfg).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn different_seeds_same_deliveries() {
        let mut outcomes = Vec::new();
        for seed in 0..16 {
            let cfg = InterleaveConfig {
                seed,
                ..InterleaveConfig::default()
            };
            let out = run_schedule(small_scheme(), small_script(), &cfg).unwrap();
            assert!(out.shed_docs.is_empty(), "Block policy must not shed");
            assert!(out.lost_docs.is_empty(), "no faults, nothing lost");
            outcomes.push(out.delivered);
        }
        for w in outcomes.windows(2) {
            assert_eq!(w[0], w[1], "delivery set must be schedule-independent");
        }
    }

    #[test]
    fn empty_script_shuts_down_cleanly() {
        let out = run_schedule(small_scheme(), Vec::new(), &InterleaveConfig::default()).unwrap();
        assert!(out.delivered.is_empty());
        assert_eq!(out.report.docs_published, 0);
    }

    #[test]
    fn shed_policy_accounts_for_every_task() {
        let cfg = InterleaveConfig {
            seed: 7,
            mailbox_capacity: 1,
            overflow: OverflowPolicy::Shed,
            batch_size: 1,
            ..InterleaveConfig::default()
        };
        let mut script = vec![ScriptOp::Register(Filter::new(1u64, [TermId(3)]))];
        for i in 0..50u64 {
            script.push(ScriptOp::Publish(Document::from_distinct_terms(
                i,
                [TermId(3)],
            )));
        }
        let out = run_schedule(small_scheme(), script, &cfg).unwrap();
        assert_eq!(out.report.docs_published, 50);
        let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
        assert_eq!(out.report.tasks_dispatched, executed);
    }

    #[test]
    fn lanes_deliver_the_serial_outcome_on_every_seed() {
        let serial = run_schedule(small_scheme(), small_script(), &InterleaveConfig::default())
            .unwrap()
            .delivered;
        for seed in 0..32u64 {
            let cfg = InterleaveConfig {
                seed,
                match_lanes: 3,
                batch_size: 2,
                ..InterleaveConfig::default()
            };
            let out = run_schedule(small_scheme(), small_script(), &cfg).unwrap();
            assert_eq!(
                out.delivered, serial,
                "seed {seed}: lanes changed deliveries"
            );
            assert!(out.lost_docs.is_empty());
        }
    }

    #[test]
    fn a_crashed_lane_never_loses_a_batch() {
        for seed in 0..32u64 {
            let cfg = InterleaveConfig {
                seed,
                match_lanes: 4,
                batch_size: 4,
                ..InterleaveConfig::default()
            };
            let mut script = vec![ScriptOp::Register(Filter::new(1u64, [TermId(3)]))];
            for i in 0..8u64 {
                script.push(ScriptOp::Publish(Document::from_distinct_terms(
                    i,
                    [TermId(3)],
                )));
                if i == 3 {
                    // Lands mid-stream: depending on the seed the lane dies
                    // before, during, or after a batch is in flight.
                    script.push(ScriptOp::CrashLane {
                        node: NodeId(0),
                        lane: 2,
                    });
                }
            }
            let out = run_schedule(small_scheme(), script, &cfg).unwrap();
            assert_eq!(out.report.docs_published, 8, "seed {seed}");
            assert_eq!(out.delivered.len(), 8, "seed {seed}: every doc must match");
            let executed: u64 = out.report.nodes.iter().map(|n| n.doc_tasks).sum();
            assert_eq!(out.report.tasks_dispatched, executed, "seed {seed}");
        }
    }

    #[test]
    fn crash_then_restart_recovers_registrations() {
        // Crash the worker hosting the filter, restart it, and publish:
        // the journal replay must restore the filter so the doc matches.
        let filter = Filter::new(1u64, [TermId(3)]);
        let home = small_scheme().registration_targets(&filter)[0].0;
        for seed in 0..24u64 {
            let cfg = InterleaveConfig {
                seed,
                ..InterleaveConfig::default()
            };
            let script = vec![
                ScriptOp::Register(filter.clone()),
                ScriptOp::Crash(home),
                ScriptOp::Restart(home),
                ScriptOp::Publish(Document::from_distinct_terms(1u64, [TermId(3)])),
            ];
            let out = run_schedule(small_scheme(), script, &cfg).unwrap();
            // At-most-once: if the schedule let the crash land after the
            // publish reached the mailbox (the Restart op no-ops on a
            // not-yet-dead worker), the doc dies in the drained queue and
            // must be reported lost; otherwise the journal replay must
            // restore the filter and the doc must match it exactly.
            let expected = BTreeSet::from([FilterId(1)]);
            match out.delivered.get(&DocId(1)) {
                Some(got) => assert_eq!(got, &expected, "seed {seed}: wrong match set"),
                None => assert!(
                    out.lost_docs.contains(&DocId(1)),
                    "seed {seed}: undelivered doc must be reported lost"
                ),
            }
            assert!(
                out.report.restarts >= 1 || out.lost_docs.contains(&DocId(1)),
                "seed {seed}: either the restart happened or the doc was lost"
            );
        }
    }
}
