//! The typed messages of the engine's two channel layers.

use crossbeam::channel::Sender;
use move_core::MatchTask;
use move_index::{FanoutTable, InvertedIndex};
use move_types::{DocId, Document, Filter, FilterId, NodeId, TermId};
use std::sync::Arc;
use std::time::Instant;

use crate::fault::FaultAction;
use crate::metrics::NodeMetrics;

/// One unit of matching work for a node: a document plus the task the
/// routing plan assigned to this node, stamped with its dispatch time so
/// the worker can measure wall-clock match latency (queueing included).
#[derive(Debug, Clone)]
pub struct DocTask {
    /// The published document (shared, not copied, between workers).
    pub doc: Arc<Document>,
    /// What to do with it (same [`MatchTask`] the simulator executes).
    pub task: MatchTask,
    /// When the router dispatched this task.
    pub dispatched: Instant,
}

/// A message in a node worker's mailbox.
#[derive(Debug)]
pub enum NodeMessage {
    /// Install serving copies of a filter: under the given routing terms
    /// (inverted-list registration), or into the full local index when
    /// `terms` is `None` (RS replica registration).
    RegisterFilter {
        /// The filter body — one shared allocation across every node and
        /// routing term the registration fans out to.
        filter: Arc<Filter>,
        /// Routing terms to index it under, or `None` for a full insert.
        terms: Option<Vec<TermId>>,
    },
    /// Drop serving copies of a canonical filter: its posting entries
    /// under the given routing terms, or the full body when `terms` is
    /// `None` (RS replica removal). The inverse of
    /// [`NodeMessage::RegisterFilter`], sent when a canonical's last
    /// subscriber unregisters.
    UnregisterFilter {
        /// The canonical filter to drop.
        id: FilterId,
        /// Routing terms to remove it under, or `None` for a full removal.
        terms: Option<Vec<TermId>>,
    },
    /// Add a subscriber to a canonical's fan-out set (DESIGN.md §12).
    /// Broadcast to every worker so delivery expansion is layout-
    /// independent; a canonical hit ships *only* this message — the
    /// aggregation win.
    Subscribe {
        /// The canonical predicate subscribed to.
        canonical: FilterId,
        /// The subscriber joining it.
        subscriber: FilterId,
    },
    /// Remove a subscriber from a canonical's fan-out set. Broadcast like
    /// [`NodeMessage::Subscribe`].
    Unsubscribe {
        /// The canonical predicate left.
        canonical: FilterId,
        /// The departing subscriber.
        subscriber: FilterId,
    },
    /// A batch of documents to match.
    PublishDocument {
        /// The batched tasks, in dispatch order.
        batch: Vec<DocTask>,
    },
    /// Replace the worker's index shard — sent after the control plane's
    /// allocation refresh rebuilt the filter layout.
    AllocationUpdate {
        /// The node's new serving shard — a structural share of the control
        /// plane's copy, not a deep clone; the worker copies-on-write only
        /// if it later mutates.
        index: Arc<InvertedIndex>,
    },
    /// Reply with a snapshot of the worker's metrics. Doubles as a barrier:
    /// the reply proves every earlier message in this mailbox was handled.
    StatsReport {
        /// Where to send the snapshot.
        reply: Sender<NodeMetrics>,
    },
    /// An injected fault from a [`FaultPlan`](crate::FaultPlan): crash,
    /// pause, or slow the worker (see [`FaultAction`]). FIFO-ordered
    /// behind queued work like every other message, so a crash lands
    /// mid-drain.
    Fault {
        /// What happens to the worker.
        action: FaultAction,
    },
    /// Supervisor heartbeat: reply with the worker's node id. A failed
    /// *send* of this probe is how the idle-loop supervisor detects a
    /// death it has no pending batch to trip over.
    Ping {
        /// Where to send the liveness acknowledgement.
        reply: Sender<NodeId>,
    },
    /// Rebalancing hand-off to a **joining** worker: install the filter
    /// partitions the staged layout re-homed onto this node. Sent as the
    /// joiner's first mailbox message, so it is FIFO-ordered ahead of any
    /// document routed under the handover view.
    InstallPartitions {
        /// The joiner's serving shard, already populated with the moved
        /// partitions — a structural share of the control plane's copy.
        index: Arc<InvertedIndex>,
        /// The control plane's canonical→subscribers table at admission —
        /// the joiner missed every earlier subscription broadcast.
        fanout: Arc<FanoutTable>,
        /// The staged layout version this shard serves.
        layout_version: u64,
    },
    /// Rebalancing retirement at an **old home**: replace the shard with
    /// one that no longer carries the partitions moved to the joiner. Sent
    /// after the commit fence, so every document double-routed during the
    /// handover window was matched against the pre-retirement shard first.
    RetirePartitions {
        /// The node's post-retirement serving shard.
        index: Arc<InvertedIndex>,
        /// The committed layout version this shard serves.
        layout_version: u64,
    },
    /// Finish the remaining mailbox (it is drained, not dropped) and exit.
    Shutdown,
}

/// A delivery produced by a worker: the filters of one node matched by one
/// document. Replicated layouts may deliver the same filter from several
/// nodes; consumers union per document, exactly like the simulator's
/// sort+dedup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The matched document.
    pub doc: DocId,
    /// The node that performed the match.
    pub node: NodeId,
    /// Matched filter ids, sorted, deduplicated within this node.
    pub matched: Vec<FilterId>,
}
