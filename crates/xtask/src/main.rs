//! Entry point: `cargo run -p xtask -- lint [workspace-root]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args.next().map_or_else(
                || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
                PathBuf::from,
            );
            let violations = match xtask::lint_workspace(&root) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("xtask lint: cannot walk {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
            };
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [workspace-root]\n\n\
                 Runs the workspace-specific static analysis (no-panic, \
                 no-unbounded, no-catch-all, pub-docs)."
            );
            ExitCode::FAILURE
        }
    }
}
