//! Entry point: `cargo run -p xtask -- <lint|check-bench> [path]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args.next().map_or_else(
                || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
                PathBuf::from,
            );
            let violations = match xtask::lint_workspace(&root) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("xtask lint: cannot walk {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
            };
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some("check-bench") => {
            let path = args.next().map_or_else(
                || {
                    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                        .join("../../results/BENCH_hotpath.json")
                },
                PathBuf::from,
            );
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask check-bench: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            // The file name picks the schema: BENCH_rebalance.json is the
            // join-under-load report, BENCH_control.json the control-plane
            // aggregation report, anything else the hot-path report.
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let errors = if name.contains("rebalance") {
                xtask::check_rebalance_report(&src)
            } else if name.contains("control") {
                xtask::check_control_report(&src)
            } else {
                xtask::check_bench_report(&src)
            };
            for e in &errors {
                println!("{}: {e}", path.display());
            }
            if errors.is_empty() {
                println!("xtask check-bench: {} is well-formed", path.display());
                ExitCode::SUCCESS
            } else {
                println!("xtask check-bench: {} schema error(s)", errors.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [workspace-root]\n\
                 \x20      cargo run -p xtask -- check-bench [report.json]\n\n\
                 lint        runs the workspace-specific static analysis \
                 (no-panic, no-unbounded, no-catch-all, pub-docs)\n\
                 check-bench validates the schema of a bench JSON report \
                 (default: results/BENCH_hotpath.json; a file name \
                 containing `rebalance` selects the bench_rebalance \
                 join-under-load schema)"
            );
            ExitCode::FAILURE
        }
    }
}
