//! Workspace-specific static analysis for the MOVE reproduction.
//!
//! `cargo run -p xtask -- lint` enforces four rules that `rustc` and
//! `clippy` cannot express because they are *policies of this codebase*,
//! not general Rust style:
//!
//! * **no-panic** — the library crates on the live data path (`move-core`,
//!   `move-runtime`) plus the foundational `move-types` and `move-index`
//!   crates must not contain `unwrap()`, `expect(…)`, `panic!`,
//!   `unreachable!`, `todo!` or `unimplemented!` outside test code: a
//!   worker that panics takes a node's shard with it, so every fallible
//!   path must surface a typed [`MoveError`](../move_types) instead.
//! * **no-unbounded** — channels must be bounded (backpressure is a core
//!   design property of the engine) unless the call site carries an
//!   explicit `xtask:allow-unbounded` marker comment justifying it.
//! * **no-catch-all** — the files that dispatch on the engine's protocol
//!   enums (`worker.rs`, `engine.rs`, `interleave.rs`, `fault.rs`,
//!   `supervisor.rs`, `ingest.rs`, the staged-join engine `rebalance.rs`,
//!   the routing-snapshot kernel `snapshot.rs`, the versioned-layout
//!   kernel `layout.rs`, and the control-plane aggregation layer
//!   `aggregate.rs`/`fanout.rs`) must not contain `_ =>` match arms, so
//!   adding a
//!   protocol variant is a compile error at every dispatch site instead
//!   of a silently ignored message.
//! * **pub-docs** — every public item in `move-core` and `move-runtime`
//!   carries a doc comment (the hard-failure version of
//!   `#![warn(missing_docs)]`).
//!
//! The scanner is a line-oriented lexer, not a full parser: it strips
//! comments, string/char literals and `#[cfg(test)]` regions, then matches
//! per-line patterns. That is exact enough for these rules because the
//! workspace is `rustfmt`-formatted (one item/arm per line).
//!
//! `cargo run -p xtask -- check-bench [report.json]` additionally
//! validates the schema of the hot-path benchmark report
//! ([`check_bench_report`]) — or, when the file name contains
//! `rebalance`, the join-under-load report ([`check_rebalance_report`]),
//! or `control`, the control-plane aggregation report
//! ([`check_control_report`]) — so CI notices when the bench harnesses
//! and their consumers drift apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule name for the panic-family ban.
pub const NO_PANIC: &str = "no-panic";
/// Rule name for the unbounded-channel ban.
pub const NO_UNBOUNDED: &str = "no-unbounded";
/// Rule name for the protocol catch-all ban.
pub const NO_CATCH_ALL: &str = "no-catch-all";
/// Rule name for the public-item documentation requirement.
pub const PUB_DOCS: &str = "pub-docs";

/// One finding: a rule violated at a specific line of a specific file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of the `NO_*`/`PUB_DOCS` constants).
    pub rule: &'static str,
    /// What was found and why it is rejected.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The process exit code for a lint run: 0 when clean, 1 when any rule
/// fired.
#[must_use]
pub fn exit_code(violations: &[Violation]) -> i32 {
    i32::from(!violations.is_empty())
}

/// A source line after lexical preprocessing.
struct Line {
    /// The verbatim line (markers and doc comments are read from here).
    raw: String,
    /// The line with comments and string/char literal *contents* blanked
    /// out, so pattern matches cannot fire inside them.
    code: String,
    /// Whether the line lies inside a `#[cfg(test)]` item or a `#[test]`
    /// function.
    in_test: bool,
}

/// Strips comments and literal contents from `source`, preserving the line
/// structure, then marks test regions.
fn preprocess(source: &str) -> Vec<Line> {
    let code = strip_comments_and_literals(source);
    let mut lines: Vec<Line> = source
        .lines()
        .zip(code.lines())
        .map(|(raw, code)| Line {
            raw: raw.to_owned(),
            code: code.to_owned(),
            in_test: false,
        })
        .collect();
    mark_test_regions(&mut lines);
    lines
}

/// The lexer pass: replaces comment bodies and string/char literal
/// contents with spaces. Newlines are kept so line numbers survive.
fn strip_comments_and_literals(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    i += 1;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    i += 1;
                    out.push(' ');
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        out.push(' ');
                    }
                    i += consumed - 1;
                }
                '\'' if is_char_literal(&chars, i) => {
                    state = State::Char;
                    out.push('\'');
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '*' && next == Some('/') {
                    out.push(' ');
                    i += 1;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    i += 1;
                    state = State::BlockComment(depth + 1);
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 1;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    for _ in 0..=hashes as usize {
                        out.push(' ');
                    }
                    i += hashes as usize;
                    state = State::Code;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 1;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw string literal
/// (`r"`, `r#"`, `br"`, …) rather than an identifier.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Reject when preceded by an identifier character: `for r in ..` vs
    // an identifier ending in r like `var"` cannot occur.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    j += 1; // past 'r'
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Returns (number of `#`s, characters consumed through the opening quote).
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // past 'r'
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i + 1) // +1 consumes the opening quote
}

/// Whether the quote at `i` is followed by `hashes` `#`s, closing the raw
/// string.
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Whether the `'` at position `i` starts a char literal (vs a lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks every line belonging to an item annotated `#[cfg(test)]` or
/// `#[test]`, by brace-matching from the attribute to the end of the item.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        let is_test_attr =
            code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") || code == "#[test]";
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut j = i;
        while j < lines.len() {
            lines[j].in_test = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if seen_open && depth <= 0 {
                break;
            }
            // A braceless item (`#[cfg(test)] use …;`) ends at the first
            // statement terminator.
            if !seen_open && j > i && lines[j].code.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Crates whose non-test code must be panic-free and fully documented:
/// the library data path.
fn is_data_path(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/runtime/src/")
}

/// Crates whose non-test code must be panic-free but are not (yet) held to
/// the pub-docs rule: the foundation types and the match kernels, which
/// every data-path crate builds on, plus the versioned-layout kernel in
/// `move-cluster` — a panic there poisons every scheme's view of the ring.
fn is_no_panic_scope(path: &str) -> bool {
    is_data_path(path)
        || path.starts_with("crates/types/src/")
        || path.starts_with("crates/index/src/")
        || path == "crates/cluster/src/layout.rs"
}

/// Files that dispatch on the engine's protocol enums. `rebalance.rs`
/// (the staged-join engine) and `layout.rs` (the versioned-layout kernel)
/// are included because a silently dropped control message or layout
/// change there strands partitions mid-handover; `aggregate.rs` and
/// `fanout.rs` (the control-plane aggregation layer) because a silently
/// ignored register/unregister outcome desynchronizes the fan-out
/// refcounts from the posting entries.
fn is_protocol_dispatch(path: &str) -> bool {
    matches!(
        path,
        "crates/runtime/src/worker.rs"
            | "crates/runtime/src/lanes.rs"
            | "crates/runtime/src/engine.rs"
            | "crates/runtime/src/interleave.rs"
            | "crates/runtime/src/fault.rs"
            | "crates/runtime/src/supervisor.rs"
            | "crates/runtime/src/ingest.rs"
            | "crates/runtime/src/rebalance.rs"
            | "crates/core/src/snapshot.rs"
            | "crates/cluster/src/layout.rs"
            | "crates/index/src/aggregate.rs"
            | "crates/index/src/fanout.rs"
    )
}

/// Crates subject to the unbounded-channel ban (everything but the shims,
/// which *define* `unbounded`, and this linter itself, which names it).
fn is_channel_scope(path: &str) -> bool {
    path.starts_with("crates/") && !path.starts_with("crates/xtask/")
}

/// Lints one file given its workspace-relative `path` (which selects the
/// applicable rules) and its contents.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let lines = preprocess(source);
    let mut out = Vec::new();
    if is_no_panic_scope(path) {
        no_panic(path, &lines, &mut out);
    }
    if is_data_path(path) {
        pub_docs(path, &lines, &mut out);
    }
    if is_channel_scope(path) {
        no_unbounded(path, &lines, &mut out);
    }
    if is_protocol_dispatch(path) {
        no_catch_all(path, &lines, &mut out);
    }
    out
}

fn no_panic(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    const PATTERNS: [&str; 6] = [
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!(",
        "unimplemented!(",
    ];
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PATTERNS {
            if line.code.contains(pat) {
                out.push(Violation {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: NO_PANIC,
                    message: format!(
                        "`{pat}` in non-test data-path code; return a typed \
                         move_types::MoveError instead"
                    ),
                });
            }
        }
    }
}

fn no_unbounded(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    const MARKER: &str = "xtask:allow-unbounded";
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !(line.code.contains("unbounded(") || line.code.contains("unbounded::<"))
        {
            continue;
        }
        // The justification marker may sit on the call line or on either
        // of the two comment lines directly above it.
        let allowed = (idx.saturating_sub(2)..=idx).any(|j| lines[j].raw.contains(MARKER));
        if !allowed {
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: NO_UNBOUNDED,
                message: "unbounded channel without an `xtask:allow-unbounded` \
                          justification; use a bounded channel (backpressure) or \
                          add the marker with a reason"
                    .to_owned(),
            });
        }
    }
}

fn no_catch_all(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let t = line.code.trim_start();
        if t.starts_with("_ =>") || t.starts_with("| _ =>") {
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: NO_CATCH_ALL,
                message: "catch-all `_ =>` arm in a protocol dispatch file; \
                          list every variant so new messages fail to compile \
                          here instead of being silently dropped"
                    .to_owned(),
            });
        }
    }
}

/// Whether a stripped, trimmed code line declares a `pub` item that
/// requires a doc comment. `pub(crate)`/`pub(super)` items and `pub use`
/// re-exports are exempt (the latter inherit the target's docs), as are
/// `pub` fields — field visibility cannot be classified without type
/// context, and `#![warn(missing_docs)]` already covers public fields.
fn pub_item_needs_doc(code: &str) -> bool {
    let Some(rest) = code.strip_prefix("pub ") else {
        return false;
    };
    let mut words = rest.split_whitespace();
    loop {
        match words.next() {
            Some("unsafe" | "async" | "extern") => {}
            Some("const") => {
                // `pub const fn f()` and `pub const X: T` both need docs.
                return true;
            }
            Some("fn" | "struct" | "enum" | "trait" | "mod" | "type" | "static" | "union") => {
                return true;
            }
            _ => return false,
        }
    }
}

fn pub_docs(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    let mut has_doc = false;
    let mut attr_depth: i64 = 0;
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            has_doc = false;
            attr_depth = 0;
            continue;
        }
        let code = line.code.trim();
        let raw = line.raw.trim_start();
        if attr_depth > 0 {
            attr_depth += bracket_balance(code);
            continue;
        }
        if raw.starts_with("///") || raw.starts_with("//!") || raw.starts_with("#[doc") {
            has_doc = true;
            continue;
        }
        if code.is_empty() {
            // Comment-only lines keep an accumulated doc attached; truly
            // blank lines detach it.
            if raw.is_empty() {
                has_doc = false;
            }
            continue;
        }
        if code.starts_with("#[") || code.starts_with("#!") {
            attr_depth = bracket_balance(code);
            continue;
        }
        if pub_item_needs_doc(code) && !has_doc {
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: PUB_DOCS,
                message: format!(
                    "undocumented public item `{}`",
                    code.split('{').next().unwrap_or(code).trim()
                ),
            });
        }
        has_doc = false;
    }
}

/// Net `[`/`]` balance of a line — used to span multi-line attributes.
fn bracket_balance(code: &str) -> i64 {
    let mut depth = 0;
    for c in code.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Lints every `.rs` file under `root/crates`, returning all findings
/// sorted by path and line.
///
/// # Errors
///
/// Propagates filesystem errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&file)?;
        out.extend(lint_source(&rel, &source));
    }
    Ok(out)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // Skip build artifacts if a stray target/ exists in-tree.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Validates the structure of a `results/BENCH_hotpath.json` report
/// produced by `cargo run -p move-bench --bin bench_hotpath`, returning a
/// human-readable message per schema problem (empty when the report is
/// well-formed).
///
/// The schema is deliberately shallow — it guards the CI bench-smoke job
/// against the harness silently rotting (wrong field names, empty run set,
/// zeroed throughput), not against regressions in the numbers themselves:
///
/// * top level: object with numeric `scale`, `nodes`, `filters`, `docs`
///   and a non-empty `runs` array;
/// * each run: `scheme` ∈ {`il`, `rs`, `move`}, `mode` ∈ {`sim`, `live`},
///   `docs_per_sec` > 0, and `p50_us` ≤ `p99_us` (both non-negative);
/// * when the optional `scaling` array (the `--publishers` sweep) is
///   present: each entry has `scheme` ∈ {`il`, `rs`, `move`}, `mode` =
///   `live`, integer `publishers` ≥ 1, `docs_per_sec` > 0, `speedup` > 0,
///   and `deliveries_match` = `true` — a `false` means the router pool
///   diverged from the serial delivery sets, which is a correctness
///   failure, not a schema nit, so it fails the check;
/// * when the optional `lanes` array (the `--match-lanes` sweep over the
///   workers' work-stealing match pools) is present: each entry has
///   `scheme` ∈ {`il`, `rs`, `move`}, `mode` = `live`, integer `lanes` ≥
///   1, `docs_per_sec` > 0, `speedup` ≥ [`LANE_SPEEDUP_FLOOR`] (lane
///   configurations that *regress* throughput by more than 5% hard-fail
///   the gate), and `deliveries_match` = `true` — same correctness gate
///   as the publisher sweep, now over intra-node lane counts.
#[must_use]
pub fn check_bench_report(src: &str) -> Vec<String> {
    use serde::Value;

    let mut errors = Vec::new();
    let root = match serde_json::parse_value(src) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    if !matches!(root, Value::Object(_)) {
        return vec![format!(
            "top level must be an object, found {}",
            root.kind()
        )];
    }
    for field in ["scale", "nodes", "filters", "docs"] {
        match root.get(field) {
            None => errors.push(format!("missing top-level field `{field}`")),
            Some(v) if v.as_f64().is_none() => {
                errors.push(format!("`{field}` must be a number, found {}", v.kind()));
            }
            Some(_) => {}
        }
    }
    let runs = match root.get("runs") {
        None => {
            errors.push("missing top-level field `runs`".to_string());
            return errors;
        }
        Some(Value::Array(runs)) => runs,
        Some(v) => {
            errors.push(format!("`runs` must be an array, found {}", v.kind()));
            return errors;
        }
    };
    if runs.is_empty() {
        errors.push("`runs` must not be empty".to_string());
    }
    for (i, run) in runs.iter().enumerate() {
        if !matches!(run, Value::Object(_)) {
            errors.push(format!("runs[{i}] must be an object, found {}", run.kind()));
            continue;
        }
        for (field, allowed) in [
            ("scheme", &["il", "rs", "move"][..]),
            ("mode", &["sim", "live"][..]),
        ] {
            match run.get(field) {
                Some(Value::String(s)) if allowed.contains(&s.as_str()) => {}
                Some(Value::String(s)) => errors.push(format!(
                    "runs[{i}].{field}: `{s}` is not one of {allowed:?}"
                )),
                Some(v) => errors.push(format!(
                    "runs[{i}].{field} must be a string, found {}",
                    v.kind()
                )),
                None => errors.push(format!("runs[{i}] missing `{field}`")),
            }
        }
        for field in ["elapsed_secs", "docs_per_sec", "p50_us", "p99_us"] {
            match run.get(field).and_then(Value::as_f64) {
                Some(x) if x.is_finite() && x >= 0.0 => {}
                Some(_) => errors.push(format!("runs[{i}].{field} must be finite and >= 0")),
                None => errors.push(format!("runs[{i}] missing numeric `{field}`")),
            }
        }
        if let Some(dps) = run.get("docs_per_sec").and_then(Value::as_f64) {
            if dps <= 0.0 {
                errors.push(format!("runs[{i}].docs_per_sec must be > 0, got {dps}"));
            }
        }
        if let (Some(p50), Some(p99)) = (
            run.get("p50_us").and_then(Value::as_f64),
            run.get("p99_us").and_then(Value::as_f64),
        ) {
            if p50 > p99 {
                errors.push(format!("runs[{i}]: p50_us ({p50}) exceeds p99_us ({p99})"));
            }
        }
        for field in ["deliveries", "postings_scanned"] {
            match run.get(field) {
                None => errors.push(format!("runs[{i}] missing `{field}`")),
                Some(v) if v.as_u64().is_none() => errors.push(format!(
                    "runs[{i}].{field} must be a non-negative integer, found {}",
                    v.kind()
                )),
                Some(_) => {}
            }
        }
    }
    match root.get("scaling") {
        None => {} // pre-pool reports carry no sweep; that is fine
        Some(Value::Array(scaling)) => {
            if scaling.is_empty() {
                errors.push("`scaling` must not be empty when present".to_string());
            }
            for (i, entry) in scaling.iter().enumerate() {
                check_scaling_entry(i, entry, &mut errors);
            }
        }
        Some(v) => errors.push(format!("`scaling` must be an array, found {}", v.kind())),
    }
    match root.get("lanes") {
        None => {} // pre-pool reports carry no lane sweep; that is fine
        Some(Value::Array(lanes)) => {
            if lanes.is_empty() {
                errors.push("`lanes` must not be empty when present".to_string());
            }
            for (i, entry) in lanes.iter().enumerate() {
                check_lane_entry(i, entry, &mut errors);
            }
        }
        Some(v) => errors.push(format!("`lanes` must be an array, found {}", v.kind())),
    }
    errors
}

/// Hard floor on every lane-sweep `speedup`: a multi-lane configuration
/// may fail to gain (scheduler overhead, single hardware core), but one
/// that *loses* more than 5% versus the single-lane worker is a
/// regression the bench gate refuses to certify.
pub const LANE_SPEEDUP_FLOOR: f64 = 0.95;

/// Validates one entry of the `lanes` (`--match-lanes` sweep) array.
fn check_lane_entry(i: usize, entry: &serde::Value, errors: &mut Vec<String>) {
    use serde::Value;

    if !matches!(entry, Value::Object(_)) {
        errors.push(format!(
            "lanes[{i}] must be an object, found {}",
            entry.kind()
        ));
        return;
    }
    match entry.get("scheme") {
        Some(Value::String(s)) if ["il", "rs", "move"].contains(&s.as_str()) => {}
        Some(Value::String(s)) => errors.push(format!(
            "lanes[{i}].scheme: `{s}` is not one of [\"il\", \"rs\", \"move\"]"
        )),
        Some(v) => errors.push(format!(
            "lanes[{i}].scheme must be a string, found {}",
            v.kind()
        )),
        None => errors.push(format!("lanes[{i}] missing `scheme`")),
    }
    match entry.get("mode") {
        Some(Value::String(s)) if s == "live" => {}
        Some(_) => errors.push(format!(
            "lanes[{i}].mode must be \"live\" (the sweep measures the live pool)"
        )),
        None => errors.push(format!("lanes[{i}] missing `mode`")),
    }
    match entry.get("lanes").and_then(Value::as_u64) {
        Some(l) if l >= 1 => {}
        Some(_) => errors.push(format!("lanes[{i}].lanes must be >= 1")),
        None => errors.push(format!("lanes[{i}] missing integer `lanes`")),
    }
    for field in ["docs_per_sec", "speedup"] {
        match entry.get(field).and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x > 0.0 => {}
            Some(_) => errors.push(format!("lanes[{i}].{field} must be finite and > 0")),
            None => errors.push(format!("lanes[{i}] missing numeric `{field}`")),
        }
    }
    match entry.get("speedup").and_then(Value::as_f64) {
        Some(s) if s.is_finite() && s > 0.0 && s < LANE_SPEEDUP_FLOOR => errors.push(format!(
            "lanes[{i}].speedup {s:.3} is below the {LANE_SPEEDUP_FLOOR} floor: \
             the lane pool regresses versus the single-lane worker — a lane \
             configuration that costs throughput must not ship"
        )),
        Some(_) | None => {} // non-positive / missing reported above
    }
    match entry.get("deliveries_match") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => errors.push(format!(
            "lanes[{i}].deliveries_match is false: the match pool's delivery \
             sets diverged from the single-lane worker's"
        )),
        Some(v) => errors.push(format!(
            "lanes[{i}].deliveries_match must be a bool, found {}",
            v.kind()
        )),
        None => errors.push(format!("lanes[{i}] missing `deliveries_match`")),
    }
}

/// Validates one entry of the `scaling` (`--publishers` sweep) array.
fn check_scaling_entry(i: usize, entry: &serde::Value, errors: &mut Vec<String>) {
    use serde::Value;

    if !matches!(entry, Value::Object(_)) {
        errors.push(format!(
            "scaling[{i}] must be an object, found {}",
            entry.kind()
        ));
        return;
    }
    match entry.get("scheme") {
        Some(Value::String(s)) if ["il", "rs", "move"].contains(&s.as_str()) => {}
        Some(Value::String(s)) => errors.push(format!(
            "scaling[{i}].scheme: `{s}` is not one of [\"il\", \"rs\", \"move\"]"
        )),
        Some(v) => errors.push(format!(
            "scaling[{i}].scheme must be a string, found {}",
            v.kind()
        )),
        None => errors.push(format!("scaling[{i}] missing `scheme`")),
    }
    match entry.get("mode") {
        Some(Value::String(s)) if s == "live" => {}
        Some(_) => errors.push(format!(
            "scaling[{i}].mode must be \"live\" (the sweep measures the live pool)"
        )),
        None => errors.push(format!("scaling[{i}] missing `mode`")),
    }
    match entry.get("publishers").and_then(Value::as_u64) {
        Some(p) if p >= 1 => {}
        Some(_) => errors.push(format!("scaling[{i}].publishers must be >= 1")),
        None => errors.push(format!("scaling[{i}] missing integer `publishers`")),
    }
    for field in ["docs_per_sec", "speedup"] {
        match entry.get(field).and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x > 0.0 => {}
            Some(_) => errors.push(format!("scaling[{i}].{field} must be finite and > 0")),
            None => errors.push(format!("scaling[{i}] missing numeric `{field}`")),
        }
    }
    match entry.get("deliveries_match") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => errors.push(format!(
            "scaling[{i}].deliveries_match is false: the pool's delivery \
             sets diverged from the serial router's"
        )),
        Some(v) => errors.push(format!(
            "scaling[{i}].deliveries_match must be a bool, found {}",
            v.kind()
        )),
        None => errors.push(format!("scaling[{i}] missing `deliveries_match`")),
    }
}

/// Validates the structure of a `results/BENCH_rebalance.json` report
/// produced by `cargo run -p move-bench --bin bench_rebalance`, returning
/// a human-readable message per schema problem (empty when the report is
/// well-formed).
///
/// Beyond field shapes, two of the checks are correctness gates rather
/// than schema nits, because the bench is the acceptance harness for the
/// elastic-cluster subsystem:
///
/// * `deliveries_match` must be `true` — a `false` means a join changed
///   what subscribers received versus a from-scratch N+1 cluster;
/// * `dip_ratio` must be > 0 and ≤ 1 — the slowest ingest bucket of the
///   join run over the run's median bucket; 0 would mean ingest fully
///   stalled during the handover, which the staged design forbids (the
///   fence gates the commit, not the copy);
/// * `partitions_moved` ≥ 1 for the keyword-routed schemes (`il`,
///   `move`) — a join that moved nothing rebalanced nothing. `rs` floods
///   every group, so it legitimately streams no partitions.
#[must_use]
pub fn check_rebalance_report(src: &str) -> Vec<String> {
    use serde::Value;

    let mut errors = Vec::new();
    let root = match serde_json::parse_value(src) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    if !matches!(root, Value::Object(_)) {
        return vec![format!(
            "top level must be an object, found {}",
            root.kind()
        )];
    }
    for field in ["scale", "nodes", "filters", "docs"] {
        match root.get(field) {
            None => errors.push(format!("missing top-level field `{field}`")),
            Some(v) if v.as_f64().is_none() => {
                errors.push(format!("`{field}` must be a number, found {}", v.kind()));
            }
            Some(_) => {}
        }
    }
    let runs = match root.get("runs") {
        None => {
            errors.push("missing top-level field `runs`".to_string());
            return errors;
        }
        Some(Value::Array(runs)) => runs,
        Some(v) => {
            errors.push(format!("`runs` must be an array, found {}", v.kind()));
            return errors;
        }
    };
    if runs.is_empty() {
        errors.push("`runs` must not be empty".to_string());
    }
    for (i, run) in runs.iter().enumerate() {
        if !matches!(run, Value::Object(_)) {
            errors.push(format!("runs[{i}] must be an object, found {}", run.kind()));
            continue;
        }
        let scheme = match run.get("scheme") {
            Some(Value::String(s)) if ["il", "rs", "move"].contains(&s.as_str()) => {
                Some(s.as_str())
            }
            Some(Value::String(s)) => {
                errors.push(format!(
                    "runs[{i}].scheme: `{s}` is not one of [\"il\", \"rs\", \"move\"]"
                ));
                None
            }
            Some(v) => {
                errors.push(format!(
                    "runs[{i}].scheme must be a string, found {}",
                    v.kind()
                ));
                None
            }
            None => {
                errors.push(format!("runs[{i}] missing `scheme`"));
                None
            }
        };
        match run.get("mode") {
            Some(Value::String(s)) if s == "live" => {}
            Some(_) => errors.push(format!(
                "runs[{i}].mode must be \"live\" (joins only exist on the live engine)"
            )),
            None => errors.push(format!("runs[{i}] missing `mode`")),
        }
        for (field, min) in [("publishers", 1), ("window_docs", 1), ("joins", 1)] {
            match run.get(field).and_then(Value::as_u64) {
                Some(x) if x >= min => {}
                Some(x) => errors.push(format!("runs[{i}].{field} must be >= {min}, got {x}")),
                None => errors.push(format!("runs[{i}] missing integer `{field}`")),
            }
        }
        for field in ["docs_per_sec", "baseline_docs_per_sec"] {
            match run.get(field).and_then(Value::as_f64) {
                Some(x) if x.is_finite() && x > 0.0 => {}
                Some(_) => errors.push(format!("runs[{i}].{field} must be finite and > 0")),
                None => errors.push(format!("runs[{i}] missing numeric `{field}`")),
            }
        }
        match run.get("dip_ratio").and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x > 0.0 && x <= 1.0 => {}
            Some(x) => errors.push(format!(
                "runs[{i}].dip_ratio must be in (0, 1]: got {x} — 0 means \
                 ingest fully stalled during the handover"
            )),
            None => errors.push(format!("runs[{i}] missing numeric `dip_ratio`")),
        }
        match run.get("partitions_moved").and_then(Value::as_u64) {
            Some(0) if scheme.is_none() || scheme == Some("rs") => {}
            Some(0) => errors.push(format!(
                "runs[{i}].partitions_moved is 0: a keyword-routed join \
                 that moved nothing rebalanced nothing"
            )),
            Some(_) => {}
            None => errors.push(format!("runs[{i}] missing integer `partitions_moved`")),
        }
        for field in ["docs_double_routed", "handover_docs", "handover_nanos"] {
            match run.get(field) {
                None => errors.push(format!("runs[{i}] missing `{field}`")),
                Some(v) if v.as_u64().is_none() => errors.push(format!(
                    "runs[{i}].{field} must be a non-negative integer, found {}",
                    v.kind()
                )),
                Some(_) => {}
            }
        }
        match run.get("p99_us").and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x >= 0.0 => {}
            Some(_) => errors.push(format!("runs[{i}].p99_us must be finite and >= 0")),
            None => errors.push(format!("runs[{i}] missing numeric `p99_us`")),
        }
        match run.get("deliveries_match") {
            Some(Value::Bool(true)) => {}
            Some(Value::Bool(false)) => errors.push(format!(
                "runs[{i}].deliveries_match is false: the join changed the \
                 delivery sets versus a from-scratch N+1 cluster"
            )),
            Some(v) => errors.push(format!(
                "runs[{i}].deliveries_match must be a bool, found {}",
                v.kind()
            )),
            None => errors.push(format!("runs[{i}] missing `deliveries_match`")),
        }
    }
    errors
}

/// Validates the structure of a `results/BENCH_control.json` report
/// produced by `cargo run -p move-bench --bin bench_control`, returning a
/// human-readable message per problem (empty when the report is
/// well-formed).
///
/// Beyond field shapes, three checks are correctness gates, because the
/// bench is the acceptance harness for the control-plane aggregation
/// layer (DESIGN.md §12):
///
/// * `deliveries_match` must be `true` on every run — a `false` means the
///   aggregated delivery sets diverged from the verbatim twin or the
///   brute-force oracle under churn;
/// * every aggregated run's `bytes_per_filter` must be strictly below its
///   scheme's verbatim run — aggregation that grows storage is a bug, not
///   a trade-off;
/// * every aggregated run's `bytes_reduction` must be ≥ 4 — the pool's
///   20× predicate aliasing must buy at least a 4× storage cut.
#[must_use]
pub fn check_control_report(src: &str) -> Vec<String> {
    use serde::Value;

    let mut errors = Vec::new();
    let root = match serde_json::parse_value(src) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    if !matches!(root, Value::Object(_)) {
        return vec![format!(
            "top level must be an object, found {}",
            root.kind()
        )];
    }
    for field in [
        "scale",
        "nodes",
        "subscribers",
        "predicate_pool",
        "churn_ticks",
        "docs",
    ] {
        match root.get(field) {
            None => errors.push(format!("missing top-level field `{field}`")),
            Some(v) if v.as_f64().is_none() => {
                errors.push(format!("`{field}` must be a number, found {}", v.kind()));
            }
            Some(_) => {}
        }
    }
    let runs = match root.get("runs") {
        None => {
            errors.push("missing top-level field `runs`".to_string());
            return errors;
        }
        Some(Value::Array(runs)) => runs,
        Some(v) => {
            errors.push(format!("`runs` must be an array, found {}", v.kind()));
            return errors;
        }
    };
    if runs.is_empty() {
        errors.push("`runs` must not be empty".to_string());
    }
    // scheme → (aggregated bytes/filter, verbatim bytes/filter) for the
    // cross-run storage gate.
    let mut bytes: std::collections::BTreeMap<String, (Option<f64>, Option<f64>)> =
        std::collections::BTreeMap::new();
    for (i, run) in runs.iter().enumerate() {
        if !matches!(run, Value::Object(_)) {
            errors.push(format!("runs[{i}] must be an object, found {}", run.kind()));
            continue;
        }
        let scheme = match run.get("scheme") {
            Some(Value::String(s)) if ["il", "rs", "move"].contains(&s.as_str()) => Some(s.clone()),
            Some(Value::String(s)) => {
                errors.push(format!(
                    "runs[{i}].scheme: `{s}` is not one of [\"il\", \"rs\", \"move\"]"
                ));
                None
            }
            Some(v) => {
                errors.push(format!(
                    "runs[{i}].scheme must be a string, found {}",
                    v.kind()
                ));
                None
            }
            None => {
                errors.push(format!("runs[{i}] missing `scheme`"));
                None
            }
        };
        let aggregated = match run.get("mode") {
            Some(Value::String(s)) if s == "aggregated" => Some(true),
            Some(Value::String(s)) if s == "verbatim" => Some(false),
            Some(_) => {
                errors.push(format!(
                    "runs[{i}].mode must be \"aggregated\" or \"verbatim\""
                ));
                None
            }
            None => {
                errors.push(format!("runs[{i}] missing `mode`"));
                None
            }
        };
        for field in ["subscribers", "canonical_filters"] {
            match run.get(field).and_then(Value::as_u64) {
                Some(x) if x >= 1 => {}
                Some(x) => errors.push(format!("runs[{i}].{field} must be >= 1, got {x}")),
                None => errors.push(format!("runs[{i}] missing integer `{field}`")),
            }
        }
        for field in [
            "bytes_per_filter",
            "registrations_per_sec",
            "unregistrations_per_sec",
            "docs_per_sec_under_churn",
        ] {
            match run.get(field).and_then(Value::as_f64) {
                Some(x) if x.is_finite() && x > 0.0 => {}
                Some(_) => errors.push(format!("runs[{i}].{field} must be finite and > 0")),
                None => errors.push(format!("runs[{i}] missing numeric `{field}`")),
            }
        }
        if let (Some(scheme), Some(aggregated)) = (&scheme, aggregated) {
            let slot = bytes.entry(scheme.clone()).or_default();
            let bpf = run.get("bytes_per_filter").and_then(Value::as_f64);
            if aggregated {
                slot.0 = bpf;
            } else {
                slot.1 = bpf;
            }
        }
        if aggregated == Some(true) {
            match run.get("bytes_reduction").and_then(Value::as_f64) {
                Some(r) if r >= 4.0 => {}
                Some(r) => errors.push(format!(
                    "runs[{i}].bytes_reduction is {r:.2}: aggregation must \
                     cut storage at least 4x under the pool's aliasing"
                )),
                None => errors.push(format!(
                    "runs[{i}] (aggregated) missing numeric `bytes_reduction`"
                )),
            }
        }
        match run.get("deliveries_match") {
            Some(Value::Bool(true)) => {}
            Some(Value::Bool(false)) => errors.push(format!(
                "runs[{i}].deliveries_match is false: aggregated deliveries \
                 diverged from the verbatim twin or the brute-force oracle"
            )),
            Some(v) => errors.push(format!(
                "runs[{i}].deliveries_match must be a bool, found {}",
                v.kind()
            )),
            None => errors.push(format!("runs[{i}] missing `deliveries_match`")),
        }
    }
    for (scheme, (agg, verb)) in &bytes {
        match (agg, verb) {
            (Some(a), Some(v)) if a < v => {}
            (Some(a), Some(v)) => errors.push(format!(
                "{scheme}: aggregated bytes/filter ({a:.1}) must be strictly \
                 below the verbatim baseline ({v:.1})"
            )),
            _ => errors.push(format!(
                "{scheme}: report must contain both an aggregated and a \
                 verbatim run"
            )),
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unwrap_in_data_path_is_rejected() {
        let src = "/// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_source("crates/core/src/bad.rs", src);
        assert_eq!(rules(&v), [NO_PANIC]);
        assert_eq!(v[0].line, 3);
        assert_eq!(exit_code(&v), 1);
    }

    #[test]
    fn every_panic_family_macro_is_rejected() {
        for call in [
            "x.expect(\"y\")",
            "panic!(\"boom\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
        ] {
            let src = format!("/// Doc.\npub fn f() {{\n    {call};\n}}\n");
            let v = lint_source("crates/runtime/src/bad.rs", &src);
            assert_eq!(rules(&v), [NO_PANIC], "for {call}");
        }
    }

    #[test]
    fn unwrap_outside_data_path_is_fine() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/bench/src/ok.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   None::<u32>.unwrap();\n    }\n}\n";
        assert!(lint_source("crates/core/src/ok.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_comments_and_strings_is_fine() {
        let src = "/// Call `x.unwrap()` like this:\n/// ```\n/// x.unwrap();\n/// ```\n\
                   pub fn f() -> &'static str {\n    \".unwrap() and panic!\"\n}\n";
        assert!(lint_source("crates/core/src/ok.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n\n\
                   /// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_source("crates/core/src/bad.rs", src);
        assert_eq!(rules(&v), [NO_PANIC]);
        assert_eq!(v[0].line, 9);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "/// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap_or(0).max(x.unwrap_or_default())\n}\n";
        assert!(lint_source("crates/core/src/ok.rs", src).is_empty());
    }

    #[test]
    fn unbounded_without_marker_is_rejected() {
        let src = "/// Doc.\npub fn f() {\n    let (tx, rx) = unbounded::<u32>();\n    \
                   let _ = (tx, rx);\n}\n";
        let v = lint_source("crates/stats/src/bad.rs", src);
        assert_eq!(rules(&v), [NO_UNBOUNDED]);
    }

    #[test]
    fn unbounded_with_marker_is_fine() {
        let same_line =
            "pub fn f() {\n    let c = unbounded::<u32>(); // xtask:allow-unbounded: x\n}\n";
        let line_above =
            "pub fn f() {\n    // xtask:allow-unbounded — reason spanning\n    // two lines\n    \
             let c = unbounded::<u32>();\n}\n";
        assert!(lint_source("crates/stats/src/ok.rs", same_line).is_empty());
        assert!(lint_source("crates/stats/src/ok.rs", line_above).is_empty());
    }

    #[test]
    fn catch_all_in_protocol_dispatch_is_rejected() {
        let src = "fn f(m: u32) {\n    match m {\n        0 => {}\n        _ => {}\n    }\n}\n";
        let v = lint_source("crates/runtime/src/worker.rs", src);
        assert_eq!(rules(&v), [NO_CATCH_ALL]);
        assert_eq!(v[0].line, 4);
        // The same code is fine elsewhere.
        assert!(lint_source("crates/runtime/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn binding_patterns_are_not_catch_alls() {
        let src = "fn f(m: Result<u32, u32>) {\n    match m {\n        Ok(_) => {}\n        \
                   Err(_) => {}\n    }\n}\n";
        assert!(lint_source("crates/runtime/src/engine.rs", src).is_empty());
    }

    #[test]
    fn undocumented_pub_item_is_rejected() {
        let src = "pub struct Naked;\n";
        let v = lint_source("crates/runtime/src/bad.rs", src);
        assert_eq!(rules(&v), [PUB_DOCS]);
        assert!(v[0].message.contains("Naked"));
    }

    #[test]
    fn documented_and_crate_private_items_are_fine() {
        let src = "/// Documented.\n#[derive(Debug, Clone)]\npub struct S;\n\n\
                   pub(crate) struct Hidden;\n\npub use std::fmt;\n\n\
                   /// Documented fn behind attributes.\n#[inline]\n#[must_use]\n\
                   pub fn f() -> u32 {\n    0\n}\n";
        assert!(lint_source("crates/core/src/ok.rs", src).is_empty());
    }

    #[test]
    fn doc_detached_by_blank_line_is_rejected() {
        let src = "/// A doc that drifted away.\n\npub fn f() {}\n";
        let v = lint_source("crates/core/src/bad.rs", src);
        assert_eq!(rules(&v), [PUB_DOCS]);
    }

    fn valid_report() -> String {
        let run = |scheme: &str, mode: &str| {
            format!(
                "{{\"scheme\":\"{scheme}\",\"mode\":\"{mode}\",\
                 \"elapsed_secs\":1.5,\"docs_per_sec\":3500.0,\
                 \"p50_us\":60.5,\"p99_us\":900.0,\
                 \"deliveries\":12345,\"postings_scanned\":67890}}"
            )
        };
        format!(
            "{{\"scale\":0.05,\"nodes\":20,\"filters\":50000,\"docs\":5000,\
             \"runs\":[{},{}]}}",
            run("rs", "sim"),
            run("move", "live")
        )
    }

    #[test]
    fn bench_report_accepts_valid() {
        let errors = check_bench_report(&valid_report());
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn bench_report_rejects_garbage_json() {
        assert!(!check_bench_report("{not json").is_empty());
        assert_eq!(check_bench_report("[1,2,3]").len(), 1);
    }

    #[test]
    fn bench_report_rejects_empty_runs() {
        let src = "{\"scale\":1,\"nodes\":2,\"filters\":3,\"docs\":4,\"runs\":[]}";
        let errors = check_bench_report(src);
        assert!(errors.iter().any(|e| e.contains("must not be empty")));
    }

    #[test]
    fn bench_report_rejects_bad_run_fields() {
        let report = valid_report()
            .replace("\"rs\"", "\"ilx\"")
            .replace("3500.0", "0.0")
            .replace("900.0", "10.0");
        let errors = check_bench_report(&report);
        assert!(
            errors.iter().any(|e| e.contains("not one of")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("must be > 0")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("exceeds p99_us")),
            "{errors:?}"
        );
    }

    #[test]
    fn bench_report_rejects_missing_fields() {
        let errors = check_bench_report("{\"runs\":[{}]}");
        assert!(errors
            .iter()
            .any(|e| e.contains("missing top-level field `scale`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("runs[0] missing `scheme`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("missing numeric `docs_per_sec`")));
    }

    fn scaling_entry(scheme: &str, publishers: u64, speedup: f64, matched: bool) -> String {
        format!(
            "{{\"scheme\":\"{scheme}\",\"mode\":\"live\",\"publishers\":{publishers},\
             \"docs_per_sec\":5000.0,\"speedup\":{speedup},\"deliveries_match\":{matched}}}"
        )
    }

    fn report_with_scaling(entries: &[String]) -> String {
        valid_report().replacen(
            ",\"runs\":",
            &format!(",\"scaling\":[{}],\"runs\":", entries.join(",")),
            1,
        )
    }

    #[test]
    fn bench_report_accepts_a_valid_scaling_sweep() {
        let report = report_with_scaling(&[
            scaling_entry("il", 1, 1.0, true),
            scaling_entry("il", 4, 2.7, true),
            scaling_entry("move", 4, 2.4, true),
        ]);
        let errors = check_bench_report(&report);
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
        // And a report without the sweep stays valid (pre-pool schema).
        assert!(check_bench_report(&valid_report()).is_empty());
    }

    #[test]
    fn bench_report_rejects_bad_scaling_entries() {
        let report = report_with_scaling(&[
            scaling_entry("ilx", 0, -1.0, true),
            "{\"scheme\":\"il\",\"mode\":\"sim\"}".to_string(),
        ]);
        let errors = check_bench_report(&report);
        assert!(errors.iter().any(|e| e.contains("scaling[0].scheme")));
        assert!(errors.iter().any(|e| e.contains("publishers must be >= 1")));
        assert!(errors
            .iter()
            .any(|e| e.contains("speedup must be finite and > 0")));
        assert!(errors.iter().any(|e| e.contains("mode must be \"live\"")));
        assert!(errors
            .iter()
            .any(|e| e.contains("scaling[1] missing `deliveries_match`")));
        assert!(check_bench_report(&report_with_scaling(&[]))
            .iter()
            .any(|e| e.contains("must not be empty when present")));
    }

    #[test]
    fn bench_report_rejects_a_delivery_divergence() {
        let report = report_with_scaling(&[scaling_entry("move", 4, 2.2, false)]);
        let errors = check_bench_report(&report);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("deliveries_match is false")),
            "{errors:?}"
        );
    }

    fn lane_entry(scheme: &str, lanes: u64, speedup: f64, matched: bool) -> String {
        format!(
            "{{\"scheme\":\"{scheme}\",\"mode\":\"live\",\"lanes\":{lanes},\
             \"docs_per_sec\":5000.0,\"speedup\":{speedup},\"deliveries_match\":{matched}}}"
        )
    }

    fn report_with_lanes(entries: &[String]) -> String {
        valid_report().replacen(
            ",\"runs\":",
            &format!(",\"lanes\":[{}],\"runs\":", entries.join(",")),
            1,
        )
    }

    #[test]
    fn bench_report_accepts_a_valid_lane_sweep() {
        let report = report_with_lanes(&[
            lane_entry("il", 1, 1.0, true),
            lane_entry("il", 4, 1.1, true),
            lane_entry("move", 2, 1.05, true),
        ]);
        let errors = check_bench_report(&report);
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn bench_report_rejects_bad_lane_entries() {
        let report = report_with_lanes(&[
            lane_entry("ilx", 0, -1.0, true),
            "{\"scheme\":\"il\",\"mode\":\"sim\"}".to_string(),
        ]);
        let errors = check_bench_report(&report);
        assert!(errors.iter().any(|e| e.contains("lanes[0].scheme")));
        assert!(errors
            .iter()
            .any(|e| e.contains("lanes[0].lanes must be >= 1")));
        assert!(errors
            .iter()
            .any(|e| e.contains("lanes[0].speedup must be finite and > 0")));
        assert!(errors
            .iter()
            .any(|e| e.contains("lanes[1].mode must be \"live\"")));
        assert!(errors
            .iter()
            .any(|e| e.contains("lanes[1] missing `deliveries_match`")));
        assert!(check_bench_report(&report_with_lanes(&[]))
            .iter()
            .any(|e| e.contains("`lanes` must not be empty when present")));
    }

    #[test]
    fn bench_report_rejects_a_lane_delivery_divergence() {
        let report = report_with_lanes(&[lane_entry("move", 4, 1.1, false)]);
        let errors = check_bench_report(&report);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("lanes[0].deliveries_match is false")),
            "{errors:?}"
        );
    }

    #[test]
    fn bench_report_rejects_a_lane_speedup_below_the_floor() {
        // 0.84 was the committed regression this floor exists to block.
        let report = report_with_lanes(&[
            lane_entry("il", 1, 1.0, true),
            lane_entry("move", 4, 0.84, true),
        ]);
        let errors = check_bench_report(&report);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("lanes[1].speedup 0.840 is below the 0.95 floor")),
            "{errors:?}"
        );
    }

    #[test]
    fn bench_report_accepts_lane_speedups_at_the_floor() {
        let report = report_with_lanes(&[
            lane_entry("il", 2, 0.95, true),
            lane_entry("move", 4, 0.96, true),
        ]);
        let errors = check_bench_report(&report);
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    fn valid_rebalance_report() -> String {
        let run = |scheme: &str, partitions: u64| {
            format!(
                "{{\"scheme\":\"{scheme}\",\"mode\":\"live\",\"publishers\":4,\
                 \"window_docs\":300,\"docs_per_sec\":9000.0,\
                 \"baseline_docs_per_sec\":8500.0,\"dip_ratio\":0.4,\
                 \"joins\":1,\"partitions_moved\":{partitions},\
                 \"docs_double_routed\":515,\"handover_docs\":1715,\
                 \"handover_nanos\":862929624,\"p99_us\":1488.0,\
                 \"deliveries_match\":true}}"
            )
        };
        format!(
            "{{\"scale\":0.05,\"nodes\":20,\"filters\":25000,\"docs\":3000,\
             \"runs\":[{},{}]}}",
            run("il", 12),
            run("move", 12)
        )
    }

    #[test]
    fn rebalance_report_accepts_valid() {
        let errors = check_rebalance_report(&valid_rebalance_report());
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn rebalance_report_rejects_garbage_json() {
        assert!(!check_rebalance_report("{not json").is_empty());
        assert_eq!(check_rebalance_report("[1,2,3]").len(), 1);
    }

    #[test]
    fn rebalance_report_rejects_empty_runs() {
        let src = "{\"scale\":1,\"nodes\":2,\"filters\":3,\"docs\":4,\"runs\":[]}";
        let errors = check_rebalance_report(src);
        assert!(errors.iter().any(|e| e.contains("must not be empty")));
    }

    #[test]
    fn rebalance_report_rejects_a_full_stall() {
        for bad_dip in ["0.0", "1.5", "-0.2"] {
            let report = valid_rebalance_report().replace("0.4", bad_dip);
            let errors = check_rebalance_report(&report);
            assert!(
                errors.iter().any(|e| e.contains("dip_ratio must be in")),
                "dip {bad_dip}: {errors:?}"
            );
        }
    }

    #[test]
    fn rebalance_report_rejects_a_delivery_divergence() {
        let report = valid_rebalance_report().replace("true", "false");
        let errors = check_rebalance_report(&report);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("deliveries_match is false")),
            "{errors:?}"
        );
    }

    #[test]
    fn rebalance_report_rejects_a_join_that_moved_nothing() {
        let report =
            valid_rebalance_report().replace("\"partitions_moved\":12", "\"partitions_moved\":0");
        let errors = check_rebalance_report(&report);
        assert!(
            errors.iter().any(|e| e.contains("moved nothing")),
            "{errors:?}"
        );
        // RS floods every group, so zero moved partitions is legitimate.
        let rs = report
            .replace("\"il\"", "\"rs\"")
            .replace("\"move\"", "\"rs\"");
        assert!(
            check_rebalance_report(&rs).is_empty(),
            "rs may move nothing"
        );
    }

    #[test]
    fn rebalance_report_rejects_missing_fields() {
        let errors = check_rebalance_report("{\"runs\":[{}]}");
        assert!(errors
            .iter()
            .any(|e| e.contains("missing top-level field `scale`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("runs[0] missing `scheme`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("missing numeric `dip_ratio`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("runs[0] missing integer `joins`")));
    }

    fn valid_control_report() -> String {
        let run = |scheme: &str, aggregated: bool| {
            let (mode, canonicals, bpf, reduction) = if aggregated {
                ("aggregated", 2446, 47.7, ",\"bytes_reduction\":5.7")
            } else {
                ("verbatim", 50000, 273.3, "")
            };
            format!(
                "{{\"scheme\":\"{scheme}\",\"mode\":\"{mode}\",\
                 \"subscribers\":50000,\"canonical_filters\":{canonicals},\
                 \"bytes_per_filter\":{bpf}{reduction},\
                 \"bulk_register_secs\":0.5,\
                 \"registrations_per_sec\":1345074.0,\
                 \"unregistrations_per_sec\":1368521.0,\
                 \"docs_per_sec_under_churn\":2024.0,\
                 \"canonical_hit_rate\":0.994,\
                 \"deliveries_match\":true}}"
            )
        };
        format!(
            "{{\"scale\":0.05,\"nodes\":20,\"subscribers\":50000,\
             \"predicate_pool\":2500,\"churn_ticks\":6,\"docs\":1000,\
             \"runs\":[{},{}]}}",
            run("il", true),
            run("il", false)
        )
    }

    #[test]
    fn control_report_accepts_valid() {
        let errors = check_control_report(&valid_control_report());
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn control_report_rejects_garbage_json() {
        assert!(!check_control_report("{not json").is_empty());
        assert_eq!(check_control_report("[1,2,3]").len(), 1);
    }

    #[test]
    fn control_report_rejects_a_delivery_divergence() {
        let report = valid_control_report().replace("true", "false");
        let errors = check_control_report(&report);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("deliveries_match is false")),
            "{errors:?}"
        );
    }

    #[test]
    fn control_report_rejects_a_weak_reduction() {
        let report =
            valid_control_report().replace("\"bytes_reduction\":5.7", "\"bytes_reduction\":2.0");
        let errors = check_control_report(&report);
        assert!(
            errors.iter().any(|e| e.contains("at least 4x")),
            "{errors:?}"
        );
    }

    #[test]
    fn control_report_rejects_aggregation_that_grew_storage() {
        let report = valid_control_report()
            .replace("\"bytes_per_filter\":47.7", "\"bytes_per_filter\":300.0");
        let errors = check_control_report(&report);
        assert!(errors.iter().any(|e| e.contains("strictly")), "{errors:?}");
    }

    #[test]
    fn control_report_requires_both_modes_per_scheme() {
        // Drop the verbatim run: the storage gate has no baseline.
        let report = valid_control_report();
        let agg_only = {
            let cut = report.rfind(",{").expect("two runs");
            format!("{}]}}", &report[..cut])
        };
        let errors = check_control_report(&agg_only);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("both an aggregated and a")),
            "{errors:?}"
        );
    }

    #[test]
    fn control_report_rejects_missing_fields() {
        let errors = check_control_report("{\"runs\":[{}]}");
        assert!(errors
            .iter()
            .any(|e| e.contains("missing top-level field `subscribers`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("runs[0] missing `scheme`")));
        assert!(errors
            .iter()
            .any(|e| e.contains("missing numeric `bytes_per_filter`")));
    }

    #[test]
    fn the_committed_control_report_is_valid() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_control.json");
        let src = fs::read_to_string(path).expect("read committed control report");
        let errors = check_control_report(&src);
        assert!(errors.is_empty(), "committed report invalid: {errors:?}");
    }

    #[test]
    fn the_committed_rebalance_report_is_valid() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_rebalance.json");
        let src = fs::read_to_string(path).expect("read committed rebalance report");
        let errors = check_rebalance_report(&src);
        assert!(errors.is_empty(), "committed report invalid: {errors:?}");
    }

    #[test]
    fn the_committed_bench_report_is_valid() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_hotpath.json");
        let src = fs::read_to_string(path).expect("read committed bench report");
        let errors = check_bench_report(&src);
        assert!(errors.is_empty(), "committed report invalid: {errors:?}");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let v = lint_workspace(&root).expect("walk workspace");
        assert!(
            v.is_empty(),
            "workspace lint must be clean:\n{}",
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
