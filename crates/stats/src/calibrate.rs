//! Exponent calibration by binary search.
//!
//! The paper reports *statistics* of its proprietary traces rather than the
//! traces themselves; these routines invert those statistics back into Zipf
//! exponents. Both target functions are strictly monotone in the exponent —
//! head mass increases with α, entropy decreases with α — so bisection
//! converges unconditionally within the bracketing interval.

use crate::Zipf;
use std::error::Error;
use std::fmt;

/// Error returned when a target statistic is unreachable for the given
/// vocabulary size.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    what: String,
}

impl CalibrationError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration failed: {}", self.what)
    }
}

impl Error for CalibrationError {}

const MAX_ALPHA: f64 = 4.0;
const TOL: f64 = 1e-4;

fn bisect(
    n: usize,
    cap: f64,
    target: f64,
    mut f: impl FnMut(&Zipf) -> f64,
    increasing: bool,
) -> Result<f64, CalibrationError> {
    let (mut lo, mut hi) = (0.0f64, MAX_ALPHA);
    let f_lo = f(&Zipf::with_cap(n, lo, cap));
    let f_hi = f(&Zipf::with_cap(n, hi, cap));
    let (min_v, max_v) = if increasing {
        (f_lo, f_hi)
    } else {
        (f_hi, f_lo)
    };
    if target < min_v - TOL || target > max_v + TOL {
        return Err(CalibrationError::new(format!(
            "target {target} outside reachable range [{min_v}, {max_v}] for n={n}"
        )));
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let v = f(&Zipf::with_cap(n, mid, cap));
        let go_right = if increasing { v < target } else { v > target };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds the Zipf exponent over `n` ranks whose top-`k` probability mass is
/// `target_mass`.
///
/// Used to rebuild the MSN filter-term popularity law: 757,996 distinct
/// terms with top-1000 mass 0.437 (paper §VI-A, Fig. 4).
///
/// # Errors
///
/// Returns [`CalibrationError`] when no exponent in `[0, 4]` reaches the
/// target (e.g. a target below the uniform mass `k/n`).
///
/// # Examples
///
/// ```
/// let alpha = move_stats::calibrate_head_mass(10_000, 100, 0.3).unwrap();
/// let z = move_stats::Zipf::new(10_000, alpha);
/// assert!((z.head_mass(100) - 0.3).abs() < 1e-3);
/// ```
pub fn calibrate_head_mass(n: usize, k: usize, target_mass: f64) -> Result<f64, CalibrationError> {
    if k == 0 || k > n {
        return Err(CalibrationError::new(format!(
            "head size k={k} must be in 1..={n}"
        )));
    }
    if !(0.0..=1.0).contains(&target_mass) {
        return Err(CalibrationError::new(format!(
            "target mass {target_mass} not a probability"
        )));
    }
    bisect(n, 1.0, target_mass, |z| z.head_mass(k), true)
}

/// [`calibrate_head_mass`] for a per-rank-probability-capped Zipf law (see
/// [`Zipf::with_cap`]).
///
/// # Errors
///
/// As [`calibrate_head_mass`]; additionally unreachable when the cap is so
/// low that even maximal skew cannot reach the head-mass target
/// (`k·cap < target`).
pub fn calibrate_head_mass_capped(
    n: usize,
    k: usize,
    target_mass: f64,
    cap: f64,
) -> Result<f64, CalibrationError> {
    if k == 0 || k > n {
        return Err(CalibrationError::new(format!(
            "head size k={k} must be in 1..={n}"
        )));
    }
    if !(0.0..=1.0).contains(&target_mass) {
        return Err(CalibrationError::new(format!(
            "target mass {target_mass} not a probability"
        )));
    }
    if cap <= 0.0 {
        return Err(CalibrationError::new("cap must be positive"));
    }
    bisect(n, cap, target_mass, |z| z.head_mass(k), true)
}

/// Finds the Zipf exponent over `n` ranks whose Shannon entropy (bits) is
/// `target_bits`.
///
/// Used to rebuild the TREC document-term frequency laws: entropy 9.4473
/// (AP) and 6.7593 (WT) — WT being the *skewer* of the two (paper §VI-A,
/// Fig. 5).
///
/// # Errors
///
/// Returns [`CalibrationError`] when the target exceeds `log2(n)` (uniform)
/// or is below the α=4 entropy.
///
/// # Examples
///
/// ```
/// let alpha = move_stats::calibrate_entropy(100_000, 9.4473).unwrap();
/// let z = move_stats::Zipf::new(100_000, alpha);
/// assert!((z.entropy_bits() - 9.4473).abs() < 1e-2);
/// ```
pub fn calibrate_entropy(n: usize, target_bits: f64) -> Result<f64, CalibrationError> {
    if target_bits < 0.0 {
        return Err(CalibrationError::new("entropy cannot be negative"));
    }
    bisect(n, 1.0, target_bits, Zipf::entropy_bits, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_head_mass_round_trip() {
        let alpha = calibrate_head_mass_capped(50_000, 1_000, 0.437, 0.005).unwrap();
        let z = Zipf::with_cap(50_000, alpha, 0.005);
        assert!((z.head_mass(1_000) - 0.437).abs() < 1e-3);
        assert!(z.probability(0) < 0.01);
        // Bad cap argument.
        assert!(calibrate_head_mass_capped(50_000, 10, 0.437, 0.0).is_err());
    }

    #[test]
    fn head_mass_round_trip() {
        let alpha = calibrate_head_mass(50_000, 1000, 0.437).unwrap();
        let z = Zipf::new(50_000, alpha);
        assert!((z.head_mass(1000) - 0.437).abs() < 1e-3);
    }

    #[test]
    fn entropy_round_trip_ap_and_wt() {
        for target in [9.4473, 6.7593] {
            let alpha = calibrate_entropy(200_000, target).unwrap();
            let z = Zipf::new(200_000, alpha);
            assert!(
                (z.entropy_bits() - target).abs() < 1e-2,
                "target {target}: got {}",
                z.entropy_bits()
            );
        }
    }

    #[test]
    fn wt_is_skewer_than_ap() {
        // Lower entropy ⇒ larger exponent ⇒ skewer distribution.
        let ap = calibrate_entropy(200_000, 9.4473).unwrap();
        let wt = calibrate_entropy(200_000, 6.7593).unwrap();
        assert!(wt > ap);
    }

    #[test]
    fn unreachable_targets_error() {
        // Uniform over n=100 has head-mass(10) = 0.1; nothing below that is
        // reachable.
        assert!(calibrate_head_mass(100, 10, 0.05).is_err());
        // Entropy above log2(n) is unreachable.
        assert!(calibrate_entropy(1024, 11.0).is_err());
        // Bad arguments.
        assert!(calibrate_head_mass(100, 0, 0.3).is_err());
        assert!(calibrate_head_mass(100, 200, 0.3).is_err());
        assert!(calibrate_head_mass(100, 10, 1.5).is_err());
        assert!(calibrate_entropy(100, -1.0).is_err());
    }

    #[test]
    fn error_formats() {
        let e = calibrate_head_mass(100, 0, 0.3).unwrap_err();
        assert!(e.to_string().starts_with("calibration failed"));
    }
}
