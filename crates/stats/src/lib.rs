//! Statistics utilities for the MOVE reproduction: skewed samplers,
//! distribution calibration, entropy, ranked-distribution reports, and the
//! randomized-rounding helpers used by the allocation optimizer.
//!
//! The paper's workloads are defined by *statistics*, not raw data (the MSN
//! query log and TREC corpora are not redistributable): term popularity is
//! Zipf-like with a published top-1000 mass, document term frequency is
//! Zipf-like with a published entropy, filter lengths follow a published
//! cumulative distribution. This crate turns those targets into concrete,
//! reproducible samplers:
//!
//! * [`Zipf`] — a Zipf(α) distribution over ranks with O(log n) sampling,
//!   head-mass and entropy queries;
//! * [`calibrate_head_mass`] / [`calibrate_entropy`] — binary search for the
//!   exponent hitting a target statistic;
//! * [`Discrete`] — an arbitrary discrete distribution (filter lengths);
//! * [`randomized_round`] / [`apportion`] — integer allocation for the
//!   optimizer's fractional `nᵢ` (paper §IV-C, "classic rounding solutions");
//! * [`entropy_bits`], [`Summary`], [`ranked_series`] — measurement helpers
//!   for the evaluation figures;
//! * [`LatencyHistogram`], [`percentile`] — wall-clock latency measurement
//!   for the live runtime (log-linear histogram, mergeable across worker
//!   threads) and exact percentiles for in-memory samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod discrete;
mod hist;
mod rounding;
mod summary;
mod zipf;

pub use calibrate::{
    calibrate_entropy, calibrate_head_mass, calibrate_head_mass_capped, CalibrationError,
};
pub use discrete::Discrete;
pub use hist::{percentile, LatencyHistogram, LatencySummary};
pub use rounding::{apportion, randomized_round};
pub use summary::{entropy_bits, ranked_series, Summary};
pub use zipf::Zipf;
