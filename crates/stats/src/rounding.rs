//! Integer rounding for the allocation optimizer.
//!
//! Theorem 1's optimum is fractional (`nᵢ ∝ √qᵢ`); the paper approximates
//! integers "by classic rounding solutions, e.g., randomized rounding"
//! (§IV-C, citing Kleinberg & Tardos). Two flavours are provided:
//! unbiased per-value [`randomized_round`], and budget-exact [`apportion`]
//! (largest-remainder) when the rounded values must sum to a fixed total.

use rand::Rng;

/// Rounds `x ≥ 0` to `floor(x)` or `ceil(x)` with probability equal to the
/// fractional part — an unbiased integer estimate (`E[round] = x`).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = move_stats::randomized_round(2.3, &mut rng);
/// assert!(r == 2 || r == 3);
/// ```
pub fn randomized_round<R: Rng + ?Sized>(x: f64, rng: &mut R) -> u64 {
    assert!(x >= 0.0 && x.is_finite(), "x must be finite and >= 0");
    let base = x.floor();
    let frac = x - base;
    base as u64 + u64::from(rng.gen::<f64>() < frac)
}

/// Distributes an integer `total` across `weights` proportionally
/// (largest-remainder / Hamilton apportionment). Every entry with positive
/// weight receives at least `min_each`; the result sums exactly to
/// `max(total, k·min_each)` where `k` is the number of positive weights.
///
/// The allocation optimizer uses this to turn fractional node counts `nᵢ`
/// into integers that exactly respect the cluster-wide storage budget
/// `Σ nᵢ·pᵢ·P = N·C`.
///
/// # Panics
///
/// Panics if any weight is negative or non-finite.
///
/// # Examples
///
/// ```
/// let shares = move_stats::apportion(&[1.0, 1.0, 2.0], 8, 1);
/// assert_eq!(shares.iter().sum::<u64>(), 8);
/// assert_eq!(shares[2], 4);
/// ```
pub fn apportion(weights: &[f64], total: u64, min_each: u64) -> Vec<u64> {
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let k = weights.iter().filter(|&&w| w > 0.0).count() as u64;
    if k == 0 {
        return vec![0; weights.len()];
    }
    let total = total.max(k * min_each);
    let budget = total - k * min_each;
    let wsum: f64 = weights.iter().sum();
    // Ideal fractional share of the budget above the minimum.
    let ideal: Vec<f64> = weights
        .iter()
        .map(|w| {
            if *w > 0.0 {
                w / wsum * budget as f64
            } else {
                0.0
            }
        })
        .collect();
    let mut out: Vec<u64> = ideal
        .iter()
        .zip(weights)
        .map(|(x, &w)| {
            if w > 0.0 {
                x.floor() as u64 + min_each
            } else {
                0
            }
        })
        .collect();
    let assigned: u64 = out.iter().sum();
    let mut leftover = total - assigned;
    // Hand the remaining units to the largest fractional remainders.
    let mut order: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] > 0.0).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.partial_cmp(&fa).expect("finite remainders")
    });
    let mut cursor = 0usize;
    while leftover > 0 {
        let i = order[cursor % order.len()];
        out[i] += 1;
        leftover -= 1;
        cursor += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randomized_round_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| randomized_round(1.25, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn randomized_round_exact_integers() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(randomized_round(3.0, &mut rng), 3);
        assert_eq!(randomized_round(0.0, &mut rng), 0);
    }

    #[test]
    fn apportion_sums_to_total() {
        let shares = apportion(&[0.1, 0.7, 0.2, 3.0], 100, 1);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        assert!(shares.iter().all(|&s| s >= 1));
        assert_eq!(*shares.iter().max().unwrap(), shares[3]);
    }

    #[test]
    fn apportion_respects_zero_weights() {
        let shares = apportion(&[0.0, 1.0, 0.0], 10, 1);
        assert_eq!(shares, vec![0, 10, 0]);
    }

    #[test]
    fn apportion_min_each_dominates_small_totals() {
        let shares = apportion(&[1.0, 1.0, 1.0], 1, 1);
        assert_eq!(shares, vec![1, 1, 1]); // bumped up to k * min_each
    }

    #[test]
    fn apportion_proportionality() {
        let shares = apportion(&[1.0, 2.0, 3.0], 600, 0);
        assert_eq!(shares, vec![100, 200, 300]);
    }

    #[test]
    fn apportion_all_zero() {
        assert_eq!(apportion(&[0.0, 0.0], 5, 1), vec![0, 0]);
    }
}
