//! Arbitrary finite discrete distributions.

use rand::Rng;

/// A discrete distribution over `0..n` given by explicit weights, sampled by
/// inverse CDF. Used for the filter-length law (the MSN trace's published
/// ≤1/2/3-term cumulative shares) and any other small categorical choice.
///
/// # Examples
///
/// ```
/// use move_stats::Discrete;
/// use rand::SeedableRng;
///
/// // Values 0,1,2 with probabilities 0.5, 0.3, 0.2.
/// let d = Discrete::new(&[5.0, 3.0, 2.0]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert!(d.sample(&mut rng) < 3);
/// assert!((d.probability(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Discrete {
    cdf: Vec<f64>,
}

impl Discrete {
    /// Creates the distribution from non-negative `weights` (normalized
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cdf }
    }

    /// Builds the distribution from cumulative probabilities (last entry
    /// must be ≈1).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is not non-decreasing in `[0, 1]` ending at 1
    /// (within 1e-6).
    pub fn from_cumulative(cumulative: &[f64]) -> Self {
        assert!(!cumulative.is_empty(), "cumulative must be non-empty");
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "cumulative must be non-decreasing"
        );
        let last = *cumulative.last().expect("non-empty");
        assert!(
            (last - 1.0).abs() < 1e-6,
            "cumulative must end at 1.0, got {last}"
        );
        Self {
            cdf: cumulative.to_vec(),
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether there are zero outcomes (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of outcome `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }

    /// Mean outcome value (outcomes are their indices).
    pub fn mean(&self) -> f64 {
        (0..self.len())
            .map(|i| i as f64 * self.probability(i))
            .sum()
    }

    /// Samples an outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_weights() {
        let d = Discrete::new(&[2.0, 2.0]);
        assert!((d.probability(0) - 0.5).abs() < 1e-12);
        assert!((d.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_cumulative_round_trips() {
        let d = Discrete::from_cumulative(&[0.3133, 0.6775, 0.8531, 1.0]);
        assert!((d.probability(0) - 0.3133).abs() < 1e-9);
        assert!((d.probability(3) - 0.1469).abs() < 1e-9);
    }

    #[test]
    fn empirical_matches() {
        let d = Discrete::new(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| d.sample(&mut rng) == 1).count();
        assert!((hits as f64 / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn mean_of_indices() {
        let d = Discrete::new(&[0.0, 1.0, 1.0]);
        assert!((d.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_rejected() {
        let _ = Discrete::new(&[]);
    }

    #[test]
    #[should_panic(expected = "end at 1.0")]
    fn bad_cumulative_rejected() {
        let _ = Discrete::from_cumulative(&[0.2, 0.5]);
    }
}
