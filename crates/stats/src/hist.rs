//! Wall-clock latency measurement: a mergeable log-linear histogram and an
//! exact percentile helper.
//!
//! The virtual-time simulator can afford to keep every per-document latency
//! in memory and sort it; the live runtime cannot — worker threads record
//! millions of match latencies and the histogram must be cheap to update
//! (one increment), bounded in size, and mergeable across threads at
//! shutdown. The classic answer is an HdrHistogram-style log-linear layout:
//! buckets double in width every octave and each octave is split into
//! `2^SUB_BITS` linear sub-buckets, giving a constant relative error of
//! about `2^-SUB_BITS` across the full `u64` range.

use serde::{Deserialize, Serialize};

/// Exact percentile of a sample by linear interpolation between closest
/// ranks. `p` is in percent (`50.0` is the median); out-of-range values are
/// clamped. Returns `0.0` for an empty sample.
///
/// # Examples
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(move_stats::percentile(&xs, 0.0), 1.0);
/// assert_eq!(move_stats::percentile(&xs, 50.0), 2.5);
/// assert_eq!(move_stats::percentile(&xs, 100.0), 4.0);
/// ```
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Linear sub-buckets per octave (as a power of two): 32 sub-buckets,
/// ≈3% worst-case relative quantile error.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
const SUB_MASK: u64 = SUB_COUNT - 1;
/// One linear region for values below `SUB_COUNT`, then one `SUB_COUNT`-wide
/// region per remaining octave.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v >= SUB_COUNT so exp >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) & SUB_MASK;
    (((exp - SUB_BITS + 1) as u64 * SUB_COUNT) + sub) as usize
}

/// Midpoint of a bucket's value range — the representative returned by
/// quantile queries.
fn bucket_mid(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let octave = index / SUB_COUNT - 1 + SUB_BITS as u64;
    let sub = index & SUB_MASK;
    let width = 1u64 << (octave - SUB_BITS as u64);
    let lo = (1u64 << octave) + sub * width;
    lo + width / 2
}

/// A fixed-size log-linear histogram of `u64` observations (typically
/// nanoseconds), recording in O(1) and merging across threads.
///
/// # Examples
///
/// ```
/// use move_stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.value_at_percentile(50.0);
/// assert!((450..=550).contains(&p50), "{p50}");
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded observation.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one (the shutdown aggregation of
    /// per-worker histograms).
    ///
    /// Bucket layouts cannot mismatch: the layout (`SUB_BITS`, bucket
    /// count) is a compile-time constant of this crate, so any two
    /// `LatencyHistogram`s are merge-compatible by construction. If the
    /// layout ever becomes configurable, mismatched-layout merges must be
    /// rejected rather than zipped — the `debug_assert` below is the
    /// tripwire for that future change.
    pub fn merge(&mut self, other: &Self) {
        debug_assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histograms with different bucket layouts must not be merged"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (in percent), within the layout's ≈3%
    /// relative error; exact min/max are returned at the extremes. Returns
    /// 0 when empty.
    #[must_use]
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return self.min();
        }
        if p == 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the observed range so p100 is the true max.
                return bucket_mid(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Serializable digest of the distribution for experiment reports.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.value_at_percentile(50.0),
            p90: self.value_at_percentile(90.0),
            p99: self.value_at_percentile(99.0),
            max: self.max(),
        }
    }
}

/// Percentile digest of a [`LatencyHistogram`], in the histogram's recording
/// unit (nanoseconds in the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn buckets_are_monotone_and_exhaustive() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for v in [v, v + v / 3, v + v / 2] {
                let b = bucket_of(v);
                assert!(b >= last, "bucket must not decrease at {v}");
                assert!(b < BUCKETS, "bucket {b} out of range at {v}");
                last = b;
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_mid(bucket_of(v)), v);
        }
        assert_eq!(h.count(), SUB_COUNT);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let got = h.value_at_percentile(p) as f64;
            let want = p / 100.0 * 100_000.0;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.04, "p{p}: got {got}, want {want}, rel {rel}");
        }
        assert_eq!(h.value_at_percentile(0.0), 1);
        assert_eq!(h.value_at_percentile(100.0), 100_000);
    }

    #[test]
    fn merge_equals_single_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..5_000u64 {
            let v = v * v % 70_000;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_percentile(99.0), 0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn empty_percentiles_are_zero_at_every_rank() {
        let h = LatencyHistogram::new();
        for p in [-5.0, 0.0, 0.1, 50.0, 99.9, 100.0, 250.0] {
            assert_eq!(h.value_at_percentile(p), 0, "p{p} of empty");
        }
        let s = h.summary();
        assert_eq!((s.min, s.p50, s.p90, s.p99, s.max), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        for v in [0u64, 1, 31, 32, 1_000_003, u64::MAX] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            assert_eq!(h.count(), 1);
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
                // A one-sample distribution has a single closest rank, so
                // the layout's relative error must not leak through.
                assert_eq!(h.value_at_percentile(p), v, "p{p} of single {v}");
            }
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity_both_ways() {
        let mut recorded = LatencyHistogram::new();
        for v in [3u64, 14, 159, 2653] {
            recorded.record(v);
        }
        let snapshot = recorded.clone();

        let mut lhs = recorded.clone();
        lhs.merge(&LatencyHistogram::new());
        assert_eq!(lhs, snapshot, "merging empty into recorded");

        let mut rhs = LatencyHistogram::new();
        rhs.merge(&recorded);
        assert_eq!(rhs, snapshot, "merging recorded into empty");
        assert_eq!(rhs.min(), 3);
        assert_eq!(rhs.max(), 2653);
    }

    #[test]
    fn merge_of_disjoint_ranges_tracks_global_extremes() {
        let mut low = LatencyHistogram::new();
        let mut high = LatencyHistogram::new();
        for v in 1..=100u64 {
            low.record(v);
            high.record(v + 1_000_000);
        }
        low.merge(&high);
        assert_eq!(low.count(), 200);
        assert_eq!(low.min(), 1);
        assert_eq!(low.max(), 1_000_100);
        // The median sits exactly at the gap between the two halves.
        let p50 = low.value_at_percentile(50.0);
        assert!((1..=104).contains(&p50), "p50 across the gap: {p50}");
        assert!(low.value_at_percentile(75.0) > 1_000_000);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 50, 500, 5_000] {
            h.record(v);
        }
        let s = h.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
