//! Zipf-distributed rank sampling.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`: rank `r` has probability
/// proportional to `1/(r+1)^α`.
///
/// The cumulative distribution is precomputed, giving `O(log n)` sampling by
/// binary search and exact head-mass/entropy queries. Memory is one `f64`
/// per rank, which comfortably handles the paper's 757,996-term vocabulary.
///
/// # Examples
///
/// ```
/// use move_stats::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(1000, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// assert!(z.head_mass(10) > 10.0 * z.probability(500));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[r]` = P(rank <= r); `cdf[n-1]` == 1.
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `alpha >= 0`
    /// (`alpha == 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        Self::with_cap(n, alpha, 1.0)
    }

    /// Creates a Zipf distribution whose per-rank probability is capped at
    /// `cap` after normalization (approximately: raw weights are clipped at
    /// `cap` times the uncapped normalizer, then renormalized). Real term
    /// popularity curves plateau at the top — the MSN trace's most popular
    /// term sits near 10⁻², far below a pure power law's head (Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `alpha` is negative or non-finite, or
    /// `cap <= 0`.
    pub fn with_cap(n: usize, alpha: f64, cap: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be >= 0");
        assert!(cap > 0.0, "cap must be positive");
        let raw: Vec<f64> = (0..n).map(|r| ((r + 1) as f64).powf(-alpha)).collect();
        let total: f64 = raw.iter().sum();
        let limit = cap * total;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in raw {
            acc += w.min(limit);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self {
            cdf,
            exponent: alpha,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent α.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - lo
    }

    /// Total probability mass of the top `k` ranks (`k` clamped to `n`).
    /// This is the paper's "accumulated popularity value of the top-1000
    /// terms".
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.cdf[k.min(self.cdf.len()) - 1]
    }

    /// Shannon entropy in bits.
    pub fn entropy_bits(&self) -> f64 {
        let mut h = 0.0;
        let mut prev = 0.0;
        for &c in &self.cdf {
            let p = c - prev;
            prev = c;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        h
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.rank_at(u)
    }

    /// Samples `k` *distinct* ranks (rejection sampling; `k` must be far
    /// smaller than `n`, which holds for 2–3-term filters over a large
    /// vocabulary).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<usize> {
        assert!(
            k <= self.len(),
            "cannot draw more distinct ranks than exist"
        );
        let mut out = Vec::with_capacity(k);
        // With k ≤ ~30 and n in the hundreds of thousands, rejections are
        // rare even under heavy skew; fall back to sequential fill if the
        // distribution is so degenerate that rejection stalls.
        let mut attempts = 0usize;
        while out.len() < k {
            let r = self.sample(rng);
            if !out.contains(&r) {
                out.push(r);
            }
            attempts += 1;
            if attempts > 100 * k + 1000 {
                for r in 0..self.len() {
                    if out.len() == k {
                        break;
                    }
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out
    }

    /// Maps a uniform `u ∈ [0,1)` to a rank (inverse CDF).
    pub fn rank_at(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cap_limits_head_probability() {
        let z = Zipf::with_cap(1_000, 1.2, 0.01);
        // Clipping before renormalizing can push slightly past the nominal
        // cap; it must stay in its neighbourhood and far below the uncapped
        // head.
        assert!(z.probability(0) < 0.02, "p0 = {}", z.probability(0));
        assert!(Zipf::new(1_000, 1.2).probability(0) > 0.1);
        let total: f64 = (0..1_000).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(100, 0.9);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
        assert!((z.entropy_bits() - 10.0f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn head_mass_monotone_in_alpha() {
        let flat = Zipf::new(1000, 0.5);
        let steep = Zipf::new(1000, 1.5);
        assert!(steep.head_mass(10) > flat.head_mass(10));
        assert!((flat.head_mass(1000) - 1.0).abs() < 1e-9);
        assert_eq!(flat.head_mass(0), 0.0);
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = f64::from(counts[r]) / f64::from(n);
            let exp = z.probability(r);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {r}: empirical {emp} vs expected {exp}"
            );
        }
    }

    #[test]
    fn sample_distinct_returns_unique_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = z.sample_distinct(3, &mut rng);
            assert_eq!(s.len(), 3);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn sample_distinct_handles_small_n() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = z.sample_distinct(3, &mut rng);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn rank_at_extremes() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.rank_at(0.0), 0);
        assert_eq!(z.rank_at(0.999_999_999), 9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
