//! Measurement helpers for the evaluation figures.

use serde::{Deserialize, Serialize};

/// Shannon entropy (bits) of an empirical count distribution.
///
/// This is the statistic the paper reports for the TREC term-frequency
/// distributions (9.4473 for AP, 6.7593 for WT). Zero counts contribute
/// nothing.
///
/// # Examples
///
/// ```
/// assert!((move_stats::entropy_bits(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
/// assert_eq!(move_stats::entropy_bits(&[10, 0, 0]), 0.0);
/// ```
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Sorts values descending and returns `(rank, value)` pairs — the ranked
/// series plotted in Figs. 4, 5, 9a and 9b. Ranks start at 1 (matching the
/// paper's log-scale x-axes).
///
/// # Examples
///
/// ```
/// let s = move_stats::ranked_series(&[0.1, 0.7, 0.2]);
/// assert_eq!(s, vec![(1, 0.7), (2, 0.2), (3, 0.1)]);
/// ```
pub fn ranked_series(values: &[f64]) -> Vec<(usize, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i + 1, v))
        .collect()
}

/// Five-number-style summary of a sample, plus dispersion measures used for
/// the load-balance discussion (Figs. 9a–9b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Coefficient of variation (`std_dev / mean`; 0 when the mean is 0).
    pub cv: f64,
    /// Gini coefficient in `[0, 1)` — 0 is perfectly even load.
    pub gini: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite or negative
    /// entries (loads are non-negative by construction).
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty sample");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "values must be finite and non-negative"
        );
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std_dev = var.sqrt();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(0.0f64, f64::max);
        let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };

        // Gini: mean absolute difference over twice the mean.
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let gini = if mean > 0.0 {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, v)| (2.0 * (i as f64 + 1.0) - n - 1.0) * v)
                .sum();
            weighted / (n * n * mean)
        } else {
            0.0
        };

        Self {
            count: values.len(),
            mean,
            std_dev,
            min,
            max,
            cv,
            gini,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_is_log2_n() {
        assert!((entropy_bits(&[5, 5, 5, 5, 5, 5, 5, 5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_skewed_below_uniform() {
        let skew = entropy_bits(&[100, 1, 1, 1]);
        let unif = entropy_bits(&[25, 25, 25, 25]);
        assert!(skew < unif);
    }

    #[test]
    fn entropy_empty_and_zero() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0, 0]), 0.0);
    }

    #[test]
    fn ranked_series_descending_from_rank_one() {
        let s = ranked_series(&[3.0, 1.0, 2.0]);
        assert_eq!(s[0], (1, 3.0));
        assert_eq!(s[2], (3, 1.0));
    }

    #[test]
    fn summary_even_load() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv, 0.0);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn summary_skewed_load_has_high_gini() {
        let even = Summary::of(&[1.0, 1.0, 1.0, 1.0]);
        let skew = Summary::of(&[4.0, 0.0, 0.0, 0.0]);
        assert!(skew.gini > even.gini);
        assert!(skew.gini > 0.7);
        assert_eq!(skew.max, 4.0);
        assert_eq!(skew.min, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
