//! Property tests for the statistics toolkit.

use move_stats::{apportion, entropy_bits, ranked_series, Discrete, Summary, Zipf};
use proptest::prelude::*;

proptest! {
    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..2000, alpha in 0.0f64..3.0) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (0..n).map(|r| z.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Monotone non-increasing in rank.
        for r in 1..n {
            prop_assert!(z.probability(r) <= z.probability(r - 1) + 1e-12);
        }
        prop_assert!(z.entropy_bits() <= (n as f64).log2() + 1e-9);
    }

    #[test]
    fn capped_zipf_respects_cap_shape(n in 10usize..2000, alpha in 0.0f64..3.0, cap in 0.001f64..0.5) {
        let z = Zipf::with_cap(n, alpha, cap);
        let total: f64 = (0..n).map(|r| z.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Renormalization can push past the nominal cap, but the head stays
        // flattened relative to the uncapped law.
        let raw = Zipf::new(n, alpha);
        prop_assert!(z.probability(0) <= raw.probability(0).max(cap * 2.0) + 1e-9);
    }

    #[test]
    fn apportion_is_exact_and_proportionalish(
        weights in prop::collection::vec(0.0f64..100.0, 1..30),
        total in 0u64..10_000,
    ) {
        let shares = apportion(&weights, total, 1);
        let k = weights.iter().filter(|&&w| w > 0.0).count() as u64;
        let expect = total.max(k);
        prop_assert_eq!(shares.iter().sum::<u64>(), if k == 0 { 0 } else { expect });
        for (s, w) in shares.iter().zip(&weights) {
            if *w == 0.0 {
                prop_assert_eq!(*s, 0);
            } else {
                prop_assert!(*s >= 1);
            }
        }
    }

    #[test]
    fn ranked_series_is_a_permutation(values in prop::collection::vec(0.0f64..1e6, 0..100)) {
        let s = ranked_series(&values);
        prop_assert_eq!(s.len(), values.len());
        prop_assert!(s.windows(2).all(|w| w[0].1 >= w[1].1));
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let mut got: Vec<f64> = s.iter().map(|&(_, v)| v).collect();
        got.sort_by(f64::total_cmp);
        prop_assert_eq!(got, sorted);
    }

    #[test]
    fn summary_bounds(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!((0.0..1.0 + 1e-9).contains(&s.gini));
    }

    #[test]
    fn entropy_is_maximal_for_uniform(counts in prop::collection::vec(1u64..100, 1..50)) {
        let h = entropy_bits(&counts);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9);
        let uniform: Vec<u64> = vec![7; counts.len()];
        prop_assert!(entropy_bits(&uniform) + 1e-9 >= h || counts.len() == 1);
    }

    #[test]
    fn discrete_sampling_in_range(weights in prop::collection::vec(0.01f64..10.0, 1..20), seed in any::<u64>()) {
        use rand::SeedableRng;
        let d = Discrete::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) < weights.len());
        }
    }
}
