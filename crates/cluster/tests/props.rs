//! Property tests for the ring and topology.

use move_cluster::{Ring, Topology};
use move_types::NodeId;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ring_ownership_partitions_the_space(nodes in 1u32..40, keys in prop::collection::vec(any::<u64>(), 1..200)) {
        let ring = Ring::new((0..nodes).map(NodeId), 16);
        let shares = ring.ownership();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in &keys {
            prop_assert!(ring.home_of(k).0 < nodes);
        }
    }

    #[test]
    fn preference_lists_are_prefixes_of_each_other(nodes in 2u32..30, key in any::<u64>()) {
        let ring = Ring::new((0..nodes).map(NodeId), 16);
        let short = ring.preference_list(&key, 2);
        let long = ring.preference_list(&key, 5.min(nodes as usize));
        prop_assert_eq!(&long[..short.len()], &short[..]);
    }

    #[test]
    fn node_removal_only_moves_its_keys(nodes in 3u32..20, victim in 0u32..20, keys in prop::collection::vec(any::<u64>(), 1..100)) {
        prop_assume!(victim < nodes);
        let mut ring = Ring::new((0..nodes).map(NodeId), 16);
        let before: Vec<NodeId> = keys.iter().map(|k| ring.home_of(k)).collect();
        ring.remove_node(NodeId(victim));
        for (k, old) in keys.iter().zip(before) {
            let new = ring.home_of(k);
            if old != NodeId(victim) {
                prop_assert_eq!(new, old);
            } else {
                prop_assert!(new != NodeId(victim));
            }
        }
    }

    #[test]
    fn topology_is_a_partition(nodes in 1usize..100, racks in 1usize..12) {
        let t = Topology::uniform(nodes, racks);
        let mut seen = vec![false; nodes];
        for members in t.racks() {
            for m in members {
                prop_assert!(!seen[m.as_usize()], "node in two racks");
                seen[m.as_usize()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
