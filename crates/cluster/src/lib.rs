//! A Dynamo/Cassandra-style cluster substrate for the MOVE reproduction.
//!
//! The paper deploys MOVE on Apache Cassandra 0.8.7 across ~100 nodes of the
//! Ukko cluster. This crate rebuilds the pieces of that substrate the system
//! actually depends on, in process and deterministic:
//!
//! * [`ring`] — a consistent-hash ring with virtual nodes giving the O(1)
//!   `key → home node` mapping (`put`/`get` routing);
//! * [`topology`] — racks and the snitch used by rack-aware replica
//!   placement (§V, "Selection of allocated nodes");
//! * [`membership`] — gossip-style membership with heartbeats, failure
//!   detection and failure injection (random or rack-correlated);
//! * [`store`] — an LSM-flavoured column-family store (memtable → sorted
//!   runs → compaction), the BigTable data model Cassandra implements;
//! * [`layout`] — versioned cluster layouts with staged role changes and a
//!   movement-minimising partition assignment (elastic growth, modeled on
//!   Garage's `ClusterLayout`);
//! * [`cost`] — the latency cost model of paper Eq. 1/2 (`y_d` transfer,
//!   `y_p` per-posting match, plus per-list seek and a disk-capacity knee);
//! * [`sim`] — a discrete-event queueing simulator turning per-node service
//!   times into makespan/throughput/latency figures;
//! * [`cluster`] — [`SimCluster`], tying the pieces together.
//!
//! Everything is functional — routing really routes, stores really store —
//! while *time* is virtual: operations charge costs to per-node ledgers, and
//! the event simulator converts those into the throughput numbers of the
//! paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod layout;
pub mod membership;
pub mod ring;
pub mod sim;
pub mod store;
pub mod topology;

mod hash;

pub use cluster::{FailureMode, SimCluster};
pub use cost::{CostLedger, CostModel, LedgerBoard};
pub use hash::stable_hash64;
pub use layout::{partition_of_term, ClusterLayout, LayoutDelta, NodeRole, RoleChange, PARTITIONS};
pub use membership::{Membership, NodeStatus};
pub use ring::{Ring, TermHomeTable};
pub use sim::{Job, QueueSim, SimOutcome, Stage, Task};
pub use store::{ColumnFamily, KvStore};
pub use topology::Topology;
