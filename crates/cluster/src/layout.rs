//! Versioned cluster layouts with staged role changes and an incremental,
//! movement-minimising partition assignment — the elastic-growth
//! counterpart of the ring (modeled on Garage's `ClusterLayout`).
//!
//! The term key space is folded onto a fixed set of [`PARTITIONS`]
//! *term-partitions* ([`partition_of_term`]); a [`ClusterLayout`] maps each
//! partition to the node that *homes* it. Role changes (join, leave,
//! weight change) are **staged** first and take effect only at
//! [`ClusterLayout::commit`], which recomputes the assignment
//! *incrementally*: each node's target occupancy is apportioned from its
//! weight (largest-remainder method), and only the partitions that must
//! leave an overfull node are reassigned — every other `partition → node`
//! edge survives the version bump. A from-scratch assignment
//! ([`ClusterLayout::fresh_assignment`]) would scatter partitions across
//! all nodes; the incremental recompute provably moves the minimum number
//! needed to reach the new targets, which is what keeps a live node join
//! cheap (only the moved partitions' filter state is streamed).

use crate::ring::Ring;
use crate::stable_hash64;
use move_types::{NodeId, RackId};
use std::sync::Arc;

/// Number of term-partitions the key space is folded onto. Fixed for the
/// lifetime of a cluster: routing state is exchanged per partition, so the
/// unit of data movement is `1/256` of the term space.
pub const PARTITIONS: usize = 256;

/// The partition a term belongs to. Pure and stable: the same term always
/// lands in the same partition, whatever the layout version.
#[must_use]
pub fn partition_of_term(term: move_types::TermId) -> usize {
    (stable_hash64(&("part", term.0)) % PARTITIONS as u64) as usize
}

/// A node's role in a layout: where it sits and how much of the partition
/// space it should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRole {
    /// The rack the node sits in (drives rack-aware placement).
    pub rack: RackId,
    /// Relative share of the partition space (0 = carries nothing, e.g. a
    /// node that has left).
    pub weight: u64,
}

/// A staged change to the role set, applied at the next
/// [`ClusterLayout::commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleChange {
    /// A new node joins; it receives the next free node id at commit time.
    Join {
        /// Rack of the joining node.
        rack: RackId,
        /// Weight of the joining node.
        weight: u64,
    },
    /// A node leaves: its weight drops to 0 and its partitions are
    /// redistributed (the id is never reused — indices stay stable).
    Leave {
        /// The leaving node.
        node: NodeId,
    },
    /// A node's weight changes in place.
    Weight {
        /// The re-weighted node.
        node: NodeId,
        /// Its new weight.
        weight: u64,
    },
}

/// What one [`ClusterLayout::commit`] changed: the new version plus every
/// `(partition, old home, new home)` edge that moved. Everything *not*
/// listed here kept its pre-commit home — the quantity a live rebalance
/// has to stream is exactly `moved`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutDelta {
    /// The layout version this delta produced.
    pub version: u64,
    /// Moved partitions as `(partition, old home, new home)`.
    pub moved: Vec<(usize, NodeId, NodeId)>,
    /// Nodes that joined in this commit, in id order.
    pub joined: Vec<NodeId>,
}

/// A versioned `partition → node` layout with staged role changes.
///
/// # Examples
///
/// ```
/// use move_cluster::{ClusterLayout, Ring, RoleChange, PARTITIONS};
/// use move_types::{NodeId, RackId};
///
/// let ring = Ring::new((0..4).map(NodeId), 64);
/// let mut layout = ClusterLayout::seed(&ring, 2);
/// layout.stage(RoleChange::Join { rack: RackId(0), weight: 1 });
/// let delta = layout.commit();
/// assert_eq!(delta.joined, vec![NodeId(4)]);
/// // Every moved partition landed on the joiner; nothing else moved.
/// assert!(delta.moved.iter().all(|&(_, _, new)| new == NodeId(4)));
/// assert!(delta.moved.len() < PARTITIONS);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterLayout {
    version: u64,
    roles: Vec<NodeRole>,
    /// `assignment[partition]` = home node id. Shared (`Arc`) so frozen
    /// routing tables alias it without copying; commits copy-on-write.
    assignment: Arc<Vec<u32>>,
    staging: Vec<RoleChange>,
}

impl ClusterLayout {
    /// Seeds version 0 from a ring: every current ring member gets weight 1
    /// in its round-robin rack, and each partition is homed where the ring
    /// homes the partition's token. Seeding is *not* a commit — nothing is
    /// considered moved.
    #[must_use]
    pub fn seed(ring: &Ring, racks: usize) -> Self {
        let racks = racks.max(1);
        let roles: Vec<NodeRole> = ring
            .members()
            .iter()
            .map(|n| NodeRole {
                rack: RackId(n.as_usize() as u32 % racks as u32),
                weight: 1,
            })
            .collect();
        let mut assignment: Vec<u32> = (0..PARTITIONS)
            .map(|p| ring.home_of(&("part", p as u32)).0)
            .collect();
        // Settle onto the exact apportioned targets right away (version 0
        // precedes any data, so this costs nothing) — from a settled
        // layout, a single weight-1 join moves partitions *only onto the
        // joiner*, which is both the minimal movement and what keeps the
        // live migration engine's copy traffic one-directional.
        let targets = Self::targets(&roles);
        let _ = Self::rebalance(&targets, &mut assignment);
        Self {
            version: 0,
            roles,
            assignment: Arc::new(assignment),
            staging: Vec::new(),
        }
    }

    /// The committed layout version (bumped by every [`Self::commit`]).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The committed roles, indexed by node id.
    #[must_use]
    pub fn roles(&self) -> &[NodeRole] {
        &self.roles
    }

    /// Number of node ids the layout knows (including zero-weight leavers).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.roles.len()
    }

    /// The committed `partition → node` assignment (length
    /// [`PARTITIONS`]). The `Arc` lets routing snapshots alias it.
    #[must_use]
    pub fn assignment(&self) -> &Arc<Vec<u32>> {
        &self.assignment
    }

    /// The committed home of one partition.
    #[must_use]
    pub fn home_of_partition(&self, partition: usize) -> NodeId {
        NodeId(self.assignment[partition % PARTITIONS])
    }

    /// Stages a role change for the next commit.
    pub fn stage(&mut self, change: RoleChange) {
        self.staging.push(change);
    }

    /// The changes staged so far, in staging order.
    #[must_use]
    pub fn staged(&self) -> &[RoleChange] {
        &self.staging
    }

    /// Whether any change is staged.
    #[must_use]
    pub fn has_staged(&self) -> bool {
        !self.staging.is_empty()
    }

    /// Discards every staged change.
    pub fn revert_staged(&mut self) {
        self.staging.clear();
    }

    /// Applies the staged role changes and recomputes the assignment
    /// incrementally, returning exactly what moved.
    ///
    /// Movement is minimal for the new targets: each node's target
    /// occupancy is its weight-proportional share of [`PARTITIONS`]
    /// (largest-remainder apportionment, ties to the lower node id), and
    /// the recompute only evicts partitions from nodes *above* their
    /// target, handing them to nodes below theirs in id order. Any
    /// assignment meeting the same targets must move at least
    /// `Σ max(0, occupancy − target)` partitions, which is precisely what
    /// this moves.
    ///
    /// Committing with nothing staged bumps the version and moves nothing
    /// unless occupancy already disagrees with the targets. If every node
    /// has weight 0 the assignment is left untouched (there is nowhere to
    /// move anything).
    pub fn commit(&mut self) -> LayoutDelta {
        let staged = std::mem::take(&mut self.staging);
        let mut joined = Vec::new();
        for change in staged {
            match change {
                RoleChange::Join { rack, weight } => {
                    let id = NodeId(self.roles.len() as u32);
                    self.roles.push(NodeRole { rack, weight });
                    joined.push(id);
                }
                RoleChange::Leave { node } => {
                    if let Some(role) = self.roles.get_mut(node.as_usize()) {
                        role.weight = 0;
                    }
                }
                RoleChange::Weight { node, weight } => {
                    if let Some(role) = self.roles.get_mut(node.as_usize()) {
                        role.weight = weight;
                    }
                }
            }
        }
        self.version += 1;
        let targets = Self::targets(&self.roles);
        if targets.iter().all(|&t| t == 0) {
            return LayoutDelta {
                version: self.version,
                moved: Vec::new(),
                joined,
            };
        }
        let moved = Self::rebalance(&targets, Arc::make_mut(&mut self.assignment).as_mut_slice());
        LayoutDelta {
            version: self.version,
            moved,
            joined,
        }
    }

    /// Rewrites `assignment` in place to meet `targets` with the minimum
    /// number of moves, returning the moves as `(partition, old, new)` in
    /// partition order. Only partitions on nodes *above* their target are
    /// evicted (lowest-numbered first); the pool is handed to nodes below
    /// their target in id order.
    fn rebalance(targets: &[u64], assignment: &mut [u32]) -> Vec<(usize, NodeId, NodeId)> {
        let mut occupancy = vec![0u64; targets.len()];
        for &owner in assignment.iter() {
            if let Some(c) = occupancy.get_mut(owner as usize) {
                *c += 1;
            }
        }
        // Evict the lowest-numbered excess partitions of each overfull
        // node into a pool...
        let mut pool: Vec<(usize, NodeId)> = Vec::new();
        for (p, owner) in assignment.iter_mut().enumerate() {
            let o = *owner as usize;
            let over = match (occupancy.get(o), targets.get(o)) {
                (Some(&have), Some(&want)) => have > want,
                // An owner outside the role table (impossible for a layout
                // built through this API) is always evicted.
                (Some(_) | None, None) | (None, Some(_)) => true,
            };
            if over {
                pool.push((p, NodeId(*owner)));
                if let Some(c) = occupancy.get_mut(o) {
                    *c -= 1;
                }
            }
        }
        // ...and hand the pool to underfull nodes in id order.
        let mut moved = Vec::new();
        let mut next = pool.into_iter();
        for (i, &target) in targets.iter().enumerate() {
            while occupancy[i] < target {
                if let Some((p, old)) = next.next() {
                    assignment[p] = i as u32;
                    occupancy[i] += 1;
                    moved.push((p, old, NodeId(i as u32)));
                } else {
                    break;
                }
            }
        }
        moved.sort_unstable_by_key(|&(p, _, _)| p);
        moved
    }

    /// Weight-proportional target occupancy per node: largest-remainder
    /// apportionment of [`PARTITIONS`] seats, ties broken toward the lower
    /// node id. Sums to [`PARTITIONS`] unless every weight is 0.
    #[must_use]
    pub fn targets(roles: &[NodeRole]) -> Vec<u64> {
        let total: u128 = roles.iter().map(|r| u128::from(r.weight)).sum();
        if total == 0 {
            return vec![0; roles.len()];
        }
        let mut base = Vec::with_capacity(roles.len());
        let mut remainders: Vec<(usize, u128)> = Vec::with_capacity(roles.len());
        for (i, r) in roles.iter().enumerate() {
            let num = PARTITIONS as u128 * u128::from(r.weight);
            base.push((num / total) as u64);
            remainders.push((i, num % total));
        }
        let assigned: u64 = base.iter().sum();
        let mut leftover = (PARTITIONS as u64).saturating_sub(assigned);
        remainders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (i, _) in remainders {
            if leftover == 0 {
                break;
            }
            base[i] += 1;
            leftover -= 1;
        }
        base
    }

    /// A from-scratch assignment over `roles` — highest-random-weight
    /// (rendezvous) hashing across the positive-weight nodes, blind to any
    /// previous assignment. The yardstick the incremental recompute is
    /// judged against: a fresh assignment after a membership change
    /// re-homes far more partitions than [`Self::commit`] moves.
    #[must_use]
    pub fn fresh_assignment(roles: &[NodeRole]) -> Vec<u32> {
        (0..PARTITIONS)
            .map(|p| {
                let mut best = 0u32;
                let mut best_score = 0u64;
                let mut found = false;
                for (i, r) in roles.iter().enumerate() {
                    if r.weight == 0 {
                        continue;
                    }
                    let score = stable_hash64(&("fresh", p as u32, i as u32));
                    if !found || score > best_score {
                        best = i as u32;
                        best_score = score;
                        found = true;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_types::TermId;

    fn seeded(nodes: u32, racks: usize) -> ClusterLayout {
        let ring = Ring::new((0..nodes).map(NodeId), 64);
        ClusterLayout::seed(&ring, racks)
    }

    fn occupancy(layout: &ClusterLayout) -> Vec<u64> {
        let mut counts = vec![0u64; layout.nodes()];
        for &owner in layout.assignment().iter() {
            counts[owner as usize] += 1;
        }
        counts
    }

    #[test]
    fn partition_of_term_is_stable_and_in_range() {
        for t in 0..10_000u32 {
            let p = partition_of_term(TermId(t));
            assert!(p < PARTITIONS);
            assert_eq!(p, partition_of_term(TermId(t)));
        }
        // Every partition is hit by some term in a modest id space.
        let mut seen = vec![false; PARTITIONS];
        for t in 0..10_000u32 {
            seen[partition_of_term(TermId(t))] = true;
        }
        assert!(seen.iter().all(|&s| s), "some partition never used");
    }

    #[test]
    fn seed_is_ring_derived_but_settled() {
        let ring = Ring::new((0..8).map(NodeId), 64);
        let layout = ClusterLayout::seed(&ring, 2);
        assert_eq!(layout.version(), 0);
        assert_eq!(layout.nodes(), 8);
        // Settled: occupancy meets the apportioned targets exactly, so the
        // first join's movement is one-directional (onto the joiner).
        assert_eq!(occupancy(&layout), ClusterLayout::targets(layout.roles()));
        // Ring-derived: most partitions still sit where the ring homes
        // them (only the seed's balance corrections deviate).
        let unchanged = (0..PARTITIONS)
            .filter(|&p| layout.home_of_partition(p) == ring.home_of(&("part", p as u32)))
            .count();
        assert!(
            unchanged > PARTITIONS / 2,
            "settling rewrote {} of {PARTITIONS} partitions",
            PARTITIONS - unchanged
        );
        // Deterministic: the same ring seeds the same layout.
        let again = ClusterLayout::seed(&ring, 2);
        assert_eq!(layout.assignment().as_ref(), again.assignment().as_ref());
    }

    #[test]
    fn join_moves_strictly_less_than_a_fresh_reallocation() {
        // The acceptance criterion: the incremental recompute must move
        // strictly fewer partitions than a from-scratch assignment of the
        // post-join role set would.
        let mut layout = seeded(8, 2);
        let before = layout.assignment().as_ref().clone();
        layout.stage(RoleChange::Join {
            rack: RackId(0),
            weight: 1,
        });
        let delta = layout.commit();
        assert_eq!(delta.joined, vec![NodeId(8)]);
        assert!(!delta.moved.is_empty(), "a join must move something");
        let fresh = ClusterLayout::fresh_assignment(layout.roles());
        let fresh_moves = before
            .iter()
            .zip(fresh.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            delta.moved.len() < fresh_moves,
            "incremental moved {} but a fresh assignment moves {}",
            delta.moved.len(),
            fresh_moves
        );
        // And the incremental move count is exactly the apportionment
        // excess — nothing gratuitous.
        let targets = ClusterLayout::targets(layout.roles());
        let mut before_counts = vec![0u64; layout.nodes()];
        for &o in &before {
            before_counts[o as usize] += 1;
        }
        let minimum: u64 = before_counts
            .iter()
            .zip(targets.iter())
            .map(|(&have, &want)| have.saturating_sub(want))
            .sum();
        assert_eq!(delta.moved.len() as u64, minimum);
    }

    #[test]
    fn pure_join_moves_only_onto_the_joiner() {
        let mut layout = seeded(6, 2);
        layout.stage(RoleChange::Join {
            rack: RackId(1),
            weight: 1,
        });
        let delta = layout.commit();
        assert_eq!(delta.version, 1);
        for &(p, old, new) in &delta.moved {
            assert!(p < PARTITIONS);
            assert_eq!(new, NodeId(6), "partition {p} moved to {new}, not joiner");
            assert_ne!(old, new);
        }
        // The delta is consistent with the committed assignment.
        for &(p, _, new) in &delta.moved {
            assert_eq!(layout.home_of_partition(p), new);
        }
    }

    #[test]
    fn commit_meets_the_apportioned_targets_exactly() {
        let mut layout = seeded(5, 2);
        layout.stage(RoleChange::Join {
            rack: RackId(0),
            weight: 2, // double-weight joiner
        });
        let delta = layout.commit();
        assert!(!delta.moved.is_empty());
        let targets = ClusterLayout::targets(layout.roles());
        assert_eq!(targets.iter().sum::<u64>(), PARTITIONS as u64);
        assert_eq!(occupancy(&layout), targets);
        // The double-weight node carries about twice a unit share.
        assert!(targets[5] >= 2 * targets[0] - 1);
    }

    #[test]
    fn leave_moves_exactly_the_leavers_partitions() {
        let mut layout = seeded(8, 2);
        let before = layout.assignment().as_ref().clone();
        let leaver = NodeId(3);
        let leaver_load = before.iter().filter(|&&o| o == leaver.0).count();
        layout.stage(RoleChange::Leave { node: leaver });
        let delta = layout.commit();
        assert_eq!(delta.moved.len(), leaver_load);
        assert!(delta.moved.iter().all(|&(_, old, _)| old == leaver));
        assert!(occupancy(&layout)[3] == 0);
        // Untouched partitions kept their homes.
        for (p, &owner) in before.iter().enumerate() {
            if owner != leaver.0 {
                assert_eq!(layout.home_of_partition(p), NodeId(owner));
            }
        }
    }

    #[test]
    fn empty_commit_bumps_version_and_moves_nothing() {
        let mut layout = seeded(4, 2);
        let before = layout.assignment().as_ref().clone();
        let delta = layout.commit();
        assert_eq!(delta.version, 1);
        assert_eq!(layout.version(), 1);
        // The seed is already settled, so an empty commit is a fixed point.
        assert!(delta.moved.is_empty(), "empty commit must move nothing");
        assert_eq!(layout.assignment().as_ref(), &before);
    }

    #[test]
    fn single_node_cluster_grows_to_two() {
        // The smallest possible grow: N=1 → 2. The lone node owns every
        // partition, so exactly the joiner's apportioned share must move —
        // about half the space — and every move lands on the joiner.
        let mut layout = seeded(1, 1);
        assert_eq!(occupancy(&layout), vec![PARTITIONS as u64]);
        layout.stage(RoleChange::Join {
            rack: RackId(0),
            weight: 1,
        });
        let delta = layout.commit();
        assert_eq!(delta.joined, vec![NodeId(1)]);
        let targets = ClusterLayout::targets(layout.roles());
        assert_eq!(targets, vec![PARTITIONS as u64 / 2, PARTITIONS as u64 / 2]);
        assert_eq!(delta.moved.len() as u64, targets[1]);
        assert!(delta
            .moved
            .iter()
            .all(|&(_, old, new)| { old == NodeId(0) && new == NodeId(1) }));
        assert_eq!(occupancy(&layout), targets);
    }

    #[test]
    fn repeated_grow_is_idempotent_between_joins() {
        // Each join moves only what the new targets require; a commit with
        // nothing staged in between is a fixed point (no gratuitous churn),
        // and versions grow strictly monotonically throughout.
        let mut layout = seeded(2, 1);
        let mut last_version = layout.version();
        for expected_id in 2..6u32 {
            layout.stage(RoleChange::Join {
                rack: RackId(0),
                weight: 1,
            });
            let delta = layout.commit();
            assert!(delta.version > last_version, "versions must be monotonic");
            last_version = delta.version;
            assert_eq!(delta.joined, vec![NodeId(expected_id)]);
            assert!(delta
                .moved
                .iter()
                .all(|&(_, _, new)| new == NodeId(expected_id)));
            assert_eq!(occupancy(&layout), ClusterLayout::targets(layout.roles()));
            // Settled: an empty re-commit moves nothing.
            let before = layout.assignment().as_ref().clone();
            let idle = layout.commit();
            assert!(idle.version > last_version);
            last_version = idle.version;
            assert!(idle.moved.is_empty(), "settled layout re-committed moves");
            assert!(idle.joined.is_empty());
            assert_eq!(layout.assignment().as_ref(), &before);
        }
    }

    #[test]
    fn revert_staged_discards_changes() {
        let mut layout = seeded(4, 2);
        layout.stage(RoleChange::Join {
            rack: RackId(0),
            weight: 1,
        });
        assert!(layout.has_staged());
        assert_eq!(layout.staged().len(), 1);
        layout.revert_staged();
        assert!(!layout.has_staged());
        let delta = layout.commit();
        assert!(delta.joined.is_empty());
        assert_eq!(layout.nodes(), 4);
    }

    #[test]
    fn weight_change_shifts_load_toward_the_heavier_node() {
        let mut layout = seeded(6, 2);
        layout.commit(); // settle onto exact targets first
        let before = occupancy(&layout);
        layout.stage(RoleChange::Weight {
            node: NodeId(2),
            weight: 3,
        });
        let delta = layout.commit();
        let after = occupancy(&layout);
        assert!(after[2] > before[2], "heavier node must gain partitions");
        assert!(delta.moved.iter().all(|&(_, _, new)| new == NodeId(2)));
    }

    #[test]
    fn all_weights_zero_leaves_assignment_untouched() {
        let mut layout = seeded(3, 1);
        let before = layout.assignment().as_ref().clone();
        for n in 0..3u32 {
            layout.stage(RoleChange::Leave { node: NodeId(n) });
        }
        let delta = layout.commit();
        assert!(delta.moved.is_empty());
        assert_eq!(layout.assignment().as_ref(), &before);
    }

    #[test]
    fn targets_apportion_all_partitions() {
        let roles = vec![
            NodeRole {
                rack: RackId(0),
                weight: 1,
            },
            NodeRole {
                rack: RackId(1),
                weight: 2,
            },
            NodeRole {
                rack: RackId(0),
                weight: 4,
            },
        ];
        let t = ClusterLayout::targets(&roles);
        assert_eq!(t.iter().sum::<u64>(), PARTITIONS as u64);
        assert!(t[2] > t[1] && t[1] > t[0]);
    }

    #[test]
    fn fresh_assignment_skips_zero_weight_nodes() {
        let mut roles = vec![
            NodeRole {
                rack: RackId(0),
                weight: 1,
            };
            5
        ];
        roles[1].weight = 0;
        let fresh = ClusterLayout::fresh_assignment(&roles);
        assert_eq!(fresh.len(), PARTITIONS);
        assert!(fresh.iter().all(|&o| o != 1 && (o as usize) < 5));
    }
}
