//! The consistent-hash ring.

use crate::layout::partition_of_term;
use crate::stable_hash64;
use move_types::{NodeId, TermId};
use std::cell::RefCell;
use std::sync::Arc;

/// Upper bound on memoized term-home entries (16 MiB of `u32`s). Term ids
/// beyond this are answered from the ring directly instead of cached, so a
/// pathological id space cannot balloon the cache.
pub(crate) const TERM_HOME_CACHE_MAX: usize = 1 << 22;

/// Sentinel for "not yet computed" in the term-home cache. Never a valid
/// physical node id (clusters are far smaller than `u32::MAX` nodes).
const TERM_HOME_UNSET: u32 = u32::MAX;

/// How a [`TermHomeTable`] answers term ids beyond its precomputed range.
#[derive(Debug, Clone)]
enum Fallback {
    /// `(token, owner)` copy of the ring — binary search, exactly what the
    /// ring itself would do.
    Vnodes(Vec<(u64, NodeId)>),
    /// A committed layout's `partition → node` assignment — fold the term
    /// onto its partition and read the owner.
    Partitions(Arc<Vec<u32>>),
}

/// A frozen, thread-safe term→home table, built from a [`Ring`] or a
/// committed cluster layout at a point in time. The
/// [`Ring::home_of_term`] memoization is `RefCell`-based and therefore
/// exclusive-access only; concurrent readers (the router pool's routing
/// snapshots) instead freeze the current membership into this table, whose
/// lookups are a plain array read for precomputed term ids and a pure
/// fallback (vnode binary search or partition fold) otherwise — no locks,
/// no interior mutability, no stale answers (the table is rebuilt whenever
/// the control plane publishes a new snapshot epoch).
#[derive(Debug, Clone)]
pub struct TermHomeTable {
    /// Precomputed home node per dense term id.
    homes: Vec<u32>,
    /// Answers for term ids beyond `homes`.
    fallback: Fallback,
}

impl TermHomeTable {
    /// Freezes a layout-backed table: `homes[t]` =
    /// `assignment[partition_of_term(t)]`, and the fallback folds any id
    /// beyond the precomputed range onto its partition. Exact for *all*
    /// term ids, not just the precomputed ones.
    pub(crate) fn from_partitions(homes: Vec<u32>, assignment: Arc<Vec<u32>>) -> Self {
        Self {
            homes,
            fallback: Fallback::Partitions(assignment),
        }
    }

    /// The home node of a term: an array read when precomputed, otherwise
    /// the table's fallback (the same hash + binary search the ring
    /// performs, or the layout's partition fold). Answers are identical to
    /// the ring or layout the table was frozen from.
    #[must_use]
    pub fn home_of_term(&self, term: TermId) -> NodeId {
        if let Some(&raw) = self.homes.get(term.as_usize()) {
            return NodeId(raw);
        }
        match &self.fallback {
            Fallback::Vnodes(vnodes) => {
                let token = stable_hash64(&("term", term.0));
                let pos = vnodes.partition_point(|&(t, _)| t < token);
                let idx = if pos == vnodes.len() { 0 } else { pos };
                vnodes[idx].1
            }
            Fallback::Partitions(assignment) => NodeId(assignment[partition_of_term(term)]),
        }
    }

    /// Number of precomputed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether the table has no precomputed entries (lookups still work —
    /// they all take the binary-search path).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }
}

/// A consistent-hash ring with virtual nodes — the O(1)-hop DHT structure of
/// Dynamo/Cassandra (paper §II, "Key/value platforms"). Every key hashes to
/// a point on the 64-bit circle; the *home node* of the key is the physical
/// node owning the first virtual node at or after that point.
///
/// Virtual nodes (default 64 per physical node) smooth ownership so that
/// each node is responsible for a near-equal slice of the key space.
///
/// # Examples
///
/// ```
/// use move_cluster::Ring;
/// use move_types::NodeId;
///
/// let ring = Ring::new((0..4).map(NodeId), 64);
/// let home = ring.home_of(&"some key");
/// assert!(home.as_usize() < 4);
/// assert_eq!(home, ring.home_of(&"some key")); // stable
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(token, owner)` sorted by token.
    vnodes: Vec<(u64, NodeId)>,
    /// Physical members in insertion order.
    members: Vec<NodeId>,
    vnodes_per_node: usize,
    /// Membership epoch: bumped by every effective
    /// [`Ring::add_node`]/[`Ring::remove_node`]. Keys the term-home memo —
    /// a cache filled under an older epoch self-invalidates on first
    /// touch, so no code path has to remember an explicit clear.
    epoch: u64,
    /// Memoized [`Ring::home_of_term`] answers keyed by membership epoch.
    /// Term routing is the single hottest ring operation — every scheme
    /// resolves the home of every document term on every publish — and
    /// the answer only changes with membership, so a cache stamped with a
    /// stale epoch is discarded on first use instead of being trusted.
    /// Pure memoization: answers are identical with the cache disabled.
    term_homes: RefCell<TermHomeCache>,
}

/// The epoch-stamped memo behind [`Ring::home_of_term`]: `homes[term]` =
/// node id or [`TERM_HOME_UNSET`], valid only while `epoch` matches the
/// ring's current membership epoch.
#[derive(Debug, Clone, Default)]
struct TermHomeCache {
    epoch: u64,
    homes: Vec<u32>,
}

impl Ring {
    /// Builds a ring over `members` with `vnodes_per_node` virtual nodes
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `vnodes_per_node == 0`.
    pub fn new<I: IntoIterator<Item = NodeId>>(members: I, vnodes_per_node: usize) -> Self {
        let members: Vec<NodeId> = members.into_iter().collect();
        assert!(!members.is_empty(), "ring needs at least one node");
        assert!(vnodes_per_node > 0, "vnodes_per_node must be positive");
        let mut ring = Self {
            vnodes: Vec::with_capacity(members.len() * vnodes_per_node),
            members: Vec::new(),
            vnodes_per_node,
            epoch: 0,
            term_homes: RefCell::new(TermHomeCache::default()),
        };
        for n in members {
            ring.add_node(n);
        }
        ring
    }

    fn tokens_for(node: NodeId, vnodes: usize) -> impl Iterator<Item = u64> {
        (0..vnodes as u64).map(move |v| stable_hash64(&(node.0, v)))
    }

    /// Adds a physical node (no-op if already present).
    pub fn add_node(&mut self, node: NodeId) {
        if self.members.contains(&node) {
            return;
        }
        self.members.push(node);
        for token in Self::tokens_for(node, self.vnodes_per_node) {
            let pos = self.vnodes.partition_point(|&(t, _)| t < token);
            self.vnodes.insert(pos, (token, node));
        }
        self.epoch += 1;
    }

    /// Removes a physical node and all its virtual nodes (no-op if absent).
    ///
    /// # Panics
    ///
    /// Panics if removal would empty the ring.
    pub fn remove_node(&mut self, node: NodeId) {
        if !self.members.contains(&node) {
            return;
        }
        assert!(self.members.len() > 1, "cannot remove the last ring member");
        self.members.retain(|&m| m != node);
        self.vnodes.retain(|&(_, owner)| owner != node);
        self.epoch += 1;
    }

    /// The membership epoch: bumped by every effective
    /// [`Ring::add_node`]/[`Ring::remove_node`]. Keys the term-home memo
    /// and lets callers detect that routing answers may have changed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Physical members, in insertion order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of physical members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The home node of a raw token.
    pub fn home_of_token(&self, token: u64) -> NodeId {
        let pos = self.vnodes.partition_point(|&(t, _)| t < token);
        let idx = if pos == self.vnodes.len() { 0 } else { pos };
        self.vnodes[idx].1
    }

    /// The home node of any hashable key.
    pub fn home_of<T: std::hash::Hash + ?Sized>(&self, key: &T) -> NodeId {
        self.home_of_token(stable_hash64(key))
    }

    /// The home node of a term — where its posting list and filters live
    /// (paper §III-B). Memoized per term id: route computation and the
    /// statistics observer both resolve every document term, so the hash +
    /// vnode binary search would otherwise run twice per term per publish.
    /// The memo is keyed by [`Ring::epoch`]: entries filled under an older
    /// membership are discarded on first touch, never trusted.
    pub fn home_of_term(&self, term: TermId) -> NodeId {
        let idx = term.as_usize();
        {
            let cache = self.term_homes.borrow();
            if cache.epoch == self.epoch {
                if let Some(&raw) = cache.homes.get(idx) {
                    if raw != TERM_HOME_UNSET {
                        return NodeId(raw);
                    }
                }
            }
        }
        let home = self.home_of_token(stable_hash64(&("term", term.0)));
        if idx < TERM_HOME_CACHE_MAX {
            let mut cache = self.term_homes.borrow_mut();
            if cache.epoch != self.epoch {
                cache.homes.clear();
                cache.epoch = self.epoch;
            }
            if cache.homes.len() <= idx {
                cache.homes.resize(idx + 1, TERM_HOME_UNSET);
            }
            cache.homes[idx] = home.0;
        }
        home
    }

    /// Drops every memoized [`Ring::home_of_term`] answer immediately.
    ///
    /// The memo self-invalidates on membership change (it is keyed by
    /// [`Ring::epoch`]), but a *layout* change — a staged join committed by
    /// `retire_join` — re-points term partitions without touching ring
    /// membership, so entries filled before the commit would otherwise
    /// survive it and serve the moved terms' pre-join homes. Callers that
    /// re-home terms outside the ring's own membership operations must
    /// call this at the point the new homes become authoritative.
    pub fn invalidate_term_homes(&self) {
        let mut cache = self.term_homes.borrow_mut();
        cache.homes.clear();
    }

    /// Number of term-home answers currently memoized — diagnostic for
    /// cache-invalidation tests; answers never depend on it.
    #[must_use]
    pub fn memoized_term_homes(&self) -> usize {
        self.term_homes
            .borrow()
            .homes
            .iter()
            .filter(|&&h| h != TERM_HOME_UNSET)
            .count()
    }

    /// Freezes a thread-safe [`TermHomeTable`] with precomputed homes for
    /// term ids `0..terms` (capped at the memoization bound so a
    /// pathological id space cannot balloon the table). Ids beyond the
    /// precomputed range are answered from the table's own vnode copy.
    ///
    /// Unlike the interior-mutability cache this does not change with
    /// membership: callers freeze a fresh table per snapshot epoch.
    #[must_use]
    pub fn freeze_term_homes(&self, terms: usize) -> TermHomeTable {
        let n = terms.min(TERM_HOME_CACHE_MAX);
        let homes = (0..n)
            .map(|i| self.home_of_token(stable_hash64(&("term", i as u32))).0)
            .collect();
        TermHomeTable {
            homes,
            fallback: Fallback::Vnodes(self.vnodes.clone()),
        }
    }

    /// The first `n` *distinct physical* nodes walking the ring clockwise
    /// from a key's token — Dynamo's preference list; also the paper's
    /// "ring-based successors" placement for allocated filters.
    ///
    /// Returns fewer than `n` nodes if the ring has fewer members.
    pub fn preference_list<T: std::hash::Hash + ?Sized>(&self, key: &T, n: usize) -> Vec<NodeId> {
        let token = stable_hash64(key);
        let start = self.vnodes.partition_point(|&(t, _)| t < token);
        let mut out = Vec::with_capacity(n.min(self.members.len()));
        for i in 0..self.vnodes.len() {
            let (_, owner) = self.vnodes[(start + i) % self.vnodes.len()];
            if !out.contains(&owner) {
                out.push(owner);
                if out.len() == n.min(self.members.len()) {
                    break;
                }
            }
        }
        out
    }

    /// Successor physical nodes of a given node: the distinct owners
    /// following `node`'s first virtual node. Used by the ring-based
    /// allocated-filter placement.
    pub fn successors(&self, node: NodeId, n: usize) -> Vec<NodeId> {
        let first_token = Self::tokens_for(node, 1).next().expect("one vnode");
        let start = self.vnodes.partition_point(|&(t, _)| t < first_token);
        let mut out = Vec::new();
        for i in 0..self.vnodes.len() {
            let (_, owner) = self.vnodes[(start + i) % self.vnodes.len()];
            if owner != node && !out.contains(&owner) {
                out.push(owner);
                if out.len() == n.min(self.members.len().saturating_sub(1)) {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of the key space owned by each member (diagnostic for
    /// balance tests), indexed by position in [`Ring::members`].
    pub fn ownership(&self) -> Vec<(NodeId, f64)> {
        let mut share: Vec<(NodeId, u128)> = self.members.iter().map(|&m| (m, 0u128)).collect();
        let idx_of = |node: NodeId| {
            self.members
                .iter()
                .position(|&m| m == node)
                .expect("owner is a member")
        };
        for (i, &(token, owner)) in self.vnodes.iter().enumerate() {
            let prev = if i == 0 {
                // Wrap-around arc from the last token.
                let last = self.vnodes.last().expect("non-empty").0;
                (u64::MAX - last) as u128 + token as u128 + 1
            } else {
                (token - self.vnodes[i - 1].0) as u128
            };
            share[idx_of(owner)].1 += prev;
        }
        let total = u64::MAX as u128 + 1;
        share
            .into_iter()
            .map(|(n, s)| (n, s as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Ring {
        Ring::new((0..n).map(NodeId), 64)
    }

    #[test]
    fn routing_is_stable_and_total() {
        let r = ring(8);
        for key in 0..1000u32 {
            let h = r.home_of(&key);
            assert_eq!(h, r.home_of(&key));
            assert!(h.as_usize() < 8);
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let r = ring(10);
        let shares = r.ownership();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (n, s) in shares {
            assert!(
                (0.03..0.25).contains(&s),
                "node {n} owns {s} of the key space"
            );
        }
    }

    #[test]
    fn preference_list_distinct_and_sized() {
        let r = ring(6);
        let pl = r.preference_list(&"k", 3);
        assert_eq!(pl.len(), 3);
        let set: std::collections::HashSet<_> = pl.iter().collect();
        assert_eq!(set.len(), 3);
        // First entry must be the home node.
        assert_eq!(pl[0], r.home_of(&"k"));
    }

    #[test]
    fn preference_list_clamped_to_membership() {
        let r = ring(3);
        assert_eq!(r.preference_list(&"k", 10).len(), 3);
    }

    #[test]
    fn removing_node_moves_only_its_keys() {
        let mut r = ring(8);
        let before: Vec<NodeId> = (0..2000u32).map(|k| r.home_of(&k)).collect();
        r.remove_node(NodeId(3));
        for (k, &old) in before.iter().enumerate() {
            let new = r.home_of(&(k as u32));
            if old != NodeId(3) {
                assert_eq!(new, old, "key {k} moved although its owner stayed");
            } else {
                assert_ne!(new, NodeId(3));
            }
        }
    }

    #[test]
    fn term_home_cache_is_transparent_across_membership_changes() {
        let mut r = ring(8);
        // Memoized and uncached answers agree (second call hits the cache).
        for t in 0..500u32 {
            let uncached = r.home_of_token(stable_hash64(&("term", t)));
            assert_eq!(r.home_of_term(TermId(t)), uncached);
            assert_eq!(r.home_of_term(TermId(t)), uncached);
        }
        // Membership changes must drop stale entries.
        r.remove_node(NodeId(2));
        for t in 0..500u32 {
            let uncached = r.home_of_token(stable_hash64(&("term", t)));
            assert_eq!(r.home_of_term(TermId(t)), uncached);
            assert_ne!(r.home_of_term(TermId(t)), NodeId(2));
        }
        r.add_node(NodeId(2));
        for t in 0..500u32 {
            let uncached = r.home_of_token(stable_hash64(&("term", t)));
            assert_eq!(r.home_of_term(TermId(t)), uncached);
        }
    }

    #[test]
    fn epoch_keyed_memo_rehomes_after_membership_flip() {
        // Regression: the memo must be keyed by the membership epoch, so a
        // layout/membership change re-homes terms without anyone calling an
        // explicit clear. Warm the cache, flip membership, and check that
        // every stale entry self-invalidates.
        let mut r = ring(8);
        let e0 = r.epoch();
        let warmed: Vec<NodeId> = (0..800u32).map(|t| r.home_of_term(TermId(t))).collect();
        // A second pass is served from the memo and must agree.
        for (t, &home) in warmed.iter().enumerate() {
            assert_eq!(r.home_of_term(TermId(t as u32)), home);
        }
        r.remove_node(NodeId(5));
        assert!(r.epoch() > e0, "membership flip must bump the epoch");
        let mut rehomed = 0;
        for t in 0..800u32 {
            let fresh = r.home_of_token(stable_hash64(&("term", t)));
            assert_eq!(
                r.home_of_term(TermId(t)),
                fresh,
                "term {t} served a stale memo entry across the epoch flip"
            );
            assert_ne!(r.home_of_term(TermId(t)), NodeId(5));
            if warmed[t as usize] == NodeId(5) {
                rehomed += 1;
            }
        }
        assert!(rehomed > 0, "some terms must have re-homed off node 5");
        // Flip again (re-add) — a third epoch, again no explicit clear.
        let e1 = r.epoch();
        r.add_node(NodeId(5));
        assert!(r.epoch() > e1);
        for t in 0..800u32 {
            assert_eq!(
                r.home_of_term(TermId(t)),
                r.home_of_token(stable_hash64(&("term", t)))
            );
        }
    }

    #[test]
    fn invalidate_drops_the_memo_without_an_epoch_bump() {
        // Regression: a staged join's `retire_join` re-points term
        // partitions through the *layout*, never touching ring membership —
        // so the epoch-keyed self-invalidation does not fire and entries
        // warmed during the handover window would survive the commit.
        // The explicit clear is the only thing standing between a retired
        // join and a stale memoized home.
        let r = ring(8);
        let warmed: Vec<NodeId> = (0..300u32).map(|t| r.home_of_term(TermId(t))).collect();
        assert_eq!(r.memoized_term_homes(), 300);
        let e = r.epoch();
        r.invalidate_term_homes();
        assert_eq!(r.epoch(), e, "invalidation is not a membership change");
        assert_eq!(r.memoized_term_homes(), 0, "the memo must be dropped");
        // Recomputed answers agree with the warmed ones (pure memoization).
        for (t, &home) in warmed.iter().enumerate() {
            assert_eq!(r.home_of_term(TermId(t as u32)), home);
        }
        assert_eq!(r.memoized_term_homes(), 300, "the memo refills");
    }

    #[test]
    fn idempotent_add_does_not_bump_epoch() {
        let mut r = ring(4);
        let e = r.epoch();
        r.add_node(NodeId(2)); // already a member: no routing change
        assert_eq!(r.epoch(), e);
    }

    #[test]
    fn frozen_table_matches_ring_in_and_beyond_precomputed_range() {
        let r = ring(8);
        let table = r.freeze_term_homes(200);
        assert_eq!(table.len(), 200);
        assert!(!table.is_empty());
        // Precomputed range: array reads agree with the memoized path.
        for t in 0..200u32 {
            assert_eq!(table.home_of_term(TermId(t)), r.home_of_term(TermId(t)));
        }
        // Beyond the range: the binary-search fallback still agrees.
        for t in 200..1000u32 {
            assert_eq!(table.home_of_term(TermId(t)), r.home_of_term(TermId(t)));
        }
    }

    #[test]
    fn frozen_table_is_a_point_in_time_snapshot() {
        let mut r = ring(8);
        let before = r.freeze_term_homes(500);
        r.remove_node(NodeId(2));
        let after = r.freeze_term_homes(500);
        // The old table keeps answering with the old membership; a table
        // frozen after the change agrees with the (cache-cleared) ring.
        let mut moved = 0;
        for t in 0..500u32 {
            let term = TermId(t);
            assert_eq!(after.home_of_term(term), r.home_of_term(term));
            assert_ne!(after.home_of_term(term), NodeId(2));
            if before.home_of_term(term) != after.home_of_term(term) {
                assert_eq!(before.home_of_term(term), NodeId(2));
                moved += 1;
            }
        }
        assert!(moved > 0, "some terms must have been homed on node 2");
    }

    #[test]
    fn frozen_table_cap_keeps_answers_exact() {
        let r = ring(4);
        let capped = r.freeze_term_homes(0);
        assert!(capped.is_empty());
        for t in 0..300u32 {
            assert_eq!(capped.home_of_term(TermId(t)), r.home_of_term(TermId(t)));
        }
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut r = ring(4);
        let v = r.ownership();
        r.add_node(NodeId(2));
        assert_eq!(r.ownership(), v);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn successors_exclude_self() {
        let r = ring(5);
        let s = r.successors(NodeId(0), 3);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&NodeId(0)));
    }

    #[test]
    fn term_routing_spreads_terms() {
        let r = ring(10);
        let mut counts = vec![0u32; 10];
        for t in 0..10_000u32 {
            counts[r.home_of_term(TermId(t)).as_usize()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "term spread {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_rejected() {
        let _ = Ring::new(std::iter::empty(), 4);
    }

    #[test]
    #[should_panic(expected = "last ring member")]
    fn cannot_remove_last_member() {
        let mut r = Ring::new([NodeId(0)], 4);
        r.remove_node(NodeId(0));
    }
}
