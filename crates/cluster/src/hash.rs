//! Stable hashing for ring placement.

use std::hash::{Hash, Hasher};

/// FNV-1a accumulator with a SplitMix64 finalizer. Deterministic across
/// processes and runs — `std`'s `DefaultHasher` is randomly seeded, which
/// would make simulations non-reproducible.
struct StableHasher(u64);

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Hashes any `Hash` value to a stable, well-mixed 64-bit token — the
/// coordinate used on the [ring](crate::Ring).
///
/// # Examples
///
/// ```
/// let a = move_cluster::stable_hash64(&"term");
/// let b = move_cluster::stable_hash64(&"term");
/// assert_eq!(a, b);
/// assert_ne!(a, move_cluster::stable_hash64(&"other"));
/// ```
pub fn stable_hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher(0xcbf2_9ce4_8422_2325);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(stable_hash64(&42u64), stable_hash64(&42u64));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential inputs must land in different 16ths of the space.
        let mut buckets = [0u32; 16];
        for i in 0..10_000u64 {
            buckets[(stable_hash64(&i) >> 60) as usize] += 1;
        }
        let (min, max) = (
            buckets.iter().min().copied().unwrap(),
            buckets.iter().max().copied().unwrap(),
        );
        assert!(max < 2 * min, "poorly mixed: {buckets:?}");
    }
}
