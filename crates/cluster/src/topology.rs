//! Rack topology (the snitch).

use move_types::{NodeId, RackId};

/// The physical layout of the cluster: which rack each node sits in.
/// Cassandra calls the component answering these questions the *snitch*;
/// the paper's rack-aware placement (§V, "Selection of allocated nodes")
/// and the rack-correlated failure experiments (Fig. 9c–9d) depend on it.
///
/// # Examples
///
/// ```
/// use move_cluster::Topology;
/// use move_types::NodeId;
///
/// let topo = Topology::uniform(20, 4);
/// assert_eq!(topo.nodes().len(), 20);
/// assert_eq!(topo.racks().len(), 4);
/// assert_eq!(topo.rack_mates(NodeId(0)).len(), 4); // 5 per rack, minus self
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    /// `rack_of[node]` = rack.
    rack_of: Vec<RackId>,
    /// `racks[rack]` = members.
    racks: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Lays out `nodes` nodes round-robin across `racks` racks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `racks == 0`.
    pub fn uniform(nodes: usize, racks: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(racks > 0, "topology needs at least one rack");
        let racks = racks.min(nodes);
        let mut rack_of = Vec::with_capacity(nodes);
        let mut members = vec![Vec::new(); racks];
        for n in 0..nodes {
            let r = n % racks;
            rack_of.push(RackId(r as u32));
            members[r].push(NodeId(n as u32));
        }
        Self {
            rack_of,
            racks: members,
        }
    }

    /// Adds one node, continuing the round-robin rack assignment, and
    /// returns its id (always the next free id — ids are dense and never
    /// reused).
    pub fn add_node(&mut self) -> NodeId {
        let n = self.rack_of.len();
        let r = n % self.racks.len();
        let id = NodeId(n as u32);
        self.rack_of.push(RackId(r as u32));
        self.racks[r].push(id);
        id
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.rack_of.len()).map(|n| NodeId(n as u32)).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rack_of.len()
    }

    /// Whether the topology is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.rack_of.is_empty()
    }

    /// The rack of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the topology.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.rack_of[node.as_usize()]
    }

    /// All racks with their members.
    pub fn racks(&self) -> &[Vec<NodeId>] {
        &self.racks
    }

    /// The other nodes in `node`'s rack (excluding `node` itself).
    pub fn rack_mates(&self, node: NodeId) -> Vec<NodeId> {
        self.racks[self.rack_of(node).as_usize()]
            .iter()
            .copied()
            .filter(|&m| m != node)
            .collect()
    }

    /// Whether two nodes share a rack — decides the intra-rack transfer
    /// discount in the cost model.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_layout() {
        let t = Topology::uniform(10, 3);
        assert_eq!(t.rack_of(NodeId(0)), RackId(0));
        assert_eq!(t.rack_of(NodeId(1)), RackId(1));
        assert_eq!(t.rack_of(NodeId(3)), RackId(0));
        // Sizes differ by at most one.
        let sizes: Vec<usize> = t.racks().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn rack_mates_exclude_self() {
        let t = Topology::uniform(8, 2);
        let mates = t.rack_mates(NodeId(0));
        assert!(!mates.contains(&NodeId(0)));
        assert_eq!(mates.len(), 3);
        assert!(mates.iter().all(|&m| t.same_rack(m, NodeId(0))));
    }

    #[test]
    fn more_racks_than_nodes_is_clamped() {
        let t = Topology::uniform(3, 10);
        assert_eq!(t.racks().len(), 3);
    }

    #[test]
    fn add_node_continues_round_robin() {
        let mut t = Topology::uniform(7, 3);
        let id = t.add_node();
        assert_eq!(id, NodeId(7));
        assert_eq!(t.rack_of(id), RackId(7 % 3));
        assert_eq!(t.len(), 8);
        assert!(t.racks()[7 % 3].contains(&id));
        let sizes: Vec<usize> = t.racks().iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn same_rack_symmetry() {
        let t = Topology::uniform(6, 3);
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(
                    t.same_rack(NodeId(a), NodeId(b)),
                    t.same_rack(NodeId(b), NodeId(a))
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_rejected() {
        let _ = Topology::uniform(4, 0);
    }
}
