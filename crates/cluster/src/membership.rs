//! Gossip-based membership with failure detection.
//!
//! "With the help of Gossip protocol, every node in Dynamo maintains
//! information about all other nodes" (paper §II). This module simulates
//! that protocol in rounds: every live node increments its own heartbeat and
//! exchanges its full view with one random peer per round; a node whose
//! heartbeat has not advanced for `suspect_after` rounds is considered
//! `Down` by the observer.

use move_types::NodeId;
use rand::Rng;

/// A node's liveness as seen by an observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The observer believes the node is alive.
    Up,
    /// The observer's failure detector has timed the node out.
    Down,
}

#[derive(Debug, Clone, Copy)]
struct ViewEntry {
    /// Highest heartbeat seen for the subject.
    heartbeat: u64,
    /// Round at which that heartbeat was learned.
    seen_round: u64,
}

/// The simulated gossip membership of a cluster.
///
/// Ground truth (which nodes are actually up, controlled by
/// [`Membership::crash`] / [`Membership::recover`]) is separated from each
/// node's *view*, which converges through [`Membership::gossip_round`]s.
///
/// # Examples
///
/// ```
/// use move_cluster::{Membership, NodeStatus};
/// use move_types::NodeId;
/// use rand::SeedableRng;
///
/// let mut m = Membership::new(8, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// m.crash(NodeId(5));
/// for _ in 0..20 {
///     m.gossip_round(&mut rng);
/// }
/// assert_eq!(m.status_in_view(NodeId(0), NodeId(5)), NodeStatus::Down);
/// ```
#[derive(Debug, Clone)]
pub struct Membership {
    alive: Vec<bool>,
    heartbeat: Vec<u64>,
    /// `views[observer][subject]`.
    views: Vec<Vec<ViewEntry>>,
    round: u64,
    suspect_after: u64,
}

impl Membership {
    /// Creates a membership of `n` nodes, all up, suspecting a node after
    /// `suspect_after` rounds of heartbeat silence.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `suspect_after == 0`.
    pub fn new(n: usize, suspect_after: u64) -> Self {
        assert!(n > 0, "membership needs at least one node");
        assert!(suspect_after > 0, "suspect_after must be positive");
        let entry = ViewEntry {
            heartbeat: 0,
            seen_round: 0,
        };
        Self {
            alive: vec![true; n],
            heartbeat: vec![0; n],
            views: vec![vec![entry; n]; n],
            round: 0,
            suspect_after,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the membership is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Ground truth: whether the node process is actually running.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.as_usize()]
    }

    /// Crashes a node (its heartbeat stops advancing).
    pub fn crash(&mut self, node: NodeId) {
        self.alive[node.as_usize()] = false;
    }

    /// Restarts a node.
    pub fn recover(&mut self, node: NodeId) {
        self.alive[node.as_usize()] = true;
    }

    /// Grows the membership by `count` freshly-joined nodes, all up. Every
    /// existing observer learns of the joiners as of the current round, so
    /// a fresh joiner reads as `Up` everywhere until its heartbeat goes
    /// silent — a join must not start life suspected.
    pub fn grow(&mut self, count: usize) {
        for _ in 0..count {
            let entry = ViewEntry {
                heartbeat: 0,
                seen_round: self.round,
            };
            self.alive.push(true);
            self.heartbeat.push(0);
            for view in &mut self.views {
                view.push(entry);
            }
            self.views.push(vec![entry; self.alive.len()]);
        }
    }

    /// Ids of nodes that are actually up.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.alive.len())
            .filter(|&i| self.alive[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Runs one gossip round: live nodes bump their heartbeat, update their
    /// own view, and each exchanges views with one uniformly random peer
    /// (push-pull).
    pub fn gossip_round<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.round += 1;
        let n = self.alive.len();
        for i in 0..n {
            if self.alive[i] {
                self.heartbeat[i] += 1;
                self.views[i][i] = ViewEntry {
                    heartbeat: self.heartbeat[i],
                    seen_round: self.round,
                };
            }
        }
        for i in 0..n {
            if !self.alive[i] || n == 1 {
                continue;
            }
            let mut peer = rng.gen_range(0..n - 1);
            if peer >= i {
                peer += 1;
            }
            if !self.alive[peer] {
                continue; // the exchange fails; the dead peer learns nothing
            }
            for s in 0..n {
                let (a, b) = (self.views[i][s], self.views[peer][s]);
                // Freshness is measured from when the *observer* last
                // learned something new about the subject (as in accrual
                // failure detectors), so propagation lag does not read as
                // silence.
                if b.heartbeat > a.heartbeat {
                    self.views[i][s] = ViewEntry {
                        heartbeat: b.heartbeat,
                        seen_round: self.round,
                    };
                } else if a.heartbeat > b.heartbeat {
                    self.views[peer][s] = ViewEntry {
                        heartbeat: a.heartbeat,
                        seen_round: self.round,
                    };
                }
            }
        }
    }

    /// The liveness of `subject` according to `observer`'s failure
    /// detector.
    pub fn status_in_view(&self, observer: NodeId, subject: NodeId) -> NodeStatus {
        let e = self.views[observer.as_usize()][subject.as_usize()];
        if self.round.saturating_sub(e.seen_round) >= self.suspect_after {
            NodeStatus::Down
        } else {
            NodeStatus::Up
        }
    }

    /// Whether every live observer's view agrees with the ground truth.
    pub fn converged(&self) -> bool {
        let n = self.alive.len();
        (0..n).filter(|&o| self.alive[o]).all(|o| {
            (0..n).all(|s| {
                let status = self.status_in_view(NodeId(o as u32), NodeId(s as u32));
                (status == NodeStatus::Up) == self.alive[s]
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_up_converges_immediately() {
        let mut m = Membership::new(6, 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            m.gossip_round(&mut rng);
        }
        assert!(m.converged());
    }

    #[test]
    fn crash_is_detected_everywhere() {
        let mut m = Membership::new(10, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            m.gossip_round(&mut rng);
        }
        m.crash(NodeId(7));
        // Convergence is transient under gossip freshness decay, so poll
        // for it instead of sampling one fixed round.
        let mut rounds = 0;
        while !m.converged() && rounds < 200 {
            m.gossip_round(&mut rng);
            rounds += 1;
        }
        assert!(m.converged(), "not converged after {rounds} rounds");
        for o in m.live_nodes() {
            assert_eq!(m.status_in_view(o, NodeId(7)), NodeStatus::Down);
        }
    }

    #[test]
    fn recovery_propagates() {
        let mut m = Membership::new(8, 3);
        let mut rng = StdRng::seed_from_u64(3);
        m.crash(NodeId(2));
        for _ in 0..20 {
            m.gossip_round(&mut rng);
        }
        m.recover(NodeId(2));
        for _ in 0..30 {
            m.gossip_round(&mut rng);
        }
        assert_eq!(m.status_in_view(NodeId(0), NodeId(2)), NodeStatus::Up);
        assert!(m.converged());
    }

    #[test]
    fn dead_nodes_do_not_gossip() {
        let mut m = Membership::new(4, 2);
        let mut rng = StdRng::seed_from_u64(4);
        m.crash(NodeId(0));
        for _ in 0..10 {
            m.gossip_round(&mut rng);
        }
        // The dead node's own view went stale: it sees everyone as down.
        for s in 1..4u32 {
            assert_eq!(m.status_in_view(NodeId(0), NodeId(s)), NodeStatus::Down);
        }
    }

    #[test]
    fn live_nodes_lists_truth() {
        let mut m = Membership::new(5, 3);
        m.crash(NodeId(1));
        m.crash(NodeId(3));
        assert_eq!(m.live_nodes(), vec![NodeId(0), NodeId(2), NodeId(4)]);
        assert!(!m.is_alive(NodeId(1)));
        assert!(m.is_alive(NodeId(0)));
    }

    #[test]
    fn grown_node_starts_up_everywhere() {
        let mut m = Membership::new(5, 3);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            m.gossip_round(&mut rng);
        }
        m.grow(1);
        assert_eq!(m.len(), 6);
        assert!(m.is_alive(NodeId(5)));
        // Nobody suspects the fresh joiner — it was learned "just now".
        for o in 0..6u32 {
            assert_eq!(m.status_in_view(NodeId(o), NodeId(5)), NodeStatus::Up);
        }
        // And the joiner participates in gossip from the next round on.
        let mut rounds = 0;
        while !m.converged() && rounds < 200 {
            m.gossip_round(&mut rng);
            rounds += 1;
        }
        assert!(m.converged(), "not converged after {rounds} rounds");
    }

    #[test]
    fn single_node_cluster() {
        let mut m = Membership::new(1, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            m.gossip_round(&mut rng);
        }
        assert!(m.converged());
    }
}
