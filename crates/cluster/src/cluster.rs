//! The assembled simulated cluster.

use crate::cost::LedgerBoard;
use crate::layout::{partition_of_term, ClusterLayout, LayoutDelta, RoleChange};
use crate::ring::{TermHomeTable, TERM_HOME_CACHE_MAX};
use crate::{CostModel, KvStore, Membership, Ring, Topology};
use move_types::{MoveError, NodeId, Result, TermId};
use rand::seq::SliceRandom;
use rand::Rng;

/// How injected failures are correlated (Fig. 9c–9d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Uniformly random nodes fail.
    RandomNodes,
    /// Whole racks fail at a time (power/switch failures) — the scenario
    /// that punishes rack-local replica placement.
    RackCorrelated,
}

/// A cluster of simulated commodity machines: consistent-hash [`Ring`],
/// rack [`Topology`], gossip [`Membership`], one [`KvStore`] per node, a
/// [`CostModel`] and per-node cost ledgers.
///
/// # Examples
///
/// ```
/// use move_cluster::{CostModel, SimCluster};
/// use move_types::TermId;
///
/// let mut cluster = SimCluster::new(20, 4, CostModel::default()).unwrap();
/// let home = cluster.home_of_term(TermId(7));
/// assert!(cluster.is_alive(home));
/// ```
#[derive(Debug)]
pub struct SimCluster {
    ring: Ring,
    topology: Topology,
    membership: Membership,
    cost: CostModel,
    stores: Vec<KvStore>,
    ledgers: LedgerBoard,
    /// The committed partition layout — the source of truth for term
    /// routing ([`SimCluster::home_of_term`]); seeded from the ring and
    /// advanced by [`SimCluster::join_node`].
    layout: ClusterLayout,
}

/// Virtual nodes per physical node (Cassandra's classic default magnitude).
const VNODES: usize = 64;

/// Memtable size for per-node stores.
const MEMTABLE_LIMIT: usize = 4096;

/// Gossip rounds of silence before a peer is suspected down.
const SUSPECT_AFTER: u64 = 5;

impl SimCluster {
    /// Creates a cluster of `nodes` machines spread over `racks` racks.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::InvalidConfig`] if `nodes == 0` or `racks == 0`.
    pub fn new(nodes: usize, racks: usize, cost: CostModel) -> Result<Self> {
        if nodes == 0 || racks == 0 {
            return Err(MoveError::InvalidConfig(format!(
                "cluster needs nodes > 0 and racks > 0, got {nodes}/{racks}"
            )));
        }
        let topology = Topology::uniform(nodes, racks);
        let ring = Ring::new(topology.nodes(), VNODES);
        let layout = ClusterLayout::seed(&ring, topology.racks().len());
        Ok(Self {
            ring,
            topology,
            membership: Membership::new(nodes, SUSPECT_AFTER),
            cost,
            stores: (0..nodes).map(|_| KvStore::new(MEMTABLE_LIMIT)).collect(),
            ledgers: LedgerBoard::new(nodes),
            layout,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the cluster is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.topology.nodes()
    }

    /// Nodes currently alive.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.membership.live_nodes()
    }

    /// The ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Drops the ring's memoized term-home answers (see
    /// [`Ring::invalidate_term_homes`]). Layout commits — a staged join's
    /// `retire_join` — re-point term partitions without a ring-membership
    /// change, so the ring's epoch-keyed memo would otherwise keep serving
    /// the moved terms' pre-join homes to ring-based callers.
    pub fn invalidate_term_homes(&self) {
        self.ring.invalidate_term_homes();
    }

    /// The rack topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The gossip membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Mutable gossip membership (for driving gossip rounds in tests and
    /// experiments).
    pub fn membership_mut(&mut self) -> &mut Membership {
        &mut self.membership
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Per-node cost ledgers.
    pub fn ledgers(&self) -> &LedgerBoard {
        &self.ledgers
    }

    /// Mutable per-node cost ledgers.
    pub fn ledgers_mut(&mut self) -> &mut LedgerBoard {
        &mut self.ledgers
    }

    /// A node's key/value store.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn store_mut(&mut self, node: NodeId) -> &mut KvStore {
        &mut self.stores[node.as_usize()]
    }

    /// A node's store, read-only.
    pub fn store(&self, node: NodeId) -> &KvStore {
        &self.stores[node.as_usize()]
    }

    /// Ground-truth liveness.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.membership.is_alive(node)
    }

    /// The committed partition layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Mutable partition layout (for staging role changes directly; most
    /// callers go through [`SimCluster::join_node`]).
    pub fn layout_mut(&mut self) -> &mut ClusterLayout {
        &mut self.layout
    }

    /// The home node of a term (`put`/`get` routing target): the committed
    /// layout's owner of the term's partition. Seeded layouts agree with
    /// the ring; after a [`SimCluster::join_node`] the layout is the
    /// source of truth (the ring keeps serving non-term keys).
    pub fn home_of_term(&self, term: TermId) -> NodeId {
        NodeId(self.layout.assignment()[partition_of_term(term)])
    }

    /// Freezes a thread-safe [`TermHomeTable`] from the committed layout:
    /// term ids `0..terms` are precomputed (capped at the memoization
    /// bound), and ids beyond the range fold onto their partition — exact
    /// for *all* term ids. Agrees with [`SimCluster::home_of_term`] at the
    /// moment of freezing.
    #[must_use]
    pub fn freeze_term_homes(&self, terms: usize) -> TermHomeTable {
        let n = terms.min(TERM_HOME_CACHE_MAX);
        let assignment = self.layout.assignment();
        let homes = (0..n)
            .map(|t| assignment[partition_of_term(TermId(t as u32))])
            .collect();
        TermHomeTable::from_partitions(homes, std::sync::Arc::clone(assignment))
    }

    /// Admits one new node: extends ring, topology, membership, store and
    /// ledger state, then stages + commits a weight-1 join in the layout.
    /// Returns the new node's id and the layout delta (exactly which
    /// partitions must move to it). The caller owns streaming the moved
    /// partitions' filter state — the cluster only re-points routing.
    pub fn join_node(&mut self) -> (NodeId, LayoutDelta) {
        let id = self.topology.add_node();
        self.ring.add_node(id);
        self.membership.grow(1);
        self.stores.push(KvStore::new(MEMTABLE_LIMIT));
        self.ledgers.grow(1);
        let rack = self.topology.rack_of(id);
        self.layout.stage(RoleChange::Join { rack, weight: 1 });
        let delta = self.layout.commit();
        debug_assert_eq!(delta.joined.last().copied(), Some(id));
        (id, delta)
    }

    /// Document-transfer cost between two nodes under the rack-aware cost
    /// model; zero when the document is already local.
    pub fn transfer_cost(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            0.0
        } else {
            self.cost.transfer(self.topology.same_rack(from, to))
        }
    }

    /// Crashes approximately `fraction` of the nodes and returns the
    /// casualties. `RandomNodes` picks uniformly; `RackCorrelated` kills
    /// whole racks until the budget is reached (partially killing the last
    /// rack if needed).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn fail_fraction<R: Rng + ?Sized>(
        &mut self,
        fraction: f64,
        mode: FailureMode,
        rng: &mut R,
    ) -> Vec<NodeId> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let budget = (fraction * self.len() as f64).round() as usize;
        let mut victims: Vec<NodeId> = Vec::with_capacity(budget);
        match mode {
            FailureMode::RandomNodes => {
                let mut alive = self.live_nodes();
                alive.shuffle(rng);
                victims.extend(alive.into_iter().take(budget));
            }
            FailureMode::RackCorrelated => {
                let mut racks: Vec<usize> = (0..self.topology.racks().len()).collect();
                racks.shuffle(rng);
                'outer: for r in racks {
                    let mut members = self.topology.racks()[r].clone();
                    members.shuffle(rng);
                    for m in members {
                        if victims.len() == budget {
                            break 'outer;
                        }
                        if self.is_alive(m) {
                            victims.push(m);
                        }
                    }
                }
            }
        }
        for &v in &victims {
            self.membership.crash(v);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster(n: usize, racks: usize) -> SimCluster {
        SimCluster::new(n, racks, CostModel::default()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(SimCluster::new(0, 2, CostModel::default()).is_err());
        assert!(SimCluster::new(2, 0, CostModel::default()).is_err());
        assert_eq!(cluster(12, 3).len(), 12);
    }

    #[test]
    fn stores_are_per_node() {
        let mut c = cluster(3, 1);
        c.store_mut(NodeId(0))
            .cf("f")
            .put(b"k".as_ref(), b"v".as_ref());
        assert!(c.store(NodeId(0)).cf_opt("f").is_some());
        assert!(c.store(NodeId(1)).cf_opt("f").is_none());
    }

    #[test]
    fn transfer_cost_rack_aware() {
        let c = cluster(4, 2); // racks: {0,2} and {1,3}
        assert_eq!(c.transfer_cost(NodeId(0), NodeId(0)), 0.0);
        let local = c.transfer_cost(NodeId(0), NodeId(2));
        let remote = c.transfer_cost(NodeId(0), NodeId(1));
        assert!(local < remote);
    }

    #[test]
    fn random_failure_hits_budget() {
        let mut c = cluster(20, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let dead = c.fail_fraction(0.3, FailureMode::RandomNodes, &mut rng);
        assert_eq!(dead.len(), 6);
        assert_eq!(c.live_nodes().len(), 14);
    }

    #[test]
    fn rack_failure_is_correlated() {
        let mut c = cluster(20, 4); // 5 nodes per rack
        let mut rng = StdRng::seed_from_u64(2);
        let dead = c.fail_fraction(0.25, FailureMode::RackCorrelated, &mut rng);
        assert_eq!(dead.len(), 5);
        // All casualties share one rack.
        let rack = c.topology().rack_of(dead[0]);
        assert!(dead.iter().all(|&n| c.topology().rack_of(n) == rack));
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut c = cluster(10, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(c
            .fail_fraction(0.0, FailureMode::RandomNodes, &mut rng)
            .is_empty());
        assert_eq!(c.live_nodes().len(), 10);
    }

    #[test]
    fn frozen_homes_agree_with_cluster_for_all_ids() {
        let c = cluster(9, 3);
        let table = c.freeze_term_homes(300);
        for t in 0..5000u32 {
            assert_eq!(table.home_of_term(TermId(t)), c.home_of_term(TermId(t)));
        }
    }

    #[test]
    fn join_node_extends_every_subsystem() {
        let mut c = cluster(6, 2);
        let homes_before: Vec<NodeId> = (0..2000u32).map(|t| c.home_of_term(TermId(t))).collect();
        let (id, delta) = c.join_node();
        assert_eq!(id, NodeId(6));
        assert_eq!(c.len(), 7);
        assert_eq!(c.nodes().len(), 7);
        assert!(c.is_alive(id));
        assert!(c.ring().members().contains(&id));
        assert_eq!(c.ledgers().all().len(), 7);
        assert_eq!(c.membership().live_nodes().len(), 7);
        assert!(!delta.moved.is_empty());
        // Only terms in moved partitions re-homed, and all onto the joiner.
        for (t, &old) in homes_before.iter().enumerate() {
            let new = c.home_of_term(TermId(t as u32));
            if new != old {
                assert_eq!(new, id, "term {t} moved to {new}, not the joiner");
            }
        }
        // The joiner's store and ledger are usable.
        c.store_mut(id).cf("f").put(b"k".as_ref(), b"v".as_ref());
        assert!(c.store(id).cf_opt("f").is_some());
        assert_eq!(c.layout().version(), 1);
    }

    #[test]
    fn term_home_is_alive_until_crash() {
        let mut c = cluster(5, 1);
        let home = c.home_of_term(TermId(3));
        assert!(c.is_alive(home));
        c.membership_mut().crash(home);
        assert!(!c.is_alive(home));
    }
}
