//! The assembled simulated cluster.

use crate::cost::LedgerBoard;
use crate::{CostModel, KvStore, Membership, Ring, Topology};
use move_types::{MoveError, NodeId, Result, TermId};
use rand::seq::SliceRandom;
use rand::Rng;

/// How injected failures are correlated (Fig. 9c–9d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Uniformly random nodes fail.
    RandomNodes,
    /// Whole racks fail at a time (power/switch failures) — the scenario
    /// that punishes rack-local replica placement.
    RackCorrelated,
}

/// A cluster of simulated commodity machines: consistent-hash [`Ring`],
/// rack [`Topology`], gossip [`Membership`], one [`KvStore`] per node, a
/// [`CostModel`] and per-node cost ledgers.
///
/// # Examples
///
/// ```
/// use move_cluster::{CostModel, SimCluster};
/// use move_types::TermId;
///
/// let mut cluster = SimCluster::new(20, 4, CostModel::default()).unwrap();
/// let home = cluster.home_of_term(TermId(7));
/// assert!(cluster.is_alive(home));
/// ```
#[derive(Debug)]
pub struct SimCluster {
    ring: Ring,
    topology: Topology,
    membership: Membership,
    cost: CostModel,
    stores: Vec<KvStore>,
    ledgers: LedgerBoard,
}

/// Virtual nodes per physical node (Cassandra's classic default magnitude).
const VNODES: usize = 64;

/// Memtable size for per-node stores.
const MEMTABLE_LIMIT: usize = 4096;

/// Gossip rounds of silence before a peer is suspected down.
const SUSPECT_AFTER: u64 = 5;

impl SimCluster {
    /// Creates a cluster of `nodes` machines spread over `racks` racks.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::InvalidConfig`] if `nodes == 0` or `racks == 0`.
    pub fn new(nodes: usize, racks: usize, cost: CostModel) -> Result<Self> {
        if nodes == 0 || racks == 0 {
            return Err(MoveError::InvalidConfig(format!(
                "cluster needs nodes > 0 and racks > 0, got {nodes}/{racks}"
            )));
        }
        let topology = Topology::uniform(nodes, racks);
        Ok(Self {
            ring: Ring::new(topology.nodes(), VNODES),
            topology,
            membership: Membership::new(nodes, SUSPECT_AFTER),
            cost,
            stores: (0..nodes).map(|_| KvStore::new(MEMTABLE_LIMIT)).collect(),
            ledgers: LedgerBoard::new(nodes),
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the cluster is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.topology.nodes()
    }

    /// Nodes currently alive.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.membership.live_nodes()
    }

    /// The ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The rack topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The gossip membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Mutable gossip membership (for driving gossip rounds in tests and
    /// experiments).
    pub fn membership_mut(&mut self) -> &mut Membership {
        &mut self.membership
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Per-node cost ledgers.
    pub fn ledgers(&self) -> &LedgerBoard {
        &self.ledgers
    }

    /// Mutable per-node cost ledgers.
    pub fn ledgers_mut(&mut self) -> &mut LedgerBoard {
        &mut self.ledgers
    }

    /// A node's key/value store.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn store_mut(&mut self, node: NodeId) -> &mut KvStore {
        &mut self.stores[node.as_usize()]
    }

    /// A node's store, read-only.
    pub fn store(&self, node: NodeId) -> &KvStore {
        &self.stores[node.as_usize()]
    }

    /// Ground-truth liveness.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.membership.is_alive(node)
    }

    /// The home node of a term (`put`/`get` routing target).
    pub fn home_of_term(&self, term: TermId) -> NodeId {
        self.ring.home_of_term(term)
    }

    /// Document-transfer cost between two nodes under the rack-aware cost
    /// model; zero when the document is already local.
    pub fn transfer_cost(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            0.0
        } else {
            self.cost.transfer(self.topology.same_rack(from, to))
        }
    }

    /// Crashes approximately `fraction` of the nodes and returns the
    /// casualties. `RandomNodes` picks uniformly; `RackCorrelated` kills
    /// whole racks until the budget is reached (partially killing the last
    /// rack if needed).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn fail_fraction<R: Rng + ?Sized>(
        &mut self,
        fraction: f64,
        mode: FailureMode,
        rng: &mut R,
    ) -> Vec<NodeId> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let budget = (fraction * self.len() as f64).round() as usize;
        let mut victims: Vec<NodeId> = Vec::with_capacity(budget);
        match mode {
            FailureMode::RandomNodes => {
                let mut alive = self.live_nodes();
                alive.shuffle(rng);
                victims.extend(alive.into_iter().take(budget));
            }
            FailureMode::RackCorrelated => {
                let mut racks: Vec<usize> = (0..self.topology.racks().len()).collect();
                racks.shuffle(rng);
                'outer: for r in racks {
                    let mut members = self.topology.racks()[r].clone();
                    members.shuffle(rng);
                    for m in members {
                        if victims.len() == budget {
                            break 'outer;
                        }
                        if self.is_alive(m) {
                            victims.push(m);
                        }
                    }
                }
            }
        }
        for &v in &victims {
            self.membership.crash(v);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster(n: usize, racks: usize) -> SimCluster {
        SimCluster::new(n, racks, CostModel::default()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(SimCluster::new(0, 2, CostModel::default()).is_err());
        assert!(SimCluster::new(2, 0, CostModel::default()).is_err());
        assert_eq!(cluster(12, 3).len(), 12);
    }

    #[test]
    fn stores_are_per_node() {
        let mut c = cluster(3, 1);
        c.store_mut(NodeId(0))
            .cf("f")
            .put(b"k".as_ref(), b"v".as_ref());
        assert!(c.store(NodeId(0)).cf_opt("f").is_some());
        assert!(c.store(NodeId(1)).cf_opt("f").is_none());
    }

    #[test]
    fn transfer_cost_rack_aware() {
        let c = cluster(4, 2); // racks: {0,2} and {1,3}
        assert_eq!(c.transfer_cost(NodeId(0), NodeId(0)), 0.0);
        let local = c.transfer_cost(NodeId(0), NodeId(2));
        let remote = c.transfer_cost(NodeId(0), NodeId(1));
        assert!(local < remote);
    }

    #[test]
    fn random_failure_hits_budget() {
        let mut c = cluster(20, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let dead = c.fail_fraction(0.3, FailureMode::RandomNodes, &mut rng);
        assert_eq!(dead.len(), 6);
        assert_eq!(c.live_nodes().len(), 14);
    }

    #[test]
    fn rack_failure_is_correlated() {
        let mut c = cluster(20, 4); // 5 nodes per rack
        let mut rng = StdRng::seed_from_u64(2);
        let dead = c.fail_fraction(0.25, FailureMode::RackCorrelated, &mut rng);
        assert_eq!(dead.len(), 5);
        // All casualties share one rack.
        let rack = c.topology().rack_of(dead[0]);
        assert!(dead.iter().all(|&n| c.topology().rack_of(n) == rack));
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut c = cluster(10, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(c
            .fail_fraction(0.0, FailureMode::RandomNodes, &mut rng)
            .is_empty());
        assert_eq!(c.live_nodes().len(), 10);
    }

    #[test]
    fn term_home_is_alive_until_crash() {
        let mut c = cluster(5, 1);
        let home = c.home_of_term(TermId(3));
        assert!(c.is_alive(home));
        c.membership_mut().crash(home);
        assert!(!c.is_alive(home));
    }
}
