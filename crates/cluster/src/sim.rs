//! A discrete-event queueing simulator.
//!
//! The dissemination schemes express each published document as a [`Job`]:
//! an arrival time plus one or more [`Stage`]s of [`Task`]s (stage `k+1`
//! starts when every task of stage `k` has completed — e.g. MOVE's
//! home-node match followed by the parallel forward into one allocation
//! partition). Each node is a FIFO single server; the simulator plays the
//! jobs and reports completion counts, makespan, latency percentiles and
//! per-node busy time.
//!
//! An optional *congestion* model inflates a task's service time by
//! `1 + c·(b/b₀)²` where `b` is the node's queued backlog (seconds of
//! service waiting) when the task starts. This reproduces the super-linear
//! degradation real nodes exhibit under overload (cache and disk thrash)
//! and is what bends the throughput-vs-batch-size curve of Fig. 8b
//! downward; with `c = 0` the simulator is a plain queueing network.

use move_types::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One unit of work on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// The node that must perform the work.
    pub node: NodeId,
    /// Base service time in virtual seconds.
    pub service: f64,
}

/// A set of tasks that may run in parallel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stage {
    /// The stage's tasks; the stage completes when all of them do.
    pub tasks: Vec<Task>,
}

impl Stage {
    /// Creates a stage from tasks.
    pub fn new(tasks: Vec<Task>) -> Self {
        Self { tasks }
    }
}

/// One document's journey through the cluster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Job {
    /// Arrival (publication) time in virtual seconds.
    pub arrival: f64,
    /// Sequential stages; empty stages are skipped.
    pub stages: Vec<Stage>,
}

/// Results of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs that ran to completion (always all of them; the field exists so
    /// harnesses can introduce deadlines later).
    pub completed: u64,
    /// Time of the last completion.
    pub makespan: f64,
    /// `jobs / makespan` — the batch throughput in documents per second.
    pub throughput: f64,
    /// Mean job latency (completion − arrival).
    pub mean_latency: f64,
    /// 99th-percentile job latency.
    pub p99_latency: f64,
    /// Per-node total busy seconds, indexed by node id.
    pub node_busy: Vec<f64>,
    /// Per-node task counts, indexed by node id.
    pub node_tasks: Vec<u64>,
}

/// The simulator configuration.
///
/// # Examples
///
/// ```
/// use move_cluster::{Job, QueueSim, Stage, Task};
/// use move_types::NodeId;
///
/// let jobs = vec![Job {
///     arrival: 0.0,
///     stages: vec![Stage::new(vec![Task { node: NodeId(0), service: 1.0 }])],
/// }];
/// let out = QueueSim::new().run(1, &jobs);
/// assert_eq!(out.completed, 1);
/// assert!((out.makespan - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QueueSim {
    congestion_coeff: f64,
    congestion_soft_backlog: f64,
}

impl Default for QueueSim {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy)]
struct TaskRef {
    job: usize,
    service: f64,
}

/// Ordered f64 key for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A job arrives (or advances to its next stage): enqueue its tasks.
    StageStart { job: usize },
    /// A node finished its running task.
    NodeDone { node: u32 },
}

impl QueueSim {
    /// A plain queueing network (no congestion inflation).
    pub fn new() -> Self {
        Self {
            congestion_coeff: 0.0,
            congestion_soft_backlog: 1.0,
        }
    }

    /// Adds the congestion model: service inflated by
    /// `1 + coeff·(backlog/soft_backlog)²` at task start, where backlog is
    /// the service time already queued at the node (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `coeff < 0` or `soft_backlog <= 0`.
    pub fn with_congestion(coeff: f64, soft_backlog: f64) -> Self {
        assert!(coeff >= 0.0, "congestion coefficient must be >= 0");
        assert!(soft_backlog > 0.0, "soft backlog must be positive");
        Self {
            congestion_coeff: coeff,
            congestion_soft_backlog: soft_backlog,
        }
    }

    /// Plays `jobs` over `n_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if a task references a node `>= n_nodes`, a service time is
    /// negative, or an arrival is negative.
    pub fn run(&self, n_nodes: usize, jobs: &[Job]) -> SimOutcome {
        for j in jobs {
            assert!(j.arrival >= 0.0, "negative arrival");
            for s in &j.stages {
                for t in &s.tasks {
                    assert!(
                        t.node.as_usize() < n_nodes,
                        "task on unknown node {}",
                        t.node
                    );
                    assert!(t.service >= 0.0, "negative service time");
                }
            }
        }

        let mut heap: BinaryHeap<Reverse<(Time, u64, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<_>, t: f64, e: EventKind, seq: &mut u64| {
            heap.push(Reverse((Time(t), *seq, e)));
            *seq += 1;
        };

        // Per-job progress.
        let mut stage_idx = vec![0usize; jobs.len()];
        let mut outstanding = vec![0usize; jobs.len()];
        let mut completion = vec![f64::NAN; jobs.len()];

        // Per-node server state.
        let mut queue: Vec<VecDeque<TaskRef>> = vec![VecDeque::new(); n_nodes];
        let mut backlog = vec![0.0f64; n_nodes]; // queued service seconds
        let mut running: Vec<Option<TaskRef>> = vec![None; n_nodes];
        let mut busy = vec![0.0f64; n_nodes];
        let mut tasks_done = vec![0u64; n_nodes];

        for (j, job) in jobs.iter().enumerate() {
            push(
                &mut heap,
                job.arrival,
                EventKind::StageStart { job: j },
                &mut seq,
            );
        }

        let mut last_completion = 0.0f64;
        let mut completed = 0u64;

        while let Some(Reverse((Time(now), _, event))) = heap.pop() {
            match event {
                EventKind::StageStart { job } => {
                    // Skip empty stages.
                    let mut si = stage_idx[job];
                    while si < jobs[job].stages.len() && jobs[job].stages[si].tasks.is_empty() {
                        si += 1;
                    }
                    stage_idx[job] = si;
                    if si >= jobs[job].stages.len() {
                        completion[job] = now;
                        last_completion = last_completion.max(now);
                        completed += 1;
                        continue;
                    }
                    let stage = &jobs[job].stages[si];
                    outstanding[job] = stage.tasks.len();
                    for t in &stage.tasks {
                        let ni = t.node.as_usize();
                        let tr = TaskRef {
                            job,
                            service: t.service,
                        };
                        if running[ni].is_none() {
                            let dur = self.inflate(t.service, backlog[ni]);
                            running[ni] = Some(tr);
                            busy[ni] += dur;
                            push(
                                &mut heap,
                                now + dur,
                                EventKind::NodeDone { node: t.node.0 },
                                &mut seq,
                            );
                        } else {
                            backlog[ni] += tr.service;
                            queue[ni].push_back(tr);
                        }
                    }
                }
                EventKind::NodeDone { node } => {
                    let ni = node as usize;
                    let finished = running[ni].take().expect("a task was running");
                    tasks_done[ni] += 1;

                    // Start the next queued task.
                    if let Some(next) = queue[ni].pop_front() {
                        backlog[ni] -= next.service;
                        let dur = self.inflate(next.service, backlog[ni]);
                        running[ni] = Some(next);
                        busy[ni] += dur;
                        push(&mut heap, now + dur, EventKind::NodeDone { node }, &mut seq);
                    }

                    // Advance the finished task's job.
                    let j = finished.job;
                    outstanding[j] -= 1;
                    if outstanding[j] == 0 {
                        stage_idx[j] += 1;
                        if stage_idx[j] >= jobs[j].stages.len() {
                            completion[j] = now;
                            last_completion = last_completion.max(now);
                            completed += 1;
                        } else {
                            push(&mut heap, now, EventKind::StageStart { job: j }, &mut seq);
                        }
                    }
                }
            }
        }

        let mut latencies: Vec<f64> = jobs
            .iter()
            .zip(&completion)
            .map(|(j, &c)| c - j.arrival)
            .collect();
        latencies.sort_by(f64::total_cmp);
        let mean_latency = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let p99_latency = latencies
            .get(((latencies.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
            .copied()
            .unwrap_or(0.0);
        let makespan = last_completion;
        SimOutcome {
            jobs: jobs.len() as u64,
            completed,
            makespan,
            throughput: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            mean_latency,
            p99_latency,
            node_busy: busy,
            node_tasks: tasks_done,
        }
    }

    fn inflate(&self, service: f64, backlog_seconds: f64) -> f64 {
        if self.congestion_coeff == 0.0 {
            return service;
        }
        let b = backlog_seconds.max(0.0) / self.congestion_soft_backlog;
        service * (1.0 + self.congestion_coeff * b * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(node: u32, service: f64) -> Task {
        Task {
            node: NodeId(node),
            service,
        }
    }

    #[test]
    fn single_task_job() {
        let out = QueueSim::new().run(
            2,
            &[Job {
                arrival: 1.0,
                stages: vec![Stage::new(vec![task(1, 2.0)])],
            }],
        );
        assert_eq!(out.completed, 1);
        assert!((out.makespan - 3.0).abs() < 1e-12);
        assert!((out.mean_latency - 2.0).abs() < 1e-12);
        assert_eq!(out.node_tasks, vec![0, 1]);
    }

    #[test]
    fn fifo_queueing_serializes_a_node() {
        let jobs: Vec<Job> = (0..3)
            .map(|_| Job {
                arrival: 0.0,
                stages: vec![Stage::new(vec![task(0, 1.0)])],
            })
            .collect();
        let out = QueueSim::new().run(1, &jobs);
        assert!((out.makespan - 3.0).abs() < 1e-12);
        // Latencies 1, 2, 3 → mean 2.
        assert!((out.mean_latency - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let job = Job {
            arrival: 0.0,
            stages: vec![Stage::new(vec![task(0, 1.0), task(1, 1.0), task(2, 1.0)])],
        };
        let out = QueueSim::new().run(3, &[job]);
        assert!((out.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stages_are_sequential() {
        let job = Job {
            arrival: 0.0,
            stages: vec![
                Stage::new(vec![task(0, 1.0)]),
                Stage::new(vec![task(1, 1.0)]),
            ],
        };
        let out = QueueSim::new().run(2, &[job]);
        assert!((out.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stages_are_skipped() {
        let job = Job {
            arrival: 0.5,
            stages: vec![
                Stage::default(),
                Stage::new(vec![task(0, 1.0)]),
                Stage::default(),
            ],
        };
        let out = QueueSim::new().run(1, &[job]);
        assert_eq!(out.completed, 1);
        assert!((out.makespan - 1.5).abs() < 1e-12);
    }

    #[test]
    fn job_with_no_stages_completes_at_arrival() {
        let out = QueueSim::new().run(
            1,
            &[Job {
                arrival: 4.0,
                stages: vec![],
            }],
        );
        assert_eq!(out.completed, 1);
        assert!((out.makespan - 4.0).abs() < 1e-12);
        assert_eq!(out.mean_latency, 0.0);
    }

    #[test]
    fn busy_time_equals_service_sum_without_congestion() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job {
                arrival: i as f64 * 0.1,
                stages: vec![Stage::new(vec![task(0, 0.3)])],
            })
            .collect();
        let out = QueueSim::new().run(1, &jobs);
        assert!((out.node_busy[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_inflates_under_load() {
        let jobs: Vec<Job> = (0..200)
            .map(|_| Job {
                arrival: 0.0,
                stages: vec![Stage::new(vec![task(0, 1.0)])],
            })
            .collect();
        let plain = QueueSim::new().run(1, &jobs);
        let congested = QueueSim::with_congestion(2.0, 10.0).run(1, &jobs);
        assert!(congested.makespan > plain.makespan * 2.0);
        assert!(congested.throughput < plain.throughput);
    }

    #[test]
    fn throughput_is_jobs_over_makespan() {
        let jobs: Vec<Job> = (0..4)
            .map(|_| Job {
                arrival: 0.0,
                stages: vec![Stage::new(vec![task(0, 0.5)])],
            })
            .collect();
        let out = QueueSim::new().run(1, &jobs);
        assert!((out.throughput - 4.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut jobs: Vec<Job> = (0..99)
            .map(|_| Job {
                arrival: 0.0,
                stages: vec![],
            })
            .collect();
        jobs.push(Job {
            arrival: 0.0,
            stages: vec![Stage::new(vec![task(0, 7.0)])],
        });
        let out = QueueSim::new().run(1, &jobs);
        assert!((out.p99_latency - 0.0).abs() < 1e-12 || out.p99_latency <= 7.0);
        assert!(out.p99_latency >= 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn task_on_missing_node_rejected() {
        let _ = QueueSim::new().run(
            1,
            &[Job {
                arrival: 0.0,
                stages: vec![Stage::new(vec![task(5, 1.0)])],
            }],
        );
    }
}
