//! The latency cost model of paper Eq. 1/2.
//!
//! The paper's analysis (§IV-B) writes the latency of matching a document on
//! a node as `y_d + y_p · (filters scanned)` — a transfer term plus a
//! per-filter match term — and observes (citing the EC2 measurement study
//! \[24\]) that disk I/O dominates: the per-filter term is really the cost of
//! pulling posting lists off the local disk. We refine that into
//!
//! `cost = y_d(rack) + y_s · (posting lists retrieved) + y_p · (postings
//! scanned) · disk(stored filters)`
//!
//! where `y_s` is a per-list seek (this is what makes SIFT-on-rendezvous
//! expensive for large documents: it retrieves `|d|` lists per document) and
//! `disk(·)` is 1 while a node's stored filters fit its memory capacity `C`
//! and `disk_penalty` beyond — the knee visible in Fig. 6 at very large `P`.

use move_types::NodeId;
use serde::{Deserialize, Serialize};

/// Latency parameters, in (virtual) seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Transfer of one document to a node in another rack (`y_d`).
    pub y_d_remote: f64,
    /// Transfer within a rack (top-of-rack switch only).
    pub y_d_local: f64,
    /// Retrieval of one posting list (`y_s`, per-list seek).
    pub y_s: f64,
    /// Scan of one posting entry, i.e. one candidate filter (`y_p`).
    pub y_p: f64,
    /// Number of filters a node can hold in memory (`C_mem`).
    pub mem_capacity: u64,
    /// Multiplier on `y_p` once a node's stored filters exceed
    /// `mem_capacity` (the disk-I/O knee).
    pub disk_penalty: f64,
}

impl Default for CostModel {
    /// Parameters loosely calibrated to commodity 2011-era hardware: ~0.5 ms
    /// cross-rack document transfer, ~0.1 ms per posting-list retrieval,
    /// ~0.2 µs per posting scanned, 3 M filters of memory capacity, 8×
    /// slower once spilling to disk.
    fn default() -> Self {
        Self {
            y_d_remote: 5e-4,
            y_d_local: 1.5e-4,
            y_s: 1e-4,
            y_p: 2e-7,
            mem_capacity: 3_000_000,
            disk_penalty: 8.0,
        }
    }
}

impl CostModel {
    /// Transfer cost of a document to a node (`y_d`), rack-aware.
    pub fn transfer(&self, same_rack: bool) -> f64 {
        if same_rack {
            self.y_d_local
        } else {
            self.y_d_remote
        }
    }

    /// Cost of matching one document on a node: retrieving `lists` posting
    /// lists and scanning `postings` candidate filters, given the node
    /// currently stores `stored_filters` filters.
    pub fn match_cost(&self, lists: u64, postings: u64, stored_filters: u64) -> f64 {
        let disk = if stored_filters > self.mem_capacity {
            self.disk_penalty
        } else {
            1.0
        };
        self.y_s * lists as f64 + self.y_p * postings as f64 * disk
    }

    /// Theorem 2's `β = y_p·P / y_d` — the ratio between matching a document
    /// against `P` filters and transferring it once.
    pub fn beta(&self, total_filters: u64) -> f64 {
        self.y_p * total_filters as f64 / self.y_d_remote
    }
}

/// Per-node accounting of virtual work, filled in by the dissemination
/// schemes and consumed by the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Total virtual seconds of service performed.
    pub busy_seconds: f64,
    /// Documents this node received for matching.
    pub docs_received: u64,
    /// Posting lists retrieved.
    pub lists_retrieved: u64,
    /// Posting entries scanned.
    pub postings_scanned: u64,
}

impl CostLedger {
    /// Records one document-match operation.
    pub fn record(&mut self, seconds: f64, lists: u64, postings: u64) {
        self.busy_seconds += seconds;
        self.docs_received += 1;
        self.lists_retrieved += lists;
        self.postings_scanned += postings;
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.busy_seconds += other.busy_seconds;
        self.docs_received += other.docs_received;
        self.lists_retrieved += other.lists_retrieved;
        self.postings_scanned += other.postings_scanned;
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A convenience collection of ledgers indexed by [`NodeId`].
#[derive(Debug, Clone, Default)]
pub struct LedgerBoard {
    ledgers: Vec<CostLedger>,
}

impl LedgerBoard {
    /// Creates a board for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            ledgers: vec![CostLedger::default(); n],
        }
    }

    /// Grows the board by `n` fresh (zeroed) ledgers — the accounting side
    /// of a node join.
    pub fn grow(&mut self, n: usize) {
        self.ledgers.extend((0..n).map(|_| CostLedger::default()));
    }

    /// Mutable ledger of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn ledger_mut(&mut self, node: NodeId) -> &mut CostLedger {
        &mut self.ledgers[node.as_usize()]
    }

    /// Ledger of a node.
    pub fn ledger(&self, node: NodeId) -> &CostLedger {
        &self.ledgers[node.as_usize()]
    }

    /// All ledgers in node order.
    pub fn all(&self) -> &[CostLedger] {
        &self.ledgers
    }

    /// The largest per-node busy time — the makespan lower bound that
    /// dominates batch throughput ("the busiest node … significantly
    /// degrade\[s\] the throughput", §VI-C).
    pub fn max_busy(&self) -> f64 {
        self.ledgers
            .iter()
            .map(|l| l.busy_seconds)
            .fold(0.0, f64::max)
    }

    /// Clears every ledger.
    pub fn reset(&mut self) {
        for l in &mut self.ledgers {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_discount_applies() {
        let m = CostModel::default();
        assert!(m.transfer(true) < m.transfer(false));
    }

    #[test]
    fn match_cost_linear_in_lists_and_postings() {
        let m = CostModel {
            y_s: 2.0,
            y_p: 1.0,
            mem_capacity: 100,
            disk_penalty: 10.0,
            ..CostModel::default()
        };
        assert_eq!(m.match_cost(3, 5, 10), 3.0 * 2.0 + 5.0);
        // Beyond capacity the posting term is multiplied, the seek term not.
        assert_eq!(m.match_cost(3, 5, 1_000), 6.0 + 50.0);
    }

    #[test]
    fn beta_matches_theorem2_definition() {
        let m = CostModel {
            y_p: 1e-6,
            y_d_remote: 1e-3,
            ..CostModel::default()
        };
        assert!((m.beta(4_000_000) - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = CostLedger::default();
        a.record(1.0, 2, 30);
        a.record(0.5, 1, 10);
        assert_eq!(a.docs_received, 2);
        assert_eq!(a.lists_retrieved, 3);
        assert_eq!(a.postings_scanned, 40);
        let mut b = CostLedger::default();
        b.record(2.0, 5, 5);
        a.merge(&b);
        assert!((a.busy_seconds - 3.5).abs() < 1e-12);
        a.reset();
        assert_eq!(a, CostLedger::default());
    }

    #[test]
    fn board_max_busy() {
        let mut board = LedgerBoard::new(3);
        board.ledger_mut(NodeId(1)).record(2.0, 1, 1);
        board.ledger_mut(NodeId(2)).record(0.5, 1, 1);
        assert_eq!(board.max_busy(), 2.0);
        assert_eq!(board.ledger(NodeId(0)).docs_received, 0);
        board.reset();
        assert_eq!(board.max_busy(), 0.0);
    }
}
