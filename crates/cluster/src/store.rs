//! An LSM-flavoured column-family store.
//!
//! Cassandra implements the BigTable data model — column families backed by
//! a memtable that flushes into immutable sorted runs (SSTables), merged by
//! compaction. The paper's per-node *filter store*, *local inverted list*
//! and *meta data store* (§V, Fig. 3) are column families of this store.
//! Everything lives in memory here, but the read/write paths mirror the real
//! structure: point reads probe the memtable then runs newest-first, range
//! scans merge-sort across levels, deletes are tombstones dropped at
//! compaction.

use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};

/// Operation counters, used both by tests and by the cost model (a read
/// that probes many runs is a good stand-in for disk seeks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `put`/`delete` calls.
    pub writes: u64,
    /// `get` calls.
    pub reads: u64,
    /// Sorted runs probed across all reads.
    pub run_probes: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions.
    pub compactions: u64,
}

/// One immutable sorted run (an SSTable).
#[derive(Debug, Clone)]
struct SortedRun {
    /// Sorted by key; `None` value is a tombstone.
    entries: Vec<(Bytes, Option<Bytes>)>,
}

impl SortedRun {
    fn get(&self, key: &[u8]) -> Option<&Option<Bytes>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// A single column family: memtable + sorted runs.
///
/// # Examples
///
/// ```
/// use move_cluster::ColumnFamily;
///
/// let mut cf = ColumnFamily::new(4);
/// cf.put(b"k1".as_ref(), b"v1".as_ref());
/// assert_eq!(cf.get(b"k1").as_deref(), Some(b"v1".as_ref()));
/// ```
#[derive(Debug, Clone)]
pub struct ColumnFamily {
    memtable: BTreeMap<Bytes, Option<Bytes>>,
    memtable_limit: usize,
    runs: Vec<SortedRun>,
    compaction_threshold: usize,
    stats: StoreStats,
}

impl ColumnFamily {
    /// Creates a column family flushing its memtable at `memtable_limit`
    /// entries (compaction triggers at 4 runs).
    ///
    /// # Panics
    ///
    /// Panics if `memtable_limit == 0`.
    pub fn new(memtable_limit: usize) -> Self {
        assert!(memtable_limit > 0, "memtable_limit must be positive");
        Self {
            memtable: BTreeMap::new(),
            memtable_limit,
            runs: Vec::new(),
            compaction_threshold: 4,
            stats: StoreStats::default(),
        }
    }

    /// Writes a key/value pair.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.stats.writes += 1;
        self.memtable.insert(key.into(), Some(value.into()));
        self.maybe_flush();
    }

    /// Deletes a key (tombstone).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.stats.writes += 1;
        self.memtable.insert(key.into(), None);
        self.maybe_flush();
    }

    /// Point read: memtable first, then runs newest-first.
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        self.stats.reads += 1;
        if let Some(v) = self.memtable.get(key) {
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            self.stats.run_probes += 1;
            if let Some(v) = run.get(key) {
                return v.clone();
            }
        }
        None
    }

    /// All live `(key, value)` pairs whose key starts with `prefix`, merged
    /// across memtable and runs (newest version wins), in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        // Newest-first overlay: memtable, then runs from newest to oldest.
        let mut seen: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        let in_prefix = |k: &Bytes| k.starts_with(prefix);
        for (k, v) in self.memtable.iter().filter(|(k, _)| in_prefix(k)) {
            seen.entry(k.clone()).or_insert_with(|| v.clone());
        }
        for run in self.runs.iter().rev() {
            for (k, v) in run.entries.iter().filter(|(k, _)| in_prefix(k)) {
                seen.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
        seen.into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Number of live keys (requires a full merge; intended for tests and
    /// reports, not hot paths).
    pub fn live_len(&self) -> usize {
        self.scan_prefix(b"").len()
    }

    /// Number of sorted runs currently on "disk".
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.memtable_limit {
            self.flush();
        }
        if self.runs.len() >= self.compaction_threshold {
            self.compact();
        }
    }

    /// Flushes the memtable into a new sorted run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<_> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.runs.push(SortedRun { entries });
        self.stats.flushes += 1;
    }

    /// Merges all runs into one, dropping tombstones and shadowed versions.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        // Oldest first, newer versions overwrite.
        for run in self.runs.drain(..) {
            for (k, v) in run.entries {
                merged.insert(k, v);
            }
        }
        let entries: Vec<_> = merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        if !entries.is_empty() {
            self.runs.push(SortedRun { entries });
        }
        self.stats.compactions += 1;
    }
}

/// A node's set of named column families.
///
/// # Examples
///
/// ```
/// use move_cluster::KvStore;
///
/// let mut store = KvStore::new(1024);
/// store.cf("filters").put(b"f1".as_ref(), b"news".as_ref());
/// assert!(store.cf("filters").get(b"f1").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct KvStore {
    families: HashMap<String, ColumnFamily>,
    memtable_limit: usize,
}

impl KvStore {
    /// Creates a store whose column families flush at `memtable_limit`
    /// entries.
    pub fn new(memtable_limit: usize) -> Self {
        Self {
            families: HashMap::new(),
            memtable_limit: memtable_limit.max(1),
        }
    }

    /// The named column family, created on first access.
    pub fn cf(&mut self, name: &str) -> &mut ColumnFamily {
        let limit = self.memtable_limit;
        self.families
            .entry(name.to_owned())
            .or_insert_with(|| ColumnFamily::new(limit))
    }

    /// The named column family if it exists.
    pub fn cf_opt(&self, name: &str) -> Option<&ColumnFamily> {
        self.families.get(name)
    }

    /// Names of existing column families (unordered).
    pub fn family_names(&self) -> Vec<&str> {
        self.families.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let mut cf = ColumnFamily::new(100);
        cf.put(b"a".as_ref(), b"1".as_ref());
        cf.put(b"a".as_ref(), b"2".as_ref());
        assert_eq!(cf.get(b"a").as_deref(), Some(b"2".as_ref()));
        assert_eq!(cf.get(b"b"), None);
    }

    #[test]
    fn reads_hit_flushed_runs() {
        let mut cf = ColumnFamily::new(2);
        cf.put(b"a".as_ref(), b"1".as_ref());
        cf.put(b"b".as_ref(), b"2".as_ref()); // triggers flush
        assert_eq!(cf.run_count(), 1);
        cf.put(b"c".as_ref(), b"3".as_ref());
        assert_eq!(cf.get(b"a").as_deref(), Some(b"1".as_ref()));
        assert!(cf.stats().run_probes > 0);
    }

    #[test]
    fn newest_version_wins_across_levels() {
        let mut cf = ColumnFamily::new(1); // every write flushes
        cf.put(b"k".as_ref(), b"old".as_ref());
        cf.put(b"k".as_ref(), b"new".as_ref());
        assert_eq!(cf.get(b"k").as_deref(), Some(b"new".as_ref()));
    }

    #[test]
    fn tombstones_survive_flush_and_die_in_compaction() {
        let mut cf = ColumnFamily::new(1);
        cf.put(b"k".as_ref(), b"v".as_ref());
        cf.delete(b"k".as_ref());
        assert_eq!(cf.get(b"k"), None);
        cf.compact();
        assert_eq!(cf.get(b"k"), None);
        assert_eq!(cf.live_len(), 0);
    }

    #[test]
    fn scan_prefix_merges_levels_in_key_order() {
        let mut cf = ColumnFamily::new(2);
        cf.put(b"p/a".as_ref(), b"1".as_ref());
        cf.put(b"p/c".as_ref(), b"3".as_ref()); // flush
        cf.put(b"p/b".as_ref(), b"2".as_ref());
        cf.put(b"q/x".as_ref(), b"9".as_ref()); // flush
        cf.put(b"p/a".as_ref(), b"1'".as_ref()); // newer version in memtable
        let scan = cf.scan_prefix(b"p/");
        let keys: Vec<&[u8]> = scan.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(
            keys,
            vec![b"p/a".as_ref(), b"p/b".as_ref(), b"p/c".as_ref()]
        );
        assert_eq!(scan[0].1.as_ref(), b"1'");
    }

    #[test]
    fn auto_compaction_bounds_run_count() {
        let mut cf = ColumnFamily::new(1);
        for i in 0..64u32 {
            cf.put(i.to_be_bytes().to_vec(), b"v".as_ref());
        }
        assert!(cf.run_count() <= 4, "runs: {}", cf.run_count());
        assert!(cf.stats().compactions > 0);
        assert_eq!(cf.live_len(), 64);
    }

    #[test]
    fn kvstore_families_are_independent() {
        let mut s = KvStore::new(16);
        s.cf("a").put(b"k".as_ref(), b"1".as_ref());
        s.cf("b").put(b"k".as_ref(), b"2".as_ref());
        assert_eq!(s.cf("a").get(b"k").as_deref(), Some(b"1".as_ref()));
        assert_eq!(s.cf("b").get(b"k").as_deref(), Some(b"2".as_ref()));
        let mut names = s.family_names();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
        assert!(s.cf_opt("c").is_none());
    }

    #[test]
    #[should_panic(expected = "memtable_limit")]
    fn zero_memtable_rejected() {
        let _ = ColumnFamily::new(0);
    }
}
