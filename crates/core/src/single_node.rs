//! The single-node experiment of Figs. 6–7.
//!
//! Before the cluster experiments, the paper studies how the split between
//! the number of documents `Q` and filters `P` (at fixed work product
//! `R = P × Q`) affects a single node's throughput. The node indexes the
//! `P` filters in a local inverted list and matches each document with the
//! centralized SIFT algorithm. Throughput is reported as *pair-match rate*
//! `R / time` — the reading under which the paper's observations hold
//! (larger `P` ⇒ higher throughput with a disk-capacity knee; WT beats AP
//! by roughly the document-size ratio).
//!
//! Both a real wall-clock measurement and the cost-model projection are
//! reported: the wall-clock run shows the in-memory shape, while the
//! cost-model run includes the disk knee (`stored filters > C_mem`) that an
//! in-RAM reproduction cannot exhibit physically.

use move_cluster::CostModel;
use move_index::InvertedIndex;
use move_types::{Document, Filter, MatchSemantics};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Results of one single-node run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleNodeReport {
    /// Filters registered (`P`).
    pub filters: u64,
    /// Documents matched (`Q`).
    pub docs: u64,
    /// The work product `R = P × Q`.
    pub pairs: u64,
    /// Wall-clock seconds for the matching loop.
    pub real_seconds: f64,
    /// Virtual seconds under the cost model (with disk knee).
    pub virtual_seconds: f64,
    /// `pairs / real_seconds`.
    pub pair_throughput_real: f64,
    /// `pairs / virtual_seconds`.
    pub pair_throughput_virtual: f64,
    /// `docs / real_seconds`.
    pub doc_throughput_real: f64,
    /// Total posting entries scanned.
    pub postings_scanned: u64,
    /// Total posting lists retrieved.
    pub lists_retrieved: u64,
    /// Total matching filter deliveries.
    pub deliveries: u64,
}

/// Indexes `filters` on one node and SIFT-matches every document, timing
/// the loop and projecting the cost model.
///
/// # Examples
///
/// ```
/// use move_core::run_single_node;
/// use move_cluster::CostModel;
/// use move_types::{Document, Filter, MatchSemantics, TermId};
///
/// let filters = vec![Filter::new(0u64, [TermId(1)])];
/// let docs = vec![Document::from_distinct_terms(0u64, [TermId(1), TermId(2)])];
/// let report = run_single_node(&filters, &docs, MatchSemantics::Boolean, &CostModel::default());
/// assert_eq!(report.deliveries, 1);
/// assert_eq!(report.pairs, 1);
/// ```
pub fn run_single_node(
    filters: &[Filter],
    docs: &[Document],
    semantics: MatchSemantics,
    cost: &CostModel,
) -> SingleNodeReport {
    let mut index = InvertedIndex::new(semantics);
    for f in filters {
        index.insert(f.clone());
    }
    let stored = filters.len() as u64;

    let mut postings = 0u64;
    let mut lists = 0u64;
    let mut deliveries = 0u64;
    let mut virtual_seconds = 0.0;
    let start = Instant::now();
    for d in docs {
        let outcome = index.match_document(d);
        postings += outcome.postings_scanned;
        // SIFT attempts a lookup per document term, found or not.
        let attempted = d.distinct_terms() as u64;
        lists += attempted;
        deliveries += outcome.matched.len() as u64;
        virtual_seconds += cost.match_cost(attempted, outcome.postings_scanned, stored);
    }
    let real_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let pairs = stored * docs.len() as u64;

    SingleNodeReport {
        filters: stored,
        docs: docs.len() as u64,
        pairs,
        real_seconds,
        virtual_seconds,
        pair_throughput_real: pairs as f64 / real_seconds,
        pair_throughput_virtual: if virtual_seconds > 0.0 {
            pairs as f64 / virtual_seconds
        } else {
            0.0
        },
        doc_throughput_real: docs.len() as f64 / real_seconds,
        postings_scanned: postings,
        lists_retrieved: lists,
        deliveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_types::TermId;

    fn setup(p: u64, q: u64, terms_per_doc: u32) -> (Vec<Filter>, Vec<Document>) {
        let filters: Vec<Filter> = (0..p)
            .map(|id| Filter::new(id, [TermId((id % 500) as u32)]))
            .collect();
        let docs: Vec<Document> = (0..q)
            .map(|id| {
                Document::from_distinct_terms(
                    id,
                    (0..terms_per_doc).map(|k| TermId((id as u32 + k * 7) % 600)),
                )
            })
            .collect();
        (filters, docs)
    }

    #[test]
    fn counts_are_consistent() {
        let (filters, docs) = setup(200, 20, 10);
        let r = run_single_node(
            &filters,
            &docs,
            MatchSemantics::Boolean,
            &CostModel::default(),
        );
        assert_eq!(r.pairs, 4_000);
        assert_eq!(r.lists_retrieved, 200);
        assert!(r.real_seconds > 0.0);
        assert!(r.pair_throughput_real > 0.0);
    }

    #[test]
    fn disk_knee_appears_in_virtual_time() {
        // Make posting scans the dominant term so the knee is visible.
        let cost = CostModel {
            mem_capacity: 100,
            disk_penalty: 10.0,
            y_s: 0.0,
            y_p: 1e-6,
            ..CostModel::default()
        };
        let (small_f, docs) = setup(100, 10, 10);
        let (big_f, _) = setup(1_000, 10, 10);
        let small = run_single_node(&small_f, &docs, MatchSemantics::Boolean, &cost);
        let big = run_single_node(&big_f, &docs, MatchSemantics::Boolean, &cost);
        // 10× the filters but 100× the virtual posting cost (10× postings
        // × 10× disk penalty): pair throughput must *not* scale with P.
        assert!(
            big.pair_throughput_virtual < small.pair_throughput_virtual * 5.0,
            "knee missing: {} vs {}",
            big.pair_throughput_virtual,
            small.pair_throughput_virtual
        );
    }

    #[test]
    fn larger_docs_cost_more_per_pair() {
        let cost = CostModel::default();
        let (filters, small_docs) = setup(500, 20, 5);
        let (_, big_docs) = setup(500, 20, 200);
        let small = run_single_node(&filters, &small_docs, MatchSemantics::Boolean, &cost);
        let big = run_single_node(&filters, &big_docs, MatchSemantics::Boolean, &cost);
        // Same P and Q, but term-rich documents pay |d| seeks each (the
        // AP-vs-WT contrast of Figs. 6–7).
        assert!(big.virtual_seconds > small.virtual_seconds * 5.0);
    }
}
