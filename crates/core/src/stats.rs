//! Node-level workload statistics — the master node's view.
//!
//! §V reduces maintenance cost by aggregating per-term statistics to the
//! node level: "for all terms tᵢ maintained on the node mᵢ, we sum the
//! associated pᵢ and qᵢ to represent the node popularity p′ᵢ and the node
//! frequency q′ᵢ". A dedicated master collects these from every node and
//! computes the allocation factor n′ᵢ.

use serde::{Deserialize, Serialize};

/// The per-node aggregates the statistics master works with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// `p′ᵢ · P`: the number of `(term, filter)` registration pairs homed
    /// on this node — exactly the filter copies the node must store when
    /// unallocated.
    pub pairs: u64,
    /// Samples contributing to `q′ᵢ`: how many `(document, term)` routing
    /// hits landed on this node across the observed documents.
    pub doc_hits: u64,
    /// Posting entries this node would scan for the observed documents —
    /// the empirical `Σₜ qₜ·pₜ·P` over the node's terms, i.e. its matching
    /// *load*. The per-term optimum `nₜ ∝ √(pₜqₜ)` aggregates to the node
    /// level as `nᵢ ∝ √(loadᵢ / pairsᵢ)`, which needs this sum (the plain
    /// product `p′ᵢ·q′ᵢ` misses the term-level correlation).
    pub hit_postings: u64,
    /// Documents observed while collecting `doc_hits`.
    pub docs_observed: u64,
}

impl NodeStats {
    /// The node popularity `p′ᵢ` given the total number of filters `P`.
    pub fn popularity(&self, total_filters: u64) -> f64 {
        if total_filters == 0 {
            0.0
        } else {
            self.pairs as f64 / total_filters as f64
        }
    }

    /// The node frequency `q′ᵢ`: expected routing hits per published
    /// document.
    pub fn frequency(&self) -> f64 {
        if self.docs_observed == 0 {
            0.0
        } else {
            self.doc_hits as f64 / self.docs_observed as f64
        }
    }

    /// Expected posting entries scanned per published document
    /// (`Σₜ qₜ·pₜ·P` over the node's terms).
    pub fn load(&self) -> f64 {
        if self.docs_observed == 0 {
            0.0
        } else {
            self.hit_postings as f64 / self.docs_observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_and_frequency() {
        let s = NodeStats {
            pairs: 500,
            doc_hits: 30,
            hit_postings: 1_000,
            docs_observed: 10,
        };
        assert!((s.popularity(1_000) - 0.5).abs() < 1e-12);
        assert!((s.frequency() - 3.0).abs() < 1e-12);
        assert!((s.load() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = NodeStats::default();
        assert_eq!(s.popularity(0), 0.0);
        assert_eq!(s.frequency(), 0.0);
        assert_eq!(s.load(), 0.0);
    }
}
