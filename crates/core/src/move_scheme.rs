//! MOVE: the distributed inverted list plus adaptive filter allocation
//! (paper §IV–V).

use crate::scheme::{execute_steps, JoinSummary};
use crate::{
    encode_filter, AllocationFactors, AllocationPolicy, Dissemination, FactorRule, Grid, GridMode,
    MatchTask, MoveViewParts, NodeStats, RegisterOp, RegisterOps, RouteStep, RoutingView,
    SchemeOutput, StatsDelta, SystemConfig, UnregisterOp,
};
use move_bloom::CountingBloomFilter;
use move_cluster::{partition_of_term, Job, SimCluster, Stage};
use move_index::{
    FanoutTable, FilterAggregator, InvertedIndex, MatchScratch, RegisterOutcome, UnregisterOutcome,
};
use move_types::{Document, Filter, FilterId, NodeId, Result, TermId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Dense per-term `u64` counters indexed by the dictionary's dense term
/// ids. The statistics observer bumps one of these for every term of every
/// published document, which makes a hash map the wrong shape on the hot
/// path; a plain vector (grown on first touch, zero = absent) turns each
/// sample into an array access.
#[derive(Debug, Clone, Default)]
struct TermCounters {
    counts: Vec<u64>,
}

impl TermCounters {
    /// The count for `t` (zero when never incremented).
    fn get(&self, t: TermId) -> u64 {
        self.counts.get(t.as_usize()).copied().unwrap_or(0)
    }

    /// Increments the count for `t`, growing the table on first touch.
    fn incr(&mut self, t: TermId) {
        let i = t.as_usize();
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// Decrements the count for `t`, saturating at zero.
    fn decr(&mut self, t: TermId) {
        if let Some(c) = self.counts.get_mut(t.as_usize()) {
            *c = c.saturating_sub(1);
        }
    }

    /// `(term, count)` for every nonzero count, in ascending term order.
    fn iter_nonzero(&self) -> impl Iterator<Item = (TermId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (TermId(i as u32), c))
    }
}

/// The MOVE system.
///
/// Filters are registered exactly as in the IL baseline — on the home node
/// of each of their terms, indexed under the routing term only. On top of
/// that layout, the *statistics master* aggregates per-node popularity
/// `p′ᵢ` (registration pairs) and frequency `q′ᵢ` (routing hits per
/// document, learned from an offline corpus sample and refreshed from live
/// traffic, plus the per-document posting load `Σₜ pₜqₜ`), computes
/// allocation factors `nᵢ` ([`FactorRule`]: the Theorems 1/2 and §V rules,
/// or the default min–max load balancing), and reorganizes each overloaded
/// home node's filters
/// into a `1/rᵢ × rᵢnᵢ` grid: *separated* into `rᵢnᵢ` column subsets,
/// each *replicated* down `1/rᵢ` rows. A published document is routed to
/// the home node, which forwards it in parallel to all nodes of one random
/// row — every subset is consulted exactly once, so delivery stays
/// complete while both the document load (rows) and the storage load
/// (columns) are spread.
///
/// # Examples
///
/// ```
/// use move_core::{Dissemination, MoveScheme, SystemConfig};
/// use move_types::{Document, Filter, FilterId, TermId};
///
/// let mut system = MoveScheme::new(SystemConfig::small_test()).unwrap();
/// for id in 0..100u64 {
///     system.register(&Filter::new(id, [TermId((id % 5) as u32)])).unwrap();
/// }
/// // Proactive allocation from an offline sample.
/// let sample: Vec<_> = (0..20u64)
///     .map(|id| Document::from_distinct_terms(id, [TermId((id % 5) as u32)]))
///     .collect();
/// system.observe_corpus(&sample);
/// system.allocate().unwrap();
/// let out = system.publish(0.0, &Document::from_distinct_terms(999u64, [TermId(0)])).unwrap();
/// assert_eq!(out.matched.len(), 20);
/// ```
#[derive(Debug)]
pub struct MoveScheme {
    config: SystemConfig,
    cluster: SimCluster,
    /// Match-serving inverted index per node, shared with the live
    /// runtime's shard snapshots (copy-on-write on mutation).
    indexes: Vec<Arc<InvertedIndex>>,
    /// Registered-terms Bloom filter (counting, so unregistration works).
    bloom: CountingBloomFilter,
    /// Serving filter copies per node.
    storage: Vec<u64>,
    /// Registration pairs `(term, filter)` per *home* node — the
    /// authoritative layout the allocation redistributes.
    home_pairs: Vec<Vec<(TermId, FilterId)>>,
    /// Global filter bodies (the metadata directory), shared with every
    /// serving index that posts them.
    directory: HashMap<FilterId, Arc<Filter>>,
    /// Current allocation grid per home node (node-aggregated mode).
    allocations: Vec<Option<Grid>>,
    /// Current allocation grid per term (per-term mode — §V's discarded
    /// alternative, kept for the node-aggregation ablation).
    term_allocations: HashMap<TermId, Grid>,
    /// `q′ᵢ` sample: routing hits per node.
    doc_hits: Vec<u64>,
    /// Load sample: posting entries the node would scan per observed doc.
    hit_postings: Vec<u64>,
    /// Registered pairs per term (posting lengths at the home) — feeds the
    /// load sample.
    term_pairs: TermCounters,
    /// Routing hits per term from the observed documents (`qₜ` sample,
    /// needed by the per-term aggregation mode).
    term_hits: TermCounters,
    docs_observed: u64,
    docs_since_refresh: u64,
    rule: FactorRule,
    grid_mode: GridMode,
    /// Terms inside a join's handover window: their pairs are deliberately
    /// duplicated onto the joiner while the old homes keep serving, so the
    /// grid-coverage invariant is relaxed for them until `retire_join`.
    handover_terms: std::collections::BTreeSet<TermId>,
    /// Canonicalizing aggregation layer: identical predicates collapse to
    /// one canonical filter whose grid copies are stored once
    /// (DESIGN.md §12).
    aggregator: FilterAggregator,
    /// Whether aggregation is on ([`SystemConfig::aggregate_filters`]).
    aggregate: bool,
    /// Reusable match-kernel working memory for `publish`.
    scratch: MatchScratch,
    rng: StdRng,
}

impl MoveScheme {
    /// Builds the scheme on a fresh simulated cluster.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Result<Self> {
        config.validate()?;
        let cluster = SimCluster::new(config.nodes, config.racks, config.cost)?;
        Ok(Self {
            indexes: (0..config.nodes)
                .map(|_| Arc::new(InvertedIndex::new(config.semantics)))
                .collect(),
            bloom: CountingBloomFilter::new(config.expected_terms, config.bloom_fpr),
            storage: vec![0; config.nodes],
            home_pairs: vec![Vec::new(); config.nodes],
            directory: HashMap::new(),
            allocations: vec![None; config.nodes],
            term_allocations: HashMap::new(),
            doc_hits: vec![0; config.nodes],
            hit_postings: vec![0; config.nodes],
            term_pairs: TermCounters::default(),
            term_hits: TermCounters::default(),
            docs_observed: 0,
            docs_since_refresh: 0,
            handover_terms: std::collections::BTreeSet::new(),
            aggregator: FilterAggregator::new(),
            aggregate: config.aggregate_filters,
            rule: FactorRule::LoadBalance,
            grid_mode: GridMode::Optimal,
            scratch: MatchScratch::new(),
            rng: StdRng::seed_from_u64(config.seed),
            cluster,
            config,
        })
    }

    /// Selects the allocation-factor rule. The default is the min–max
    /// [`FactorRule::LoadBalance`], which targets the busiest-node bound
    /// that governs throughput; §V's `nᵢ ∝ √(pᵢqᵢ)` and the theorem rules
    /// are available for the ablations.
    pub fn set_factor_rule(&mut self, rule: FactorRule) {
        self.rule = rule;
    }

    /// Forces a grid mode (for the replication/separation ablation).
    pub fn set_grid_mode(&mut self, mode: GridMode) {
        self.grid_mode = mode;
    }

    /// The current allocation grid of a home node, if any.
    pub fn allocation(&self, home: NodeId) -> Option<&Grid> {
        self.allocations[home.as_usize()].as_ref()
    }

    /// Feeds an offline document sample into the `q′ᵢ` statistics — the
    /// proactive policy's corpus-based approximation (§V: "an offline
    /// approach based on the existing document corpus").
    pub fn observe_corpus(&mut self, docs: &[Document]) {
        for d in docs {
            self.observe(d);
        }
    }

    fn observe(&mut self, doc: &Document) {
        for &t in doc.terms() {
            if self.bloom.contains(&t.0) {
                let home = self.cluster.home_of_term(t);
                self.doc_hits[home.as_usize()] += 1;
                self.hit_postings[home.as_usize()] += self.term_pairs.get(t);
                self.term_hits.incr(t);
            }
        }
        self.docs_observed += 1;
    }

    /// Per-node statistics as the master sees them.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        (0..self.config.nodes)
            .map(|i| NodeStats {
                pairs: self.home_pairs[i].len() as u64,
                doc_hits: self.doc_hits[i],
                hit_postings: self.hit_postings[i],
                docs_observed: self.docs_observed,
            })
            .collect()
    }

    /// Runs the statistics master: computes allocation factors, lays out
    /// grids, redistributes filters, and charges movement costs.
    ///
    /// # Errors
    ///
    /// Returns [`move_types::MoveError::CapacityExceeded`] when the
    /// registered filters cannot fit the cluster even unreplicated.
    pub fn allocate(&mut self) -> Result<()> {
        let stats = self.node_stats();
        let total = self.directory.len() as u64;
        let beta = self.config.cost.beta(total);
        let factors = AllocationFactors::compute(
            &stats,
            total,
            self.config.capacity_per_node,
            self.rule,
            beta,
            &mut self.rng,
        )?;

        let mut new_allocations: Vec<Option<Grid>> = vec![None; self.config.nodes];
        // Planned per-node matching load (expected postings scanned per
        // published document) — the hybrid strategy spreads grids by it.
        let mut planned_load: Vec<f64> = stats.iter().map(NodeStats::load).collect();
        // The heaviest homes pick first.
        let mut order: Vec<usize> = (0..self.config.nodes)
            .filter(|&i| stats[i].pairs > 0)
            .collect();
        order.sort_by(|&a, &b| stats[b].load().total_cmp(&stats[a].load()));
        for i in order {
            let pairs = stats[i].pairs;
            if factors.n[i] <= 1 {
                continue;
            }
            let (rows, cols) = Grid::shape(
                self.grid_mode,
                factors.n[i],
                pairs,
                self.config.capacity_per_node,
            );
            if rows * cols <= 1 {
                continue;
            }
            let home = NodeId(i as u32);
            if !self.cluster.is_alive(home) {
                continue; // a dead home cannot route to a grid anyway
            }
            let mut candidates = vec![home];
            candidates.extend(self.config.placement.select(
                &self.cluster,
                home,
                self.config.nodes - 1,
            ));
            // Re-allocation after failures must not hand subsets to nodes
            // that are already gone.
            candidates.retain(|&n| self.cluster.is_alive(n));
            // The hybrid (production) placement additionally spreads grids
            // onto the least-loaded candidates — the dynamic-snitch-style
            // refinement a deployment would use. The pure ring/rack
            // strategies keep their strict locality order: locality is
            // exactly what §V's comparison measures.
            if self.config.placement == crate::PlacementStrategy::Hybrid {
                let loads = planned_load.clone();
                candidates.sort_by(|a, b| loads[a.as_usize()].total_cmp(&loads[b.as_usize()]));
            }
            let slots: Vec<NodeId> = candidates.into_iter().take(rows * cols).collect();
            if slots.len() < cols {
                continue; // cannot host even one full replica row
            }
            let grid = Grid::build(rows, cols, slots);
            // The home's load is redistributed evenly over the grid.
            planned_load[i] -= stats[i].load();
            let share = stats[i].load() / (grid.rows() * grid.cols()) as f64;
            for node in grid.nodes() {
                planned_load[node.as_usize()] += share;
            }
            // Movement: every copy beyond the home's original single copy
            // crosses the network.
            let copies_created = pairs * (grid.rows() as u64) - pairs.div_ceil(grid.cols() as u64);
            self.cluster.ledgers_mut().ledger_mut(home).busy_seconds +=
                copies_created as f64 * self.config.move_cost_per_copy;
            new_allocations[i] = Some(grid);
        }
        self.allocations = new_allocations;
        self.rebuild_indexes()?;
        #[cfg(debug_assertions)]
        self.debug_assert_grid_coverage();
        Ok(())
    }

    /// Runs the statistics master in *per-term* mode: one allocation grid
    /// per hot term instead of one per home node — the alternative §V
    /// rejects because "mᵢ has to maintain Tᵢ two-dimensional arrays in the
    /// forwarding table … the associated maintenance cost is nontrivial".
    /// Kept for the node-aggregation ablation, which quantifies exactly
    /// that trade: table count and entries vs throughput.
    ///
    /// # Errors
    ///
    /// As [`MoveScheme::allocate`].
    pub fn allocate_per_term(&mut self) -> Result<()> {
        let total = self.directory.len() as u64;
        let beta = self.config.cost.beta(total);
        let terms: Vec<TermId> = self.term_pairs.iter_nonzero().map(|(t, _)| t).collect();
        let stats: Vec<NodeStats> = terms
            .iter()
            .map(|&t| {
                let pairs = self.term_pairs.get(t);
                let hits = self.term_hits.get(t);
                NodeStats {
                    pairs,
                    doc_hits: hits,
                    hit_postings: hits * pairs,
                    docs_observed: self.docs_observed,
                }
            })
            .collect();
        let budget = self.config.nodes as u64 * self.config.capacity_per_node;
        let factors = AllocationFactors::compute_with_budget(
            &stats,
            total,
            budget,
            self.config.nodes as u64,
            self.rule,
            beta,
            &mut self.rng,
        )?;

        self.allocations = vec![None; self.config.nodes];
        self.term_allocations.clear();
        for (k, &t) in terms.iter().enumerate() {
            if factors.n[k] <= 1 {
                continue;
            }
            let (rows, cols) = Grid::shape(
                self.grid_mode,
                factors.n[k],
                stats[k].pairs,
                self.config.capacity_per_node,
            );
            if rows * cols <= 1 {
                continue;
            }
            let home = self.cluster.home_of_term(t);
            if !self.cluster.is_alive(home) {
                continue;
            }
            let mut slots = vec![home];
            slots.extend(
                self.config
                    .placement
                    .select(&self.cluster, home, rows * cols - 1),
            );
            slots.retain(|&n| self.cluster.is_alive(n));
            if slots.len() < cols {
                continue;
            }
            let grid = Grid::build(rows, cols, slots);
            let copies = stats[k].pairs * (grid.rows() as u64 - 1);
            self.cluster.ledgers_mut().ledger_mut(home).busy_seconds +=
                copies as f64 * self.config.move_cost_per_copy;
            self.term_allocations.insert(t, grid);
        }
        self.rebuild_indexes()?;
        #[cfg(debug_assertions)]
        self.debug_assert_grid_coverage();
        Ok(())
    }

    /// Forwarding-table maintenance metrics: `(tables, entries)` — the
    /// number of 2-D arrays the cluster's forwarding engines hold and their
    /// total node-slot entries. §V's node aggregation exists to keep the
    /// first number at one per node.
    pub fn forwarding_tables(&self) -> (usize, usize) {
        let node_tables = self.allocations.iter().flatten();
        let term_tables = self.term_allocations.values();
        let tables = self.allocations.iter().flatten().count() + self.term_allocations.len();
        let entries = node_tables.map(|g| g.nodes().len()).sum::<usize>()
            + term_tables.map(|g| g.nodes().len()).sum::<usize>();
        (tables, entries)
    }

    /// Rebuilds every serving index from the authoritative home layout and
    /// the current allocation grids.
    ///
    /// # Errors
    ///
    /// Returns [`move_types::MoveError::UnknownFilter`] when a home pair
    /// references a filter the directory no longer holds — an internal
    /// consistency breach that registration/unregistration should make
    /// impossible, surfaced as a typed error instead of a panic so a live
    /// control plane can log and abort the refresh.
    fn rebuild_indexes(&mut self) -> Result<()> {
        // Collect every node's (term, filter) pairs first, then construct
        // each shard sort-once via `build_from` — fresh `Arc`s, so shard
        // snapshots the runtime still holds keep serving the old layout
        // untouched.
        let mut entries: Vec<Vec<(TermId, Arc<Filter>)>> = vec![Vec::new(); self.config.nodes];
        self.storage = vec![0; self.config.nodes];
        for i in 0..self.config.nodes {
            for &(t, fid) in &self.home_pairs[i] {
                let Some(filter) = self.directory.get(&fid) else {
                    return Err(move_types::MoveError::UnknownFilter(fid));
                };
                let grid = self
                    .term_allocations
                    .get(&t)
                    .or(self.allocations[i].as_ref());
                match grid {
                    None => {
                        entries[i].push((t, Arc::clone(filter)));
                        self.storage[i] += 1;
                    }
                    Some(grid) => {
                        let col = grid.column_of(fid);
                        for row in 0..grid.rows() {
                            let node = grid.node(row, col);
                            entries[node.as_usize()].push((t, Arc::clone(filter)));
                            self.storage[node.as_usize()] += 1;
                        }
                    }
                }
            }
        }
        for (idx, list) in self.indexes.iter_mut().zip(entries) {
            *idx = Arc::new(InvertedIndex::build_from(self.config.semantics, list));
        }
        Ok(())
    }

    /// Debug-build invariant of the paper's §IV separation/replication
    /// layout, checked after every `allocate()`: a registration pair
    /// `(t, f)` governed by a grid is separated into exactly one column and
    /// replicated down every row of that column — so each replica row
    /// serves the pair exactly once, and the pair is stored on exactly
    /// `rows` nodes. Violations mean a routed document could miss a filter
    /// (lost delivery) or match it from two subsets of the same row
    /// (duplicated work), the two failure modes the grid exists to exclude.
    #[cfg(debug_assertions)]
    fn debug_assert_grid_coverage(&self) {
        for i in 0..self.config.nodes {
            for &(t, fid) in &self.home_pairs[i] {
                if self.handover_terms.contains(&t) {
                    // Mid-handover a moved pair legitimately lives on both
                    // its old home and the joiner (and under both of their
                    // grids after a refresh); exactly-one-column resumes at
                    // `retire_join`.
                    continue;
                }
                let grid = self
                    .term_allocations
                    .get(&t)
                    .or(self.allocations[i].as_ref());
                let Some(grid) = grid else {
                    debug_assert!(
                        self.indexes[i].has_term_posting(fid, t),
                        "unallocated pair ({t}, {fid}) missing from home node {i}"
                    );
                    continue;
                };
                let col = grid.column_of(fid);
                debug_assert!(col < grid.cols(), "column {col} out of grid range");
                for row in 0..grid.rows() {
                    let holders: Vec<usize> = (0..grid.cols())
                        .filter(|&c| {
                            self.indexes[grid.node(row, c).as_usize()].has_term_posting(fid, t)
                        })
                        .collect();
                    debug_assert!(
                        holders == [col],
                        "pair ({t}, {fid}) held by columns {holders:?} in row {row} of home \
                         {i}'s grid; must be exactly its separation column {col}"
                    );
                }
            }
        }
    }

    /// Registers a canonical body on the home (or grid slots) of each of
    /// its terms — the pre-aggregation `register` body.
    fn register_canonical(&mut self, shared: &Arc<Filter>) -> Result<()> {
        for &t in shared.terms() {
            let home = self.cluster.home_of_term(t);
            self.home_pairs[home.as_usize()].push((t, shared.id()));
            self.term_pairs.incr(t);
            self.bloom.insert(&t.0);
            self.cluster
                .store_mut(home)
                .cf("filters")
                .put(shared.id().0.to_be_bytes().to_vec(), encode_filter(shared));
            let grid = self
                .term_allocations
                .get(&t)
                .or(self.allocations[home.as_usize()].as_ref());
            match grid {
                None => {
                    Arc::make_mut(&mut self.indexes[home.as_usize()])
                        .insert_shared_for_term(Arc::clone(shared), t);
                    self.storage[home.as_usize()] += 1;
                }
                Some(grid) => {
                    let col = grid.column_of(shared.id());
                    let slots: Vec<NodeId> =
                        (0..grid.rows()).map(|row| grid.node(row, col)).collect();
                    for node in slots {
                        Arc::make_mut(&mut self.indexes[node.as_usize()])
                            .insert_shared_for_term(Arc::clone(shared), t);
                        self.storage[node.as_usize()] += 1;
                    }
                }
            }
        }
        self.directory.insert(shared.id(), Arc::clone(shared));
        Ok(())
    }

    /// Drops a canonical body's home pairs and serving copies — the
    /// pre-aggregation `unregister` body. Returns whether the canonical was
    /// registered.
    fn unregister_canonical(&mut self, id: FilterId) -> bool {
        let Some(filter) = self.directory.remove(&id) else {
            return false;
        };
        for &t in filter.terms() {
            let home = self.cluster.home_of_term(t);
            self.home_pairs[home.as_usize()].retain(|&(pt, pf)| !(pt == t && pf == id));
            self.term_pairs.decr(t);
            self.bloom.remove(&t.0);
            self.cluster
                .store_mut(home)
                .cf("filters")
                .delete(id.0.to_be_bytes().to_vec());
            let grid = self
                .term_allocations
                .get(&t)
                .or(self.allocations[home.as_usize()].as_ref());
            match grid {
                None => {
                    if Arc::make_mut(&mut self.indexes[home.as_usize()]).remove_term_posting(id, t)
                    {
                        self.storage[home.as_usize()] =
                            self.storage[home.as_usize()].saturating_sub(1);
                    }
                }
                Some(grid) => {
                    let col = grid.column_of(id);
                    let slots: Vec<NodeId> =
                        (0..grid.rows()).map(|row| grid.node(row, col)).collect();
                    for node in slots {
                        if Arc::make_mut(&mut self.indexes[node.as_usize()])
                            .remove_term_posting(id, t)
                        {
                            self.storage[node.as_usize()] =
                                self.storage[node.as_usize()].saturating_sub(1);
                        }
                    }
                }
            }
        }
        true
    }

    /// Expands matched canonical ids to subscriber ids (identity without
    /// aggregation).
    fn expand_matched(&mut self, canonical: Vec<FilterId>) -> Vec<FilterId> {
        if !self.aggregate {
            return canonical;
        }
        let mut out = Vec::with_capacity(canonical.len());
        self.aggregator.expand_into(&canonical, &mut out);
        self.scratch.sort_dedup(&mut out);
        out
    }

    /// Fraction of registered filters with at least one surviving stored
    /// copy (Fig. 9d's availability): an unallocated registration pair
    /// survives while its home node is alive; an allocated pair survives
    /// while any replica row still holds a live node for the filter's
    /// column. Routing repair (the DHT reassigning a dead home's key
    /// range) is Cassandra's job and out of scope, so this measures *data*
    /// survival, which is what the placement strategies trade off.
    pub fn filter_availability(&self) -> f64 {
        let mut total = 0u64;
        let mut reachable = 0u64;
        for i in 0..self.config.nodes {
            for &(t, fid) in &self.home_pairs[i] {
                total += 1;
                let grid = self
                    .term_allocations
                    .get(&t)
                    .or(self.allocations[i].as_ref());
                let ok = match grid {
                    None => self.cluster.is_alive(NodeId(i as u32)),
                    Some(grid) => {
                        let col = grid.column_of(fid);
                        (0..grid.rows()).any(|r| self.cluster.is_alive(grid.node(r, col)))
                    }
                };
                if ok {
                    reachable += 1;
                }
            }
        }
        if total == 0 {
            return 1.0;
        }
        reachable as f64 / total as f64
    }
}

impl Dissemination for MoveScheme {
    fn name(&self) -> &'static str {
        "move"
    }

    fn register(&mut self, filter: &Filter) -> Result<()> {
        self.register_op(filter).map(|_| ())
    }

    fn unregister(&mut self, id: FilterId) -> Result<bool> {
        Ok(!matches!(
            self.unregister_op(id)?,
            UnregisterOp::NotRegistered
        ))
    }

    fn register_op(&mut self, filter: &Filter) -> Result<RegisterOps> {
        if !self.aggregate {
            // Verbatim baseline: every subscription is its own canonical.
            let targets = self.registration_targets(filter);
            let shared = Arc::new(filter.clone());
            self.register_canonical(&shared)?;
            return Ok(RegisterOps {
                displaced: None,
                op: RegisterOp::NewCanonical {
                    canonical: shared,
                    subscriber: filter.id(),
                    targets,
                },
            });
        }
        let displaced = match self.aggregator.canonical_of(filter.id()) {
            Some(c) => {
                let same = self
                    .aggregator
                    .canonical_body(c)
                    .is_some_and(|b| b.terms() == filter.terms());
                if same {
                    return Ok(RegisterOps {
                        displaced: None,
                        op: RegisterOp::NoOp,
                    });
                }
                // Same subscriber id, new predicate: displace the old
                // subscription first so the ops stream stays replayable.
                Some(self.unregister_op(filter.id())?)
            }
            None => None,
        };
        match self.aggregator.register(filter) {
            RegisterOutcome::AlreadyRegistered => Ok(RegisterOps {
                displaced,
                op: RegisterOp::NoOp,
            }),
            RegisterOutcome::Subscribed { canonical } => Ok(RegisterOps {
                displaced,
                op: RegisterOp::Subscribe {
                    canonical: canonical.as_filter_id(),
                    subscriber: filter.id(),
                },
            }),
            RegisterOutcome::NewCanonical { canonical } => {
                let targets = self.registration_targets(&canonical);
                self.register_canonical(&canonical)?;
                Ok(RegisterOps {
                    displaced,
                    op: RegisterOp::NewCanonical {
                        canonical,
                        subscriber: filter.id(),
                        targets,
                    },
                })
            }
        }
    }

    fn unregister_op(&mut self, id: FilterId) -> Result<UnregisterOp> {
        if !self.aggregate {
            let targets = self
                .directory
                .get(&id)
                .map(|body| self.registration_targets(&Arc::clone(body)))
                .unwrap_or_default();
            return Ok(if self.unregister_canonical(id) {
                UnregisterOp::RemoveCanonical {
                    canonical: id,
                    subscriber: id,
                    targets,
                }
            } else {
                UnregisterOp::NotRegistered
            });
        }
        match self.aggregator.unregister(id) {
            UnregisterOutcome::NotRegistered => Ok(UnregisterOp::NotRegistered),
            UnregisterOutcome::Unsubscribed { canonical } => Ok(UnregisterOp::Unsubscribe {
                canonical: canonical.as_filter_id(),
                subscriber: id,
            }),
            UnregisterOutcome::RemovedCanonical { canonical } => {
                let cid = canonical.id();
                // Targets before removal: where the serving copies are now.
                let targets = self.registration_targets(&canonical);
                self.unregister_canonical(cid);
                Ok(UnregisterOp::RemoveCanonical {
                    canonical: cid,
                    subscriber: id,
                    targets,
                })
            }
        }
    }

    fn fanout_table(&self) -> Arc<FanoutTable> {
        self.aggregator.fanout_snapshot()
    }

    fn canonical_filters(&self) -> u64 {
        self.directory.len() as u64
    }

    fn aggregation_bytes(&self) -> u64 {
        if self.aggregate {
            self.aggregator.estimated_bytes() as u64
        } else {
            0
        }
    }

    fn join_node(&mut self) -> Result<JoinSummary> {
        let (node, delta) = self.cluster.join_node();
        self.config.nodes = self.cluster.len();
        self.indexes
            .push(Arc::new(InvertedIndex::new(self.config.semantics)));
        self.storage.push(0);
        self.home_pairs.push(Vec::new());
        self.allocations.push(None);
        self.doc_hits.push(0);
        self.hit_postings.push(0);
        let moved_to: HashMap<usize, (NodeId, NodeId)> = delta
            .moved
            .iter()
            .map(|&(p, old, new)| (p, (old, new)))
            .collect();
        // Duplicate every re-homed registration pair into the joiner's
        // home list — the old homes (and their grids) keep their copies
        // until `retire_join`, so both layout versions serve completely
        // through the handover window.
        let mut moved_terms: std::collections::BTreeMap<TermId, NodeId> =
            std::collections::BTreeMap::new();
        let mut copied: Vec<(TermId, FilterId)> = Vec::new();
        for (i, pairs) in self.home_pairs.iter().enumerate() {
            for &(t, fid) in pairs {
                if let Some(&(old, _)) = moved_to.get(&partition_of_term(t)) {
                    if old.as_usize() == i {
                        copied.push((t, fid));
                        moved_terms.insert(t, old);
                    }
                }
            }
        }
        for &(_, fid) in &copied {
            if let Some(body) = self.directory.get(&fid).cloned() {
                self.cluster
                    .store_mut(node)
                    .cf("filters")
                    .put(fid.0.to_be_bytes().to_vec(), encode_filter(&body));
            }
        }
        self.home_pairs[node.as_usize()].extend(copied);
        self.handover_terms.extend(moved_terms.keys().copied());
        self.rebuild_indexes()?;
        #[cfg(debug_assertions)]
        self.debug_assert_grid_coverage();
        Ok(JoinSummary {
            node,
            layout_version: delta.version,
            partitions_moved: delta.moved.len() as u64,
            moved_terms: moved_terms.into_iter().collect(),
        })
    }

    fn retire_join(&mut self, summary: &JoinSummary) -> Result<()> {
        let moved: std::collections::HashSet<TermId> =
            summary.moved_terms.iter().map(|&(t, _)| t).collect();
        let joiner = summary.node.as_usize();
        for (i, pairs) in self.home_pairs.iter_mut().enumerate() {
            if i == joiner {
                continue;
            }
            pairs.retain(|(t, _)| !moved.contains(t));
        }
        for t in &moved {
            self.handover_terms.remove(t);
        }
        // The old copies are gone: ring-memoized homes for the moved terms
        // must not outlive them (the layout commit bumps no ring epoch).
        self.cluster.invalidate_term_homes();
        self.rebuild_indexes()?;
        #[cfg(debug_assertions)]
        self.debug_assert_grid_coverage();
        Ok(())
    }

    fn publish(&mut self, at: f64, doc: &Document) -> Result<SchemeOutput> {
        let ingress = self.ingress_of(doc);
        let steps = self.route(doc);
        let (matched, stage1, stage2) = execute_steps(
            &steps,
            doc,
            ingress,
            &mut self.cluster,
            &self.indexes,
            &self.storage,
            &mut self.scratch,
        );
        let matched = self.expand_matched(matched);

        self.maintenance(doc)?;

        Ok(SchemeOutput {
            matched,
            job: Job {
                arrival: at,
                stages: vec![Stage::new(stage1), Stage::new(stage2)],
            },
        })
    }

    fn route(&mut self, doc: &Document) -> Vec<RouteStep> {
        // The document travels once to each involved home node, which either
        // matches locally (unallocated) or fans it out to one replica row of
        // its grid — all of the home's routing terms share that grid.
        let mut by_home: std::collections::BTreeMap<NodeId, Vec<TermId>> =
            std::collections::BTreeMap::new();
        for &t in doc.terms() {
            if self.config.use_bloom && !self.bloom.contains(&t.0) {
                continue;
            }
            let home = self.cluster.home_of_term(t);
            if !self.cluster.is_alive(home) {
                continue; // routing entry lost with the home node
            }
            by_home.entry(home).or_default().push(t);
        }

        let mut steps: Vec<RouteStep> = Vec::new();
        for (home, mut terms) in by_home {
            // Per-term grids (the ablation's aggregation mode) route each
            // of their terms independently; the rest follow the node path.
            if !self.term_allocations.is_empty() {
                let mut kept = Vec::with_capacity(terms.len());
                let mut routed_any = false;
                for t in terms {
                    let Some(grid) = self.term_allocations.get(&t).cloned() else {
                        kept.push(t);
                        continue;
                    };
                    if !routed_any {
                        // The home pays the inbound transfer once.
                        steps.push(RouteStep::direct(home, MatchTask::Forward));
                        routed_any = true;
                    }
                    let preferred = self.rng.gen_range(0..grid.rows());
                    for col in 0..grid.cols() {
                        let node = (0..grid.rows())
                            .map(|dr| grid.node((preferred + dr) % grid.rows(), col))
                            .find(|&n| self.cluster.is_alive(n));
                        let Some(node) = node else {
                            continue;
                        };
                        steps.push(RouteStep::forwarded(node, MatchTask::Terms(vec![t]), home));
                    }
                }
                terms = kept;
                if terms.is_empty() {
                    continue;
                }
            }
            match self.allocations[home.as_usize()].clone() {
                None => {
                    steps.push(RouteStep::direct(home, MatchTask::Terms(terms)));
                }
                Some(grid) => {
                    // The home only consults its in-memory forwarding table;
                    // it pays the inbound transfer, then forwards to one
                    // random replica row in parallel.
                    steps.push(RouteStep::direct(home, MatchTask::Forward));
                    let preferred = self.rng.gen_range(0..grid.rows());
                    for col in 0..grid.cols() {
                        // Fail over to another replica row per column.
                        let node = (0..grid.rows())
                            .map(|dr| grid.node((preferred + dr) % grid.rows(), col))
                            .find(|&n| self.cluster.is_alive(n));
                        let Some(node) = node else {
                            continue; // every replica of this subset is down
                        };
                        steps.push(RouteStep::forwarded(
                            node,
                            MatchTask::Terms(terms.clone()),
                            home,
                        ));
                    }
                }
            }
        }
        steps
    }

    fn node_index(&self, node: NodeId) -> &InvertedIndex {
        &self.indexes[node.as_usize()]
    }

    fn shared_node_index(&self, node: NodeId) -> Arc<InvertedIndex> {
        Arc::clone(&self.indexes[node.as_usize()])
    }

    fn registration_targets(&self, filter: &Filter) -> Vec<(NodeId, Option<Vec<TermId>>)> {
        let mut by_node: std::collections::BTreeMap<NodeId, Vec<TermId>> =
            std::collections::BTreeMap::new();
        for &t in filter.terms() {
            let home = self.cluster.home_of_term(t);
            let grid = self
                .term_allocations
                .get(&t)
                .or(self.allocations[home.as_usize()].as_ref());
            match grid {
                None => by_node.entry(home).or_default().push(t),
                Some(grid) => {
                    let col = grid.column_of(filter.id());
                    for row in 0..grid.rows() {
                        by_node.entry(grid.node(row, col)).or_default().push(t);
                    }
                }
            }
        }
        by_node.into_iter().map(|(n, ts)| (n, Some(ts))).collect()
    }

    fn note_published(&mut self, doc: &Document) {
        // Live statistics feed the periodic refresh.
        self.observe(doc);
        self.docs_since_refresh += 1;
    }

    fn refresh_allocation(&mut self) -> Result<bool> {
        // The passive policy also triggers its first allocation from here.
        if self.docs_since_refresh >= self.config.refresh_every_docs {
            self.docs_since_refresh = 0;
            if self.config.allocation_policy == AllocationPolicy::Passive
                || self.allocations.iter().any(Option::is_some)
            {
                self.allocate()?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn refresh_due(&self) -> bool {
        self.docs_since_refresh >= self.config.refresh_every_docs
    }

    fn routing_view(&self, epoch: u64) -> RoutingView {
        let alive = (0..self.cluster.len())
            .map(|n| self.cluster.is_alive(NodeId(n as u32)))
            .collect();
        RoutingView::r#move(
            epoch,
            alive,
            MoveViewParts {
                homes: self.cluster.freeze_term_homes(self.term_pairs.counts.len()),
                bloom: self.bloom.clone(),
                use_bloom: self.config.use_bloom,
                allocations: self.allocations.clone(),
                term_allocations: self.term_allocations.clone(),
                term_pairs: self.term_pairs.counts.clone(),
            },
        )
        .with_layout_version(self.cluster.layout().version())
    }

    fn absorb_stats(&mut self, delta: &StatsDelta) {
        // Shards observed against a post-join view may carry hits for a
        // node this scheme learned about in the same control batch — grow
        // rather than drop, mirroring `StatsDelta::merge`.
        for (i, &h) in delta.doc_hits.iter().enumerate() {
            if self.doc_hits.len() <= i {
                self.doc_hits.resize(i + 1, 0);
            }
            self.doc_hits[i] += h;
        }
        for (i, &p) in delta.hit_postings.iter().enumerate() {
            if self.hit_postings.len() <= i {
                self.hit_postings.resize(i + 1, 0);
            }
            self.hit_postings[i] += p;
        }
        for (i, &h) in delta.term_hits.iter().enumerate() {
            if h > 0 {
                if self.term_hits.counts.len() <= i {
                    self.term_hits.counts.resize(i + 1, 0);
                }
                self.term_hits.counts[i] += h;
            }
        }
        self.docs_observed += delta.docs;
        self.docs_since_refresh += delta.docs;
    }

    fn doc_hits_per_node(&self) -> Vec<u64> {
        self.doc_hits.clone()
    }

    fn storage_per_node(&self) -> Vec<u64> {
        self.storage.clone()
    }

    fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    fn registered_filters(&self) -> u64 {
        if self.aggregate {
            self.aggregator.subscriber_count() as u64
        } else {
            self.directory.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_index::brute_force;
    use move_types::MatchSemantics;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filter(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    fn doc(id: u64, terms: &[u32]) -> Document {
        Document::from_distinct_terms(id, terms.iter().map(|&t| TermId(t)))
    }

    /// A skewed workload small enough for tests but forcing allocation:
    /// term 0 is in a third of the filters and almost every document.
    fn skewed_setup(capacity: u64) -> (MoveScheme, Vec<Filter>, Vec<Document>) {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = capacity;
        let mut sys = MoveScheme::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let filters: Vec<Filter> = (0..400u64)
            .map(|id| {
                let mut terms = vec![if id % 3 == 0 {
                    0
                } else {
                    rng.gen_range(1..80u32)
                }];
                if rng.gen::<bool>() {
                    terms.push(rng.gen_range(1..80u32));
                }
                filter(id, &terms)
            })
            .collect();
        for f in &filters {
            sys.register(f).unwrap();
        }
        let sample: Vec<Document> = (0..60u64)
            .map(|id| {
                let mut terms: Vec<u32> = vec![0];
                for _ in 0..6 {
                    terms.push(rng.gen_range(1..90u32));
                }
                terms.sort_unstable();
                terms.dedup();
                doc(id, &terms)
            })
            .collect();
        (sys, filters, sample)
    }

    #[test]
    fn unallocated_move_equals_il_semantics() {
        let (mut sys, filters, docs) = skewed_setup(1_000_000);
        for d in &docs {
            let got = sys.publish(0.0, d).unwrap();
            assert_eq!(
                got.matched,
                brute_force(&filters, d, MatchSemantics::Boolean)
            );
        }
    }

    #[test]
    fn allocation_preserves_completeness() {
        let (mut sys, filters, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        assert!(
            sys.allocations.iter().any(Option::is_some),
            "tight capacity must force allocation"
        );
        for d in &sample {
            let got = sys.publish(0.0, d).unwrap();
            assert_eq!(
                got.matched,
                brute_force(&filters, d, MatchSemantics::Boolean),
                "doc {}",
                d.id()
            );
        }
    }

    #[test]
    fn allocation_respects_capacity_per_node() {
        let (mut sys, _, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        // The optimizer's constraint is cluster-wide (Σ nᵢ·pᵢ·P = N·C);
        // individual nodes may host subsets of several grids, so per-node
        // occupancy is bounded only within a small factor at this toy scale.
        let storage = sys.storage_per_node();
        let total: u64 = storage.iter().sum();
        assert!(
            total <= 6 * 120 + 120,
            "total {total} exceeds cluster budget"
        );
        for (i, &s) in storage.iter().enumerate() {
            assert!(s <= 3 * 120, "node {i} stores {s}, far over capacity");
        }
    }

    #[test]
    fn allocation_balances_storage_better_than_none() {
        let (mut sys, _, sample) = skewed_setup(120);
        let before = move_stats::Summary::of(
            &sys.storage_per_node()
                .iter()
                .map(|&s| s as f64)
                .collect::<Vec<_>>(),
        );
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        let after = move_stats::Summary::of(
            &sys.storage_per_node()
                .iter()
                .map(|&s| s as f64)
                .collect::<Vec<_>>(),
        );
        // At this toy scale the slot packer optimizes matching load, so
        // storage evenness is only required not to degrade materially; the
        // realistic-scale check is Fig. 9a's bench.
        assert!(
            after.cv < before.cv * 1.25,
            "allocation should not skew storage: cv {} -> {}",
            before.cv,
            after.cv
        );
        assert!(
            sys.allocations.iter().any(Option::is_some),
            "tight capacity must force some allocation"
        );
    }

    #[test]
    fn register_after_allocation_lands_in_grid() {
        let (mut sys, mut filters, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        let f = filter(9_999, &[0]);
        sys.register(&f).unwrap();
        filters.push(f);
        let d = doc(999, &[0]);
        let got = sys.publish(0.0, &d).unwrap();
        assert_eq!(
            got.matched,
            brute_force(&filters, &d, MatchSemantics::Boolean)
        );
    }

    #[test]
    fn unregister_works_before_and_after_allocation() {
        let (mut sys, filters, sample) = skewed_setup(120);
        assert!(sys.unregister(filters[0].id()).unwrap());
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        assert!(sys.unregister(filters[3].id()).unwrap());
        assert!(!sys.unregister(filters[3].id()).unwrap());
        let d = doc(1_000, &[0]);
        let got = sys.publish(0.0, &d).unwrap();
        let remaining: Vec<Filter> = filters[1..]
            .iter()
            .filter(|f| f.id() != filters[3].id())
            .cloned()
            .collect();
        assert_eq!(
            got.matched,
            brute_force(&remaining, &d, MatchSemantics::Boolean)
        );
    }

    #[test]
    fn allocated_publishes_use_two_stages() {
        let (mut sys, _, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        let out = sys.publish(0.0, &doc(77, &[0])).unwrap();
        assert_eq!(out.job.stages.len(), 2);
        let fan_out = out.job.stages[1].tasks.len();
        assert!(fan_out >= 1, "hot term should be allocated");
    }

    #[test]
    fn failover_to_replica_rows_keeps_delivery() {
        let (mut sys, filters, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        let home = sys.cluster.home_of_term(TermId(0));
        let grid = sys.allocation(home).cloned();
        let Some(grid) = grid else {
            panic!("hot term's home must be allocated");
        };
        if grid.rows() < 2 {
            return; // nothing to fail over to at this scale
        }
        // Kill all of row 0 except where that would kill the home.
        for col in 0..grid.cols() {
            let n = grid.node(0, col);
            if n != home {
                sys.cluster_mut().membership_mut().crash(n);
            }
        }
        let d = doc(500, &[0]);
        let got = sys.publish(0.0, &d).unwrap();
        let want: Vec<FilterId> = brute_force(&filters, &d, MatchSemantics::Boolean);
        // Every column still has a live replica (row 1+), except columns
        // whose only live node was the home in row 0.
        assert_eq!(got.matched, want);
    }

    #[test]
    fn availability_drops_with_dead_nodes() {
        let (mut sys, _, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        assert_eq!(sys.filter_availability(), 1.0);
        let victim = NodeId(0);
        sys.cluster_mut().membership_mut().crash(victim);
        let avail = sys.filter_availability();
        assert!(avail < 1.0, "killing a node must lose something");
        assert!(avail > 0.5, "but replicas should bound the damage");
    }

    #[test]
    fn reallocation_after_failures_avoids_dead_nodes() {
        let (mut sys, _, sample) = skewed_setup(400);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        // Crash two cold nodes — not the hot term's home, so the
        // availability floor below measures re-allocation, not the
        // (layout-dependent) loss of the dominant home itself.
        let hot_home = sys.cluster().home_of_term(TermId(0));
        let victims: Vec<NodeId> = (0..6u32)
            .map(NodeId)
            .filter(|&n| n != hot_home)
            .take(2)
            .collect();
        for &v in &victims {
            sys.cluster_mut().membership_mut().crash(v);
        }
        sys.allocate().unwrap();
        for i in 0..6u32 {
            if let Some(grid) = sys.allocation(NodeId(i)) {
                assert!(
                    grid.nodes().iter().all(|&n| !victims.contains(&n)),
                    "grid of home {i} uses a dead node: {:?}",
                    grid.nodes()
                );
            }
        }
        // Every pair homed on a live node is reachable again.
        let live_pairs_ok = sys.filter_availability();
        assert!(live_pairs_ok > 0.6, "availability {live_pairs_ok}");
    }

    #[test]
    fn passive_policy_allocates_after_refresh_window() {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 120;
        cfg.allocation_policy = AllocationPolicy::Passive;
        cfg.refresh_every_docs = 50;
        let mut sys = MoveScheme::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for id in 0..400u64 {
            let t = if id % 3 == 0 {
                0
            } else {
                rng.gen_range(1..60u32)
            };
            sys.register(&filter(id, &[t])).unwrap();
        }
        assert!(sys.allocations.iter().all(Option::is_none));
        for did in 0..60u64 {
            let d = doc(did, &[0, rng.gen_range(1..60u32)]);
            sys.publish(0.0, &d).unwrap();
        }
        assert!(
            sys.allocations.iter().any(Option::is_some),
            "passive policy should have kicked in after 50 docs"
        );
    }

    #[test]
    fn per_term_allocation_preserves_completeness() {
        let (mut sys, filters, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate_per_term().unwrap();
        let (tables, entries) = sys.forwarding_tables();
        assert!(tables >= 1, "hot terms should get grids");
        assert!(entries >= tables);
        for d in &sample {
            let got = sys.publish(0.0, d).unwrap();
            assert_eq!(
                got.matched,
                brute_force(&filters, d, MatchSemantics::Boolean),
                "doc {}",
                d.id()
            );
        }
        // Live registration and unregistration still work with term grids.
        let f = filter(8_888, &[0]);
        sys.register(&f).unwrap();
        let d = doc(900, &[0]);
        assert!(sys.publish(0.0, &d).unwrap().matched.contains(&f.id()));
        assert!(sys.unregister(f.id()).unwrap());
        assert!(!sys.publish(0.0, &d).unwrap().matched.contains(&f.id()));
    }

    #[test]
    fn per_term_mode_maintains_many_more_tables() {
        // Generous budget so replication is plentiful: node aggregation is
        // capped at one table per node, per-term mode is not.
        let (mut sys_node, _, sample) = skewed_setup(400);
        sys_node.observe_corpus(&sample);
        sys_node.allocate().unwrap();
        let (node_tables, _) = sys_node.forwarding_tables();
        assert!(node_tables <= 6, "at most one table per node");

        let (mut sys_term, _, sample) = skewed_setup(400);
        sys_term.observe_corpus(&sample);
        sys_term.allocate_per_term().unwrap();
        let (term_tables, _) = sys_term.forwarding_tables();
        assert!(
            term_tables > node_tables,
            "per-term mode should maintain more tables: {term_tables} vs {node_tables}"
        );
    }

    #[test]
    fn join_preserves_completeness_with_grids_through_retirement() {
        let (mut sys, filters, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.allocate().unwrap();
        let summary = sys.join_node().unwrap();
        assert!(summary.partitions_moved >= 1);
        assert!(!summary.moved_terms.is_empty());
        for &(t, old) in &summary.moved_terms {
            assert_eq!(sys.cluster().home_of_term(t), summary.node);
            assert_ne!(old, summary.node);
        }
        let check = |sys: &mut MoveScheme| {
            for d in &sample {
                let got = sys.publish(0.0, d).unwrap();
                assert_eq!(
                    got.matched,
                    brute_force(&filters, d, MatchSemantics::Boolean),
                    "doc {}",
                    d.id()
                );
            }
        };
        // Handover window open: joiner serves the moved terms, old homes
        // retain their (grid) copies.
        check(&mut sys);
        sys.retire_join(&summary).unwrap();
        check(&mut sys);
        // A post-retirement re-allocation over the grown cluster is still
        // complete (the joiner now participates in grids and stats).
        sys.allocate().unwrap();
        check(&mut sys);
    }

    #[test]
    fn grid_mode_ablation_changes_shape() {
        let (mut sys, _, sample) = skewed_setup(120);
        sys.observe_corpus(&sample);
        sys.set_grid_mode(GridMode::PureSeparation);
        sys.allocate().unwrap();
        let any_sep = sys.allocations.iter().flatten().all(|g| g.rows() == 1);
        assert!(any_sep, "pure separation must have a single row");
        sys.set_grid_mode(GridMode::PureReplication);
        sys.allocate().unwrap();
        let any_rep = sys.allocations.iter().flatten().all(|g| g.cols() == 1);
        assert!(any_rep, "pure replication must have a single column");
    }
}
