//! The common interface of the three dissemination schemes.

use move_cluster::{Job, SimCluster};
use move_types::{Document, Filter, FilterId, Result};

/// What a scheme produced for one published document.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeOutput {
    /// Ids of the filters the document was delivered to, sorted ascending.
    /// Under failures this is restricted to filters reachable on live
    /// nodes.
    pub matched: Vec<FilterId>,
    /// The virtual-time task graph of the dissemination, ready for
    /// [`move_cluster::QueueSim`].
    pub job: Job,
}

/// A content filtering and dissemination scheme over a simulated cluster.
///
/// All three implementations (IL, RS, MOVE) own their own
/// [`SimCluster`] so experiments can run them side by side on identical
/// configurations.
pub trait Dissemination {
    /// Short scheme name for reports ("move", "il", "rs").
    fn name(&self) -> &'static str;

    /// Registers a profile filter.
    ///
    /// # Errors
    ///
    /// Propagates capacity and routing errors.
    fn register(&mut self, filter: &Filter) -> Result<()>;

    /// Unregisters a filter; returns whether it was registered.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    fn unregister(&mut self, id: FilterId) -> Result<bool>;

    /// Publishes a document arriving at virtual time `at`, returning the
    /// delivery set and the task graph. Also charges the per-node cost
    /// ledgers of the underlying cluster.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    fn publish(&mut self, at: f64, doc: &Document) -> Result<SchemeOutput>;

    /// Filter copies currently stored per node (the storage-cost vector of
    /// Fig. 9a), indexed by node id.
    fn storage_per_node(&self) -> Vec<u64>;

    /// The underlying cluster (ledgers, membership, topology).
    fn cluster(&self) -> &SimCluster;

    /// Mutable access to the underlying cluster (failure injection).
    fn cluster_mut(&mut self) -> &mut SimCluster;

    /// Number of registered filters.
    fn registered_filters(&self) -> u64;
}
