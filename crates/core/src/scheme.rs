//! The common interface of the three dissemination schemes, plus the
//! shared *routing plan* representation that lets the virtual-time
//! simulator and the live [`move-runtime`] engine execute one and the same
//! per-document dissemination decision.

use crate::snapshot::{RoutingView, StatsDelta};
use move_cluster::{Job, SimCluster, Task};
use move_index::{FanoutTable, InvertedIndex, MatchOutcome, MatchScratch};
use move_types::{Document, Filter, FilterId, MoveError, NodeId, Result, TermId};
use std::sync::Arc;

/// The control-plane effect of one registration — what a live router must
/// ship to its workers (DESIGN.md §12). Produced by
/// [`Dissemination::register_op`], which has already applied the same
/// mutation to the scheme's own serving state.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterOp {
    /// First subscriber of a new canonical predicate: install the
    /// canonical body's posting entries on `targets`, then broadcast the
    /// subscription to every worker's fan-out table.
    NewCanonical {
        /// The canonical body (canonical id + shared term set).
        canonical: Arc<Filter>,
        /// The subscriber joining it.
        subscriber: FilterId,
        /// Where the canonical's serving copies go, as
        /// [`Dissemination::registration_targets`] describes them.
        targets: Vec<(NodeId, Option<Vec<TermId>>)>,
    },
    /// The predicate was already canonical: no index mutation anywhere —
    /// only the broadcast subscription. This is the aggregation win: a
    /// canonical hit skips posting updates *and* the routing-view refresh.
    Subscribe {
        /// The existing canonical's id.
        canonical: FilterId,
        /// The subscriber joining it.
        subscriber: FilterId,
    },
    /// The subscriber was already registered with this exact predicate.
    NoOp,
}

/// One registration's full effect: an optional displaced prior subscription
/// (the same subscriber id re-registering with a different predicate) that
/// must be applied first, then the registration itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterOps {
    /// Unregistration of the subscriber's previous predicate, if any.
    pub displaced: Option<UnregisterOp>,
    /// The registration proper.
    pub op: RegisterOp,
}

/// The control-plane effect of one unregistration — the inverse of
/// [`RegisterOp`], produced by [`Dissemination::unregister_op`].
#[derive(Debug, Clone, PartialEq)]
pub enum UnregisterOp {
    /// The subscriber was not registered.
    NotRegistered,
    /// Other subscribers remain on the predicate: broadcast only the
    /// fan-out removal, leave every posting entry in place.
    Unsubscribe {
        /// The canonical the subscriber left.
        canonical: FilterId,
        /// The departing subscriber.
        subscriber: FilterId,
    },
    /// Last subscriber gone: broadcast the fan-out removal and drop the
    /// canonical's posting entries from `targets`.
    RemoveCanonical {
        /// The retired canonical's id.
        canonical: FilterId,
        /// The departing subscriber.
        subscriber: FilterId,
        /// Where the canonical's serving copies live under the current
        /// layout: `(node, Some(terms))` removes per-term postings,
        /// `(node, None)` removes the full body.
        targets: Vec<(NodeId, Option<Vec<TermId>>)>,
    },
}

/// What a [`Dissemination::join_node`] did: the admitted node, the layout
/// version the join committed, and exactly which *registered* terms
/// re-homed (with their old home). The live migration engine drives its
/// handover window from this — `moved_terms` is the double-route set, and
/// the same summary is handed back to
/// [`Dissemination::retire_join`] to drop the old copies once the window
/// closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSummary {
    /// The node that joined.
    pub node: NodeId,
    /// The layout version the join committed.
    pub layout_version: u64,
    /// Term-partitions the layout re-assigned (streamed state units).
    pub partitions_moved: u64,
    /// Registered terms whose home moved, each with its *old* home — the
    /// nodes that keep serving those terms until the join is retired.
    pub moved_terms: Vec<(TermId, NodeId)>,
}

/// What a scheme produced for one published document.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeOutput {
    /// Ids of the filters the document was delivered to, sorted ascending.
    /// Under failures this is restricted to filters reachable on live
    /// nodes.
    pub matched: Vec<FilterId>,
    /// The virtual-time task graph of the dissemination, ready for
    /// [`move_cluster::QueueSim`].
    pub job: Job,
}

/// What a node must do with a document routed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchTask {
    /// Retrieve one posting list per listed routing term and match the
    /// document against each (the IL/MOVE home- and grid-node work).
    Terms(Vec<TermId>),
    /// Run the centralized SIFT match over the node's entire local index,
    /// attempting one posting-list lookup per document term (the RS
    /// flooding work).
    FullIndex,
    /// Routing-only hop: the node consults its in-memory forwarding table
    /// and fans the document out; no posting list is touched (the MOVE
    /// home hop in front of an allocation grid).
    Forward,
}

/// One hop of a routing plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteStep {
    /// The node the document is sent to.
    pub node: NodeId,
    /// The work the node performs on arrival.
    pub task: MatchTask,
    /// The forwarding node this hop came through, or `None` when the
    /// document travels directly from the ingress node (stage 1).
    pub from: Option<NodeId>,
}

impl RouteStep {
    /// A direct (ingress → node) step.
    #[must_use]
    pub fn direct(node: NodeId, task: MatchTask) -> Self {
        Self {
            node,
            task,
            from: None,
        }
    }

    /// A forwarded (home → node) step.
    #[must_use]
    pub fn forwarded(node: NodeId, task: MatchTask, from: NodeId) -> Self {
        Self {
            node,
            task,
            from: Some(from),
        }
    }
}

/// Executes a routing plan against the simulator's node state: performs
/// the matching each step asks for, charges the per-node cost ledgers, and
/// splits the work into the two virtual-time stages (direct hops, then
/// forwarded hops).
///
/// Shared by all three schemes' `publish` so the simulated execution and
/// the live runtime (which executes the same [`RouteStep`]s on real
/// threads) can never drift apart.
pub(crate) fn execute_steps(
    steps: &[RouteStep],
    doc: &Document,
    ingress: NodeId,
    cluster: &mut SimCluster,
    indexes: &[Arc<InvertedIndex>],
    storage: &[u64],
    scratch: &mut MatchScratch,
) -> (Vec<FilterId>, Vec<Task>, Vec<Task>) {
    let cost = *cluster.cost();
    let mut acc = MatchOutcome::default();
    let mut stage1: Vec<Task> = Vec::new();
    let mut stage2: Vec<Task> = Vec::new();
    for step in steps {
        let node = step.node;
        let origin = step.from.unwrap_or(ingress);
        let transfer = cluster.transfer_cost(origin, node);
        let (lists, postings) = match &step.task {
            MatchTask::Forward => {
                cluster
                    .ledgers_mut()
                    .ledger_mut(node)
                    .record(transfer, 0, 0);
                stage1.push(Task {
                    node,
                    service: transfer,
                });
                continue;
            }
            MatchTask::Terms(terms) => {
                // A Bloom false positive still costs one failed
                // posting-list lookup, so every routed term counts as a
                // retrieval (not `acc.lists_retrieved`, which only counts
                // lists that exist).
                let before = acc.postings_scanned;
                for &t in terms {
                    indexes[node.as_usize()].match_term_into(doc, t, &mut acc);
                }
                (terms.len() as u64, acc.postings_scanned - before)
            }
            MatchTask::FullIndex => {
                // SIFT attempts a posting-list lookup for every document
                // term, found or not — the flooding tax.
                let before = acc.postings_scanned;
                indexes[node.as_usize()].match_document_into(doc, scratch, &mut acc);
                (doc.distinct_terms() as u64, acc.postings_scanned - before)
            }
        };
        let service = transfer + cost.match_cost(lists, postings, storage[node.as_usize()]);
        cluster
            .ledgers_mut()
            .ledger_mut(node)
            .record(service, lists, postings);
        let task = Task { node, service };
        if step.from.is_none() {
            stage1.push(task);
        } else {
            stage2.push(task);
        }
    }
    let mut matched = acc.matched;
    scratch.sort_dedup(&mut matched);
    (matched, stage1, stage2)
}

/// A content filtering and dissemination scheme over a simulated cluster.
///
/// All three implementations (IL, RS, MOVE) own their own
/// [`SimCluster`] so experiments can run them side by side on identical
/// configurations.
pub trait Dissemination {
    /// Short scheme name for reports ("move", "il", "rs").
    fn name(&self) -> &'static str;

    /// Registers a profile filter.
    ///
    /// # Errors
    ///
    /// Propagates capacity and routing errors.
    fn register(&mut self, filter: &Filter) -> Result<()>;

    /// Unregisters a filter; returns whether it was registered.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    fn unregister(&mut self, id: FilterId) -> Result<bool>;

    /// Registers a filter and reports the control-plane operations a live
    /// router must ship (DESIGN.md §12). Equivalent to
    /// [`Dissemination::register`] plus the op description; aggregating
    /// schemes implement registration here and delegate `register` to it.
    ///
    /// The default covers non-aggregating implementations: every filter is
    /// its own canonical.
    ///
    /// # Errors
    ///
    /// Propagates capacity and routing errors.
    fn register_op(&mut self, filter: &Filter) -> Result<RegisterOps> {
        let targets = self.registration_targets(filter);
        self.register(filter)?;
        Ok(RegisterOps {
            displaced: None,
            op: RegisterOp::NewCanonical {
                canonical: Arc::new(filter.clone()),
                subscriber: filter.id(),
                targets,
            },
        })
    }

    /// Unregisters a subscriber and reports the control-plane operations a
    /// live router must ship — the inverse of
    /// [`Dissemination::register_op`].
    ///
    /// The default covers non-aggregating implementations: the filter's
    /// copies may be anywhere, so every node is told to drop the full body.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    fn unregister_op(&mut self, id: FilterId) -> Result<UnregisterOp> {
        let targets = (0..self.cluster().len())
            .map(|n| (NodeId(n as u32), None))
            .collect();
        if self.unregister(id)? {
            Ok(UnregisterOp::RemoveCanonical {
                canonical: id,
                subscriber: id,
                targets,
            })
        } else {
            Ok(UnregisterOp::NotRegistered)
        }
    }

    /// A cheap shared snapshot of the canonical→subscribers fan-out table.
    /// Workers boot from (and rebalance joiners are seeded with) this;
    /// non-aggregating schemes return an empty table, whose identity
    /// fallback expands every matched id to itself.
    fn fanout_table(&self) -> Arc<FanoutTable> {
        Arc::new(FanoutTable::new())
    }

    /// Number of live canonical predicates (equals
    /// [`Dissemination::registered_filters`] without aggregation).
    fn canonical_filters(&self) -> u64 {
        self.registered_filters()
    }

    /// Approximate heap bytes of the aggregation layer (canonical
    /// directory, subscription map, fan-out sets); zero without
    /// aggregation.
    fn aggregation_bytes(&self) -> u64 {
        0
    }

    /// Publishes a document arriving at virtual time `at`, returning the
    /// delivery set and the task graph. Also charges the per-node cost
    /// ledgers of the underlying cluster.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    fn publish(&mut self, at: f64, doc: &Document) -> Result<SchemeOutput>;

    /// Computes the routing plan for one document: which nodes receive it,
    /// through which forwarding hop, and what matching work each performs.
    ///
    /// This is the scheme's *entire* per-document decision. Both the
    /// virtual-time [`Dissemination::publish`] and the live `move-runtime`
    /// engine execute the returned plan, so the two execution paths cannot
    /// drift apart. Takes `&mut self` because the fan-out choices (replica
    /// row, replica group) are randomized.
    fn route(&mut self, doc: &Document) -> Vec<RouteStep>;

    /// The ingress node a document arrives at (the DHT home of its id).
    fn ingress_of(&self, doc: &Document) -> NodeId {
        self.cluster().ring().home_of(&("doc", doc.id().0))
    }

    /// Read access to a node's serving inverted index. The live runtime
    /// snapshots per-node shards from here and re-ships them when
    /// [`Dissemination::maintenance`] reports a layout change.
    fn node_index(&self, node: NodeId) -> &InvertedIndex;

    /// A shared snapshot of a node's serving index. Schemes that store
    /// their shards behind `Arc` override this with an `Arc::clone` so the
    /// live runtime's boot and allocation-refresh paths ship structural
    /// shares instead of deep copies; the default falls back to a deep
    /// copy for exotic implementations.
    fn shared_node_index(&self, node: NodeId) -> Arc<InvertedIndex> {
        Arc::new(self.node_index(node).clone())
    }

    /// Where [`Dissemination::register`] will place serving copies of
    /// `filter` under the *current* layout: `(node, Some(terms))` for an
    /// inverted-list registration under those routing terms, `(node, None)`
    /// for a full-index registration (RS replicas). The live runtime calls
    /// this right before `register` to address its `RegisterFilter`
    /// messages.
    fn registration_targets(&self, filter: &Filter) -> Vec<(NodeId, Option<Vec<TermId>>)>;

    /// Post-publish bookkeeping: statistics observation and the periodic
    /// allocation refresh (MOVE's observe/allocate cycle). Returns whether
    /// the filter layout changed, so a live engine knows to re-ship index
    /// shards to its workers.
    ///
    /// Equivalent to [`Dissemination::note_published`] followed by
    /// [`Dissemination::refresh_allocation`]; the live engine calls the
    /// two halves separately so a parallel ingest plane can batch the
    /// observation side into [`StatsDelta`] shards.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    fn maintenance(&mut self, doc: &Document) -> Result<bool> {
        self.note_published(doc);
        self.refresh_allocation()
    }

    /// The observation half of [`Dissemination::maintenance`]: record one
    /// published document into the scheme's routing statistics without
    /// triggering an allocation refresh. Default: no statistics.
    fn note_published(&mut self, doc: &Document) {
        let _ = doc;
    }

    /// The refresh half of [`Dissemination::maintenance`]: if enough
    /// documents have been observed since the last refresh, recompute the
    /// allocation. Returns whether the filter layout changed. Default: no
    /// adaptive allocation.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    fn refresh_allocation(&mut self) -> Result<bool> {
        Ok(false)
    }

    /// Whether enough documents have been observed that the next
    /// [`Dissemination::refresh_allocation`] call would run the optimizer.
    /// The parallel ingest plane polls this to decide when to fence the
    /// ingest threads. Default: never.
    fn refresh_due(&self) -> bool {
        false
    }

    /// Admits one new node to the scheme's cluster: commits the staged
    /// layout change, grows every per-node structure, and *copies* the
    /// serving state of re-homed terms onto the joiner while the old homes
    /// keep their copies. After this returns, both the old and the new
    /// routing views produce sound delivery sets; the old copies are
    /// dropped by [`Dissemination::retire_join`] once every in-flight
    /// document has drained. Default: the scheme does not support elastic
    /// joins.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::InvalidConfig`] when the scheme is not
    /// elastic; implementations propagate allocation errors.
    fn join_node(&mut self) -> Result<JoinSummary> {
        Err(MoveError::InvalidConfig(
            "scheme does not support elastic node joins".into(),
        ))
    }

    /// Ends the handover window of a [`Dissemination::join_node`]: removes
    /// the retained old-home copies of the moved terms, leaving the joiner
    /// as their only server. Default: nothing retained, nothing to do.
    ///
    /// # Errors
    ///
    /// Propagates index-rebuild errors.
    fn retire_join(&mut self, summary: &JoinSummary) -> Result<()> {
        let _ = summary;
        Ok(())
    }

    /// An immutable snapshot of everything [`Dissemination::route`] reads,
    /// stamped with `epoch`. [`RoutingView::route`] on the returned
    /// snapshot must produce a plan with the same *delivery set* as
    /// `route` would under the scheme state at the time of the call; the
    /// randomized replica choices may differ (replicas are equivalent).
    fn routing_view(&self, epoch: u64) -> RoutingView;

    /// Merges a sharded-statistics delta (accumulated by ingest threads
    /// via [`RoutingView::observe`]) back into the scheme, as if the
    /// corresponding documents had been passed to
    /// [`Dissemination::note_published`]. Default: no statistics, drop it.
    fn absorb_stats(&mut self, delta: &StatsDelta) {
        let _ = delta;
    }

    /// MOVE's merged `q′ᵢ` document-frequency sample per node (empty for
    /// schemes without routing statistics); surfaced in the live runtime's
    /// report so the serial-vs-parallel equivalence suite can compare the
    /// final merged statistics.
    fn doc_hits_per_node(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Filter copies currently stored per node (the storage-cost vector of
    /// Fig. 9a), indexed by node id.
    fn storage_per_node(&self) -> Vec<u64>;

    /// The underlying cluster (ledgers, membership, topology).
    fn cluster(&self) -> &SimCluster;

    /// Mutable access to the underlying cluster (failure injection).
    fn cluster_mut(&mut self) -> &mut SimCluster;

    /// Number of registered filters.
    fn registered_filters(&self) -> u64;
}
