//! Byte codec for filter bodies stored in node column families.
//!
//! "To register a filter f, by the put function, the full information of f
//! is locally stored on the home nodes" (§III-B). The stored value is a
//! compact big-endian encoding: the filter id (8 bytes) followed by one
//! 4-byte term id per term.

use move_types::{Filter, FilterId, MoveError, Result, TermId};

/// Encodes a filter body for the `filters` column family.
///
/// # Examples
///
/// ```
/// use move_core::{decode_filter, encode_filter};
/// use move_types::{Filter, TermId};
///
/// let f = Filter::new(42u64, [TermId(1), TermId(2)]);
/// let bytes = encode_filter(&f);
/// assert_eq!(decode_filter(&bytes).unwrap(), f);
/// ```
pub fn encode_filter(filter: &Filter) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * filter.len());
    out.extend_from_slice(&filter.id().0.to_be_bytes());
    for t in filter.terms() {
        out.extend_from_slice(&t.0.to_be_bytes());
    }
    out
}

/// Decodes a filter body written by [`encode_filter`].
///
/// # Errors
///
/// Returns [`MoveError::InvalidConfig`] when the byte length is not
/// `8 + 4k` (a corrupt record).
pub fn decode_filter(bytes: &[u8]) -> Result<Filter> {
    if bytes.len() < 8 || !(bytes.len() - 8).is_multiple_of(4) {
        return Err(MoveError::InvalidConfig(format!(
            "corrupt filter record of {} bytes",
            bytes.len()
        )));
    }
    let corrupt = || MoveError::InvalidConfig("corrupt filter record framing".into());
    let id_bytes: [u8; 8] = bytes[..8].try_into().map_err(|_| corrupt())?;
    let id = FilterId(u64::from_be_bytes(id_bytes));
    let terms = bytes[8..]
        .chunks_exact(4)
        .map(|c| {
            let term_bytes: [u8; 4] = c.try_into().map_err(|_| corrupt())?;
            Ok(TermId(u32::from_be_bytes(term_bytes)))
        })
        .collect::<Result<Vec<TermId>>>()?;
    Ok(Filter::new(id, terms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Filter::new(7u64, [TermId(0), TermId(u32::MAX), TermId(5)]);
        assert_eq!(decode_filter(&encode_filter(&f)).unwrap(), f);
    }

    #[test]
    fn empty_filter_round_trips() {
        let f = Filter::new(9u64, std::iter::empty::<TermId>());
        assert_eq!(decode_filter(&encode_filter(&f)).unwrap(), f);
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(decode_filter(&[1, 2, 3]).is_err());
        assert!(decode_filter(&[0; 10]).is_err());
        assert!(decode_filter(&[0; 12]).is_ok());
    }
}
