//! The rendezvous/flooding comparator (paper §VI-A, after Google web search
//! [5] and ROAR [16]).

use crate::scheme::{execute_steps, JoinSummary};
use crate::{
    Dissemination, MatchTask, RegisterOp, RegisterOps, RouteStep, RoutingView, SchemeOutput,
    SystemConfig, UnregisterOp,
};
use move_cluster::{stable_hash64, Job, SimCluster, Stage};
use move_index::{
    FanoutTable, FilterAggregator, InvertedIndex, MatchScratch, RegisterOutcome, UnregisterOutcome,
};
use move_types::{Document, Filter, FilterId, NodeId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// The `RS` scheme: filters are spread uniformly by hashing their id —
/// giving perfectly balanced storage — and replicated into `g` *replica
/// groups* (the "three folds of replicas" of production key/value stores,
/// also ROAR's partition mechanism). A published document is flooded to
/// every node of one randomly chosen group; each node runs the centralized
/// SIFT match over its full local inverted index, retrieving `|d|` posting
/// lists.
///
/// The blind flooding is the scheme's weakness (§I): every node pays the
/// per-document seek cost whether or not it holds relevant filters, which
/// is ruinous for term-rich documents.
#[derive(Debug)]
pub struct RsScheme {
    cluster: SimCluster,
    indexes: Vec<Arc<InvertedIndex>>,
    /// Round-robin partition of the nodes into replica groups.
    groups: Vec<Vec<NodeId>>,
    storage: Vec<u64>,
    directory: HashMap<FilterId, ()>,
    rng: StdRng,
    /// Canonicalizing aggregation layer: identical predicates collapse to
    /// one canonical filter replicated once per group (DESIGN.md §12).
    aggregator: FilterAggregator,
    /// Whether aggregation is on ([`SystemConfig::aggregate_filters`]).
    aggregate: bool,
    /// Reusable match-kernel working memory for `publish`.
    scratch: MatchScratch,
}

impl RsScheme {
    /// Builds the scheme on a fresh simulated cluster.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Result<Self> {
        config.validate()?;
        let cluster = SimCluster::new(config.nodes, config.racks, config.cost)?;
        let g = config.rs_replica_groups.min(config.nodes);
        let mut groups = vec![Vec::new(); g];
        for n in 0..config.nodes {
            groups[n % g].push(NodeId(n as u32));
        }
        Ok(Self {
            indexes: (0..config.nodes)
                .map(|_| Arc::new(InvertedIndex::new(config.semantics)))
                .collect(),
            storage: vec![0; config.nodes],
            rng: StdRng::seed_from_u64(config.seed ^ 0x7573),
            cluster,
            groups,
            directory: HashMap::new(),
            aggregator: FilterAggregator::new(),
            aggregate: config.aggregate_filters,
            scratch: MatchScratch::new(),
        })
    }

    /// The node responsible for a filter inside one replica group.
    fn node_in_group(&self, group: usize, id: FilterId) -> NodeId {
        let members = &self.groups[group];
        members[(stable_hash64(&("rs", id.0)) % members.len() as u64) as usize]
    }

    /// Stores a canonical body once per replica group — the
    /// pre-aggregation `register` body.
    fn register_canonical(&mut self, shared: &Arc<Filter>) -> Result<()> {
        for g in 0..self.groups.len() {
            let node = self.node_in_group(g, shared.id());
            Arc::make_mut(&mut self.indexes[node.as_usize()]).insert_shared(Arc::clone(shared));
            self.storage[node.as_usize()] += 1;
        }
        // Rendezvous invariant: one full copy per replica group, on the
        // exact node `registration_targets` names — route() floods a single
        // group, so a copy missing from any group loses deliveries.
        debug_assert!(
            self.registration_targets(shared)
                .iter()
                .all(|(node, _)| self.indexes[node.as_usize()].filter(shared.id()).is_some()),
            "RS registration must store the filter once in every replica group"
        );
        self.directory.insert(shared.id(), ());
        Ok(())
    }

    /// Drops a canonical body from every node — the pre-aggregation
    /// `unregister` body. Returns whether the canonical was registered.
    fn unregister_canonical(&mut self, id: FilterId) -> bool {
        if self.directory.remove(&id).is_none() {
            return false;
        }
        // Scan every node rather than recomputing `node_in_group`: a join
        // changes a group's size and thus its rendezvous hashing, so
        // copies registered before the join live where the *old* group
        // shape put them.
        for n in 0..self.indexes.len() {
            if Arc::make_mut(&mut self.indexes[n]).remove(id) {
                self.storage[n] = self.storage[n].saturating_sub(1);
            }
        }
        true
    }

    /// Removal targets for a canonical: every node drops the full body
    /// (copies may sit anywhere after joins reshape the groups).
    fn unregistration_targets(&self) -> Vec<(NodeId, Option<Vec<move_types::TermId>>)> {
        (0..self.cluster.len())
            .map(|n| (NodeId(n as u32), None))
            .collect()
    }

    /// Expands matched canonical ids to subscriber ids (identity without
    /// aggregation).
    fn expand_matched(&mut self, canonical: Vec<FilterId>) -> Vec<FilterId> {
        if !self.aggregate {
            return canonical;
        }
        let mut out = Vec::with_capacity(canonical.len());
        self.aggregator.expand_into(&canonical, &mut out);
        self.scratch.sort_dedup(&mut out);
        out
    }
}

impl Dissemination for RsScheme {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn register(&mut self, filter: &Filter) -> Result<()> {
        self.register_op(filter).map(|_| ())
    }

    fn unregister(&mut self, id: FilterId) -> Result<bool> {
        Ok(!matches!(
            self.unregister_op(id)?,
            UnregisterOp::NotRegistered
        ))
    }

    fn register_op(&mut self, filter: &Filter) -> Result<RegisterOps> {
        if !self.aggregate {
            // Verbatim baseline: every subscription is its own canonical.
            let targets = self.registration_targets(filter);
            let shared = Arc::new(filter.clone());
            self.register_canonical(&shared)?;
            return Ok(RegisterOps {
                displaced: None,
                op: RegisterOp::NewCanonical {
                    canonical: shared,
                    subscriber: filter.id(),
                    targets,
                },
            });
        }
        let displaced = match self.aggregator.canonical_of(filter.id()) {
            Some(c) => {
                let same = self
                    .aggregator
                    .canonical_body(c)
                    .is_some_and(|b| b.terms() == filter.terms());
                if same {
                    return Ok(RegisterOps {
                        displaced: None,
                        op: RegisterOp::NoOp,
                    });
                }
                // Same subscriber id, new predicate: displace the old
                // subscription first so the ops stream stays replayable.
                Some(self.unregister_op(filter.id())?)
            }
            None => None,
        };
        match self.aggregator.register(filter) {
            RegisterOutcome::AlreadyRegistered => Ok(RegisterOps {
                displaced,
                op: RegisterOp::NoOp,
            }),
            RegisterOutcome::Subscribed { canonical } => Ok(RegisterOps {
                displaced,
                op: RegisterOp::Subscribe {
                    canonical: canonical.as_filter_id(),
                    subscriber: filter.id(),
                },
            }),
            RegisterOutcome::NewCanonical { canonical } => {
                let targets = self.registration_targets(&canonical);
                self.register_canonical(&canonical)?;
                Ok(RegisterOps {
                    displaced,
                    op: RegisterOp::NewCanonical {
                        canonical,
                        subscriber: filter.id(),
                        targets,
                    },
                })
            }
        }
    }

    fn unregister_op(&mut self, id: FilterId) -> Result<UnregisterOp> {
        if !self.aggregate {
            let targets = self.unregistration_targets();
            return Ok(if self.unregister_canonical(id) {
                UnregisterOp::RemoveCanonical {
                    canonical: id,
                    subscriber: id,
                    targets,
                }
            } else {
                UnregisterOp::NotRegistered
            });
        }
        match self.aggregator.unregister(id) {
            UnregisterOutcome::NotRegistered => Ok(UnregisterOp::NotRegistered),
            UnregisterOutcome::Unsubscribed { canonical } => Ok(UnregisterOp::Unsubscribe {
                canonical: canonical.as_filter_id(),
                subscriber: id,
            }),
            UnregisterOutcome::RemovedCanonical { canonical } => {
                let cid = canonical.id();
                let targets = self.unregistration_targets();
                self.unregister_canonical(cid);
                Ok(UnregisterOp::RemoveCanonical {
                    canonical: cid,
                    subscriber: id,
                    targets,
                })
            }
        }
    }

    fn fanout_table(&self) -> Arc<FanoutTable> {
        self.aggregator.fanout_snapshot()
    }

    fn canonical_filters(&self) -> u64 {
        self.directory.len() as u64
    }

    fn aggregation_bytes(&self) -> u64 {
        if self.aggregate {
            self.aggregator.estimated_bytes() as u64
        } else {
            0
        }
    }

    fn join_node(&mut self) -> Result<JoinSummary> {
        let (node, delta) = self.cluster.join_node();
        let semantics = self
            .indexes
            .first()
            .map_or(move_types::MatchSemantics::Boolean, |i| i.semantics());
        self.indexes.push(Arc::new(InvertedIndex::new(semantics)));
        self.storage.push(0);
        // Rendezvous has no term homes to stream: the joiner enters the
        // smallest replica group and picks up new registrations from
        // there. Existing copies stay where the old group shape hashed
        // them — flooding a group reaches every member, so delivery is
        // unaffected and nothing moves.
        if let Some(group) = (0..self.groups.len()).min_by_key(|&g| (self.groups[g].len(), g)) {
            self.groups[group].push(node);
        }
        Ok(JoinSummary {
            node,
            layout_version: delta.version,
            partitions_moved: 0,
            moved_terms: Vec::new(),
        })
    }

    fn publish(&mut self, at: f64, doc: &Document) -> Result<SchemeOutput> {
        let ingress = self.ingress_of(doc);
        let steps = self.route(doc);
        let (matched, tasks, _) = execute_steps(
            &steps,
            doc,
            ingress,
            &mut self.cluster,
            &self.indexes,
            &self.storage,
            &mut self.scratch,
        );
        let matched = self.expand_matched(matched);
        Ok(SchemeOutput {
            matched,
            job: Job {
                arrival: at,
                stages: vec![Stage::new(tasks)],
            },
        })
    }

    fn route(&mut self, doc: &Document) -> Vec<RouteStep> {
        let _ = doc; // flooding ignores document content by design
        let group = self.rng.gen_range(0..self.groups.len());
        self.groups[group]
            .iter()
            .filter(|&&node| self.cluster.is_alive(node))
            .map(|&node| RouteStep::direct(node, MatchTask::FullIndex))
            .collect()
    }

    fn node_index(&self, node: NodeId) -> &InvertedIndex {
        &self.indexes[node.as_usize()]
    }

    fn shared_node_index(&self, node: NodeId) -> Arc<InvertedIndex> {
        Arc::clone(&self.indexes[node.as_usize()])
    }

    fn routing_view(&self, epoch: u64) -> RoutingView {
        let alive = (0..self.cluster.len())
            .map(|n| self.cluster.is_alive(NodeId(n as u32)))
            .collect();
        RoutingView::rs(epoch, alive, self.groups.clone())
            .with_layout_version(self.cluster.layout().version())
    }

    fn registration_targets(
        &self,
        filter: &Filter,
    ) -> Vec<(NodeId, Option<Vec<move_types::TermId>>)> {
        (0..self.groups.len())
            .map(|g| (self.node_in_group(g, filter.id()), None))
            .collect()
    }

    fn storage_per_node(&self) -> Vec<u64> {
        self.storage.clone()
    }

    fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    fn registered_filters(&self) -> u64 {
        if self.aggregate {
            self.aggregator.subscriber_count() as u64
        } else {
            self.directory.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_index::brute_force;
    use move_types::{MatchSemantics, TermId};

    fn filter(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    fn doc(id: u64, terms: &[u32]) -> Document {
        Document::from_distinct_terms(id, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn delivery_is_complete() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        let filters: Vec<Filter> = (0..200)
            .map(|id| filter(id, &[(id % 50) as u32, (id % 31) as u32]))
            .collect();
        for f in &filters {
            rs.register(f).unwrap();
        }
        for did in 0..30u64 {
            let mut terms = vec![(did % 50) as u32, ((did * 7) % 60) as u32];
            terms.sort_unstable();
            terms.dedup();
            let d = doc(did, &terms);
            let got = rs.publish(0.0, &d).unwrap();
            assert_eq!(
                got.matched,
                brute_force(&filters, &d, MatchSemantics::Boolean)
            );
        }
    }

    #[test]
    fn storage_is_replicated_g_times_and_even() {
        // Verbatim baseline: rendezvous evenness needs one copy per
        // subscription (the 40 distinct predicates would otherwise
        // collapse to 40 canonicals).
        let mut cfg = SystemConfig::small_test(); // 6 nodes, 3 groups
        cfg.aggregate_filters = false;
        let mut rs = RsScheme::new(cfg).unwrap();
        for id in 0..600u64 {
            rs.register(&filter(id, &[id as u32 % 40])).unwrap();
        }
        let st = rs.storage_per_node();
        assert_eq!(st.iter().sum::<u64>(), 600 * 3);
        // Two nodes per group → ~300 each; hashing keeps it tight.
        assert!(st.iter().all(|&s| (200..400).contains(&s)), "{st:?}");
    }

    #[test]
    fn aggregation_stores_one_copy_set_per_predicate() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        for id in 0..600u64 {
            rs.register(&filter(id, &[id as u32 % 40])).unwrap();
        }
        // 40 distinct predicates × 3 replica groups, regardless of the
        // 600 subscriptions.
        assert_eq!(rs.storage_per_node().iter().sum::<u64>(), 40 * 3);
        assert_eq!(rs.canonical_filters(), 40);
        assert_eq!(rs.registered_filters(), 600);
        assert!(rs.aggregation_bytes() > 0);
        // Delivery still fans out to every subscriber of the predicate.
        let got = rs.publish(0.0, &doc(0, &[7])).unwrap().matched;
        let want: Vec<FilterId> = (0..600).filter(|id| id % 40 == 7).map(FilterId).collect();
        assert_eq!(got, want);
        // Unsubscribing all but one subscriber keeps the canonical alive;
        // the last departure drops the replicas.
        for id in (7..600).step_by(40).skip(1) {
            assert!(rs.unregister(FilterId(id)).unwrap());
        }
        assert_eq!(rs.storage_per_node().iter().sum::<u64>(), 40 * 3);
        assert!(rs.unregister(FilterId(7)).unwrap());
        assert_eq!(rs.storage_per_node().iter().sum::<u64>(), 39 * 3);
        assert!(rs.publish(0.0, &doc(1, &[7])).unwrap().matched.is_empty());
    }

    #[test]
    fn flooding_touches_one_full_group() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        rs.register(&filter(1, &[1])).unwrap();
        let out = rs.publish(0.0, &doc(0, &[1, 2, 3])).unwrap();
        // 6 nodes / 3 groups = 2 nodes per group.
        assert_eq!(out.job.stages[0].tasks.len(), 2);
    }

    #[test]
    fn unregister_removes_all_replicas() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        rs.register(&filter(1, &[9])).unwrap();
        assert!(rs.unregister(FilterId(1)).unwrap());
        assert_eq!(rs.storage_per_node().iter().sum::<u64>(), 0);
        assert!(rs.publish(0.0, &doc(0, &[9])).unwrap().matched.is_empty());
    }

    #[test]
    fn join_grows_a_group_without_moving_state() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        let filters: Vec<Filter> = (0..200)
            .map(|id| filter(id, &[(id % 50) as u32, (id % 31) as u32]))
            .collect();
        for f in &filters {
            rs.register(f).unwrap();
        }
        let summary = rs.join_node().unwrap();
        assert!(summary.moved_terms.is_empty());
        assert_eq!(summary.partitions_moved, 0);
        assert_eq!(rs.groups.iter().map(Vec::len).sum::<usize>(), 7);
        assert!(rs.groups.iter().any(|g| g.contains(&summary.node)));
        // Old registrations are still delivered whichever group floods.
        for did in 0..30u64 {
            let mut terms = vec![(did % 50) as u32, ((did * 7) % 60) as u32];
            terms.sort_unstable();
            terms.dedup();
            let d = doc(did, &terms);
            let got = rs.publish(0.0, &d).unwrap();
            assert_eq!(
                got.matched,
                brute_force(&filters, &d, MatchSemantics::Boolean)
            );
        }
        // New registrations hash over the grown group and are delivered…
        rs.register(&filter(9_999, &[1])).unwrap();
        let d = doc(500, &[1]);
        assert!(rs
            .publish(0.0, &d)
            .unwrap()
            .matched
            .contains(&FilterId(9_999)));
        // …and pre-join copies can still be fully unregistered.
        assert!(rs.unregister(FilterId(1)).unwrap());
        let d = doc(501, &[1, 32]);
        assert!(!rs.publish(0.0, &d).unwrap().matched.contains(&FilterId(1)));
        // Retirement is a no-op for rendezvous.
        rs.retire_join(&summary).unwrap();
    }

    #[test]
    fn sift_pays_for_every_document_term() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        rs.register(&filter(1, &[1])).unwrap();
        let wide = doc(0, &(0..50u32).collect::<Vec<_>>());
        rs.publish(0.0, &wide).unwrap();
        let lists: u64 = rs
            .cluster()
            .ledgers()
            .all()
            .iter()
            .map(|l| l.lists_retrieved)
            .sum();
        assert_eq!(lists, 50 * 2, "|d| lookups on each of the 2 group nodes");
    }
}
