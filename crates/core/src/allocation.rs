//! The allocation optimizer (§IV): how many nodes each home node gets, and
//! the replication × separation grid layout of its filters.

use crate::NodeStats;
use move_stats::randomized_round;
use move_types::{MoveError, NodeId, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The optimizer's rule for the per-node allocation factor `nᵢ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FactorRule {
    /// Equal `nᵢ` for every node holding filters (the strawman the
    /// ablation compares against).
    Uniform,
    /// Theorem 1: `nᵢ ∝ √qᵢ` (simple disk-only cost model, ample
    /// capacity).
    SqrtQ,
    /// Theorem 2: `nᵢ ∝ √(1 + β·qᵢ)` with `β = y_p·P/y_d` (transfer +
    /// match cost model).
    SqrtBetaQ,
    /// The general capacity-limited result: `nᵢ ∝ √(pᵢ·qᵢ)` — the formula
    /// §V quotes, evaluated on the node-level aggregates `p′ᵢ`, `q′ᵢ`.
    SqrtPQ,
    /// The node-level form of the same optimum that preserves the
    /// term-level correlation: `nᵢ ∝ √(loadᵢ / pairsᵢ)` with
    /// `loadᵢ = Σₜ qₜ·pₜ·P` (postings scanned per document). For a
    /// single-term "node" this is exactly Theorem 1's `√qᵢ`; with many
    /// terms per node it allocates by the latency the node actually incurs
    /// rather than by the product of its marginal sums.
    SqrtLoad,
    /// The min–max variant: `nᵢ ∝ loadᵢ / pairsᵢ`, which (under the budget
    /// `Σ nᵢ·pairsᵢ = N·C`) equalizes `loadᵢ/nᵢ` across nodes. The √ rules
    /// minimize the *average* latency `Y` of §IV-C; throughput, however, is
    /// bounded by the *busiest* node ("the busiest node … significantly
    /// degrade\[s\] the throughput", §VI-C), and the min–max rule targets
    /// exactly that bound.
    LoadBalance,
}

impl FactorRule {
    /// The unnormalized weight for a node with popularity `p`, frequency
    /// `q`, given Theorem 2's `beta`.
    pub fn weight(&self, p: f64, q: f64, beta: f64) -> f64 {
        match self {
            Self::Uniform => 1.0,
            Self::SqrtQ => q.max(0.0).sqrt(),
            Self::SqrtBetaQ => (1.0 + beta * q.max(0.0)).sqrt(),
            Self::SqrtPQ => (p.max(0.0) * q.max(0.0)).sqrt(),
            // Fall back to √(p·q) when no load sample is distinguishable
            // here; the stats-aware path below handles the real cases.
            Self::SqrtLoad | Self::LoadBalance => (p.max(0.0) * q.max(0.0)).sqrt(),
        }
    }

    /// The weight computed from full node statistics.
    pub fn weight_for(&self, stats: &NodeStats, total_filters: u64, beta: f64) -> f64 {
        match self {
            Self::SqrtLoad => {
                if stats.pairs == 0 {
                    0.0
                } else {
                    (stats.load() / stats.pairs as f64).max(0.0).sqrt()
                }
            }
            Self::LoadBalance => {
                if stats.pairs == 0 {
                    0.0
                } else {
                    (stats.load() / stats.pairs as f64).max(0.0)
                }
            }
            _ => self.weight(stats.popularity(total_filters), stats.frequency(), beta),
        }
    }
}

/// How the optimizer's `nᵢ` nodes are arranged into a grid — the ablation
/// switch for §IV-A's claim that neither pure replication nor pure
/// separation suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GridMode {
    /// Capacity-driven: as many replica rows as the per-node capacity
    /// allows (`rᵢ` as small as possible, tuned up per §IV-B2).
    #[default]
    Optimal,
    /// Pure replication: one column, `nᵢ` rows (`rᵢ = 1/nᵢ`) — balances
    /// documents but stores `nᵢ` full copies.
    PureReplication,
    /// Pure separation: one row, `nᵢ` columns (`rᵢ = 1`) — balances
    /// storage but every document still hits every subset.
    PureSeparation,
}

/// The computed allocation factors: `n[i]` nodes for home node `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationFactors {
    /// Node count per home node (0 for nodes holding no filters).
    pub n: Vec<u64>,
}

impl AllocationFactors {
    /// Solves the Move optimization problem: weights from `rule`, scaled so
    /// the storage constraint `Σ nᵢ·(p′ᵢ·P) = N·C` holds, clamped to
    /// `[1, N]`, randomized-rounded (§IV-C).
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::CapacityExceeded`] when even the unreplicated
    /// layout (`nᵢ = 1`) exceeds the cluster budget.
    pub fn compute<R: Rng + ?Sized>(
        stats: &[NodeStats],
        total_filters: u64,
        capacity_per_node: u64,
        rule: FactorRule,
        beta: f64,
        rng: &mut R,
    ) -> Result<Self> {
        let nodes = stats.len();
        Self::compute_with_budget(
            stats,
            total_filters,
            nodes as u64 * capacity_per_node,
            nodes as u64,
            rule,
            beta,
            rng,
        )
    }

    /// [`AllocationFactors::compute`] with an explicit cluster `budget`
    /// (filter copies) and per-entry cap `n_max` — the per-*term*
    /// aggregation mode allocates over far more entries than there are
    /// nodes, so the budget cannot be derived from the entry count.
    ///
    /// # Errors
    ///
    /// As [`AllocationFactors::compute`].
    pub fn compute_with_budget<R: Rng + ?Sized>(
        stats: &[NodeStats],
        total_filters: u64,
        budget: u64,
        n_max: u64,
        rule: FactorRule,
        beta: f64,
        rng: &mut R,
    ) -> Result<Self> {
        let nodes = stats.len();
        let baseline: u64 = stats.iter().map(|s| s.pairs).sum();
        if baseline > budget {
            return Err(MoveError::CapacityExceeded {
                node: NodeId(0),
                capacity: budget,
                requested: baseline,
            });
        }
        let cap = n_max.max(1) as f64;
        let weights: Vec<f64> = stats
            .iter()
            .map(|s| {
                if s.pairs == 0 {
                    0.0
                } else {
                    rule.weight_for(s, total_filters, beta)
                        .max(f64::MIN_POSITIVE)
                }
            })
            .collect();
        // Water-filling: nodes whose proportional share exceeds the cap
        // `N` are pinned there and the freed budget is re-spread over the
        // rest, so clamping never wastes replication budget the hottest
        // homes could not absorb.
        let mut raw = vec![0.0f64; nodes];
        let mut clamped = vec![false; nodes];
        let mut remaining = budget as f64;
        loop {
            let denom: f64 = (0..nodes)
                .filter(|&i| !clamped[i] && stats[i].pairs > 0)
                .map(|i| weights[i] * stats[i].pairs as f64)
                .sum();
            if denom <= 0.0 {
                break;
            }
            let scale = remaining / denom;
            let mut newly_clamped = false;
            for i in 0..nodes {
                if clamped[i] || stats[i].pairs == 0 {
                    continue;
                }
                if scale * weights[i] >= cap {
                    raw[i] = cap;
                    clamped[i] = true;
                    remaining -= cap * stats[i].pairs as f64;
                    newly_clamped = true;
                }
            }
            if !newly_clamped {
                for i in 0..nodes {
                    if !clamped[i] && stats[i].pairs > 0 {
                        raw[i] = scale * weights[i];
                    }
                }
                break;
            }
        }
        let n = (0..nodes)
            .map(|i| {
                if stats[i].pairs == 0 {
                    0
                } else {
                    let r = raw[i].clamp(1.0, cap);
                    randomized_round(r, rng).clamp(1, n_max.max(1))
                }
            })
            .collect();
        Ok(Self { n })
    }
}

/// One home node's allocation grid: `rows` replica partitions ×
/// `cols` separation subsets (paper Fig. 2). The allocation ratio is
/// `rᵢ = cols/nᵢ = 1/rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
    /// Row-major: `nodes[row * cols + col]`.
    nodes: Vec<NodeId>,
}

impl Grid {
    /// The grid shape for `n` assigned nodes storing `pairs` filter copies
    /// under `capacity` per node: enough columns that each subset fits with
    /// headroom (`cols = ⌈pairs/(C/2)⌉`, the `rᵢ` tuning of §IV-B2 — the
    /// half-capacity target leaves room for a node to co-host subsets of
    /// several grids without spilling to disk), remaining factor as
    /// replica rows.
    pub fn shape(mode: GridMode, n: u64, pairs: u64, capacity: u64) -> (usize, usize) {
        let n = n.max(1) as usize;
        match mode {
            GridMode::PureReplication => (n, 1),
            GridMode::PureSeparation => (1, n),
            GridMode::Optimal => {
                let target = (capacity / 2).max(1);
                let min_cols = pairs.div_ceil(target).max(1) as usize;
                let cols = min_cols.min(n);
                let rows = (n / cols).max(1);
                (rows, cols)
            }
        }
    }

    /// Builds a grid over `slots.len()` nodes with the given shape, using
    /// the slots row-major. Shrinks the row count if too few slots were
    /// supplied (never below one row).
    ///
    /// # Panics
    ///
    /// Panics if `slots` has fewer than `cols` entries or the shape is
    /// degenerate.
    pub fn build(rows: usize, cols: usize, slots: Vec<NodeId>) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate grid shape");
        assert!(
            slots.len() >= cols,
            "need at least one full row: {} slots for {cols} columns",
            slots.len()
        );
        let rows = rows.min(slots.len() / cols);
        Self {
            rows,
            cols,
            nodes: slots.into_iter().take(rows * cols).collect(),
        }
    }

    /// Number of replica partitions (`1/rᵢ`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of separation subsets (`rᵢ·nᵢ`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The allocation ratio `rᵢ = 1/rows ∈ [1/nᵢ, 1]`.
    pub fn allocation_ratio(&self) -> f64 {
        1.0 / self.rows as f64
    }

    /// The node hosting `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node(&self, row: usize, col: usize) -> NodeId {
        assert!(
            row < self.rows && col < self.cols,
            "grid index out of range"
        );
        self.nodes[row * self.cols + col]
    }

    /// All grid nodes, row-major.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The nodes of one replica row.
    pub fn row(&self, row: usize) -> &[NodeId] {
        &self.nodes[row * self.cols..(row + 1) * self.cols]
    }

    /// The column a filter id is separated into (stable hash).
    pub fn column_of(&self, filter: move_types::FilterId) -> usize {
        (move_cluster::stable_hash64(&filter.0) % self.cols as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(pairs: &[u64], hits: &[u64]) -> Vec<NodeStats> {
        pairs
            .iter()
            .zip(hits)
            .map(|(&p, &h)| NodeStats {
                pairs: p,
                doc_hits: h,
                hit_postings: h * 50,
                docs_observed: 100,
            })
            .collect()
    }

    #[test]
    fn factors_satisfy_storage_constraint_in_expectation() {
        let st = stats(&[100, 400, 100, 400], &[10, 200, 10, 200]);
        let mut rng = StdRng::seed_from_u64(1);
        let f = AllocationFactors::compute(&st, 1_000, 1_000, FactorRule::SqrtPQ, 10.0, &mut rng)
            .unwrap();
        // Budget 4000 copies; Σ nᵢ·pairsᵢ should be near it (rounding slack).
        let used: u64 = f.n.iter().zip(&st).map(|(n, s)| n * s.pairs).sum();
        assert!(
            (used as f64 - 4_000.0).abs() < 1_500.0,
            "used {used} of budget 4000"
        );
        assert!(f.n.iter().all(|&n| (1..=4).contains(&n)));
    }

    #[test]
    fn busier_nodes_get_more_under_sqrt_q() {
        let st = stats(&[100, 100], &[400, 25]);
        let mut rng = StdRng::seed_from_u64(2);
        let f =
            AllocationFactors::compute(&st, 200, 400, FactorRule::SqrtQ, 1.0, &mut rng).unwrap();
        assert!(f.n[0] >= f.n[1], "hotter node should get more: {:?}", f.n);
    }

    #[test]
    fn empty_nodes_get_zero() {
        let st = stats(&[0, 100], &[0, 10]);
        let mut rng = StdRng::seed_from_u64(3);
        let f =
            AllocationFactors::compute(&st, 100, 1_000, FactorRule::SqrtPQ, 1.0, &mut rng).unwrap();
        assert_eq!(f.n[0], 0);
        assert!(f.n[1] >= 1);
    }

    #[test]
    fn over_capacity_is_rejected() {
        let st = stats(&[1_000, 1_000], &[1, 1]);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            AllocationFactors::compute(&st, 2_000, 100, FactorRule::SqrtQ, 1.0, &mut rng),
            Err(MoveError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn rule_weights_match_theorems() {
        assert_eq!(FactorRule::Uniform.weight(0.5, 9.0, 2.0), 1.0);
        assert_eq!(FactorRule::SqrtQ.weight(0.5, 9.0, 2.0), 3.0);
        assert!((FactorRule::SqrtBetaQ.weight(0.5, 4.0, 2.0) - 3.0).abs() < 1e-12);
        assert!((FactorRule::SqrtPQ.weight(0.25, 4.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_load_reduces_to_sqrt_q_per_term() {
        // A "node" holding exactly one term: pairs = p·P, load = q·p·P,
        // so √(load/pairs) = √q — Theorem 1 recovered.
        let s = NodeStats {
            pairs: 400,
            doc_hits: 0,
            hit_postings: 400 * 9, // q = 9 postings-fraction per doc
            docs_observed: 1,
        };
        let w = FactorRule::SqrtLoad.weight_for(&s, 1_000, 0.0);
        assert!((w - 3.0).abs() < 1e-12);
        assert_eq!(
            FactorRule::SqrtLoad.weight_for(&NodeStats::default(), 10, 0.0),
            0.0
        );
    }

    #[test]
    fn shape_respects_capacity() {
        // 10 nodes, 2500 pairs, capacity 1000 → half-capacity subsets of
        // 500 → 5 columns.
        let (rows, cols) = Grid::shape(GridMode::Optimal, 10, 2_500, 1_000);
        assert_eq!(cols, 5);
        assert_eq!(rows, 2);
        // Ample capacity → pure replication shape emerges naturally.
        assert_eq!(Grid::shape(GridMode::Optimal, 4, 10, 1_000), (4, 1));
        // Forced modes.
        assert_eq!(
            Grid::shape(GridMode::PureReplication, 6, 10_000, 10),
            (6, 1)
        );
        assert_eq!(Grid::shape(GridMode::PureSeparation, 6, 10_000, 10), (1, 6));
    }

    #[test]
    fn grid_layout_row_major() {
        let slots: Vec<NodeId> = (0..6).map(NodeId).collect();
        let g = Grid::build(3, 2, slots);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.node(0, 0), NodeId(0));
        assert_eq!(g.node(1, 0), NodeId(2));
        assert_eq!(g.node(2, 1), NodeId(5));
        assert_eq!(g.row(1), &[NodeId(2), NodeId(3)]);
        assert!((g.allocation_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_shrinks_rows_when_short_of_slots() {
        let slots: Vec<NodeId> = (0..5).map(NodeId).collect();
        let g = Grid::build(3, 2, slots); // only 2 full rows fit
        assert_eq!(g.rows(), 2);
        assert_eq!(g.nodes().len(), 4);
    }

    #[test]
    fn column_of_is_stable_and_in_range() {
        let g = Grid::build(2, 3, (0..6).map(NodeId).collect());
        for raw in 0..100u64 {
            let c = g.column_of(move_types::FilterId(raw));
            assert!(c < 3);
            assert_eq!(c, g.column_of(move_types::FilterId(raw)));
        }
    }

    #[test]
    #[should_panic(expected = "full row")]
    fn too_few_slots_rejected() {
        let _ = Grid::build(1, 4, vec![NodeId(0)]);
    }
}
