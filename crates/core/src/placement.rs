//! Selection of the nodes that host allocated filters (§V, "Selection of
//! allocated nodes").

use move_cluster::SimCluster;
use move_types::NodeId;
use serde::{Deserialize, Serialize};

/// Where a home node's allocated filters are placed.
///
/// The paper weighs two basic options and picks a blend: ring successors
/// cause cross-rack movement traffic (lower throughput) but spread replicas
/// across racks (higher availability); rack-aware placement is fast
/// (top-of-rack switch) but a rack failure can erase every copy. "Thus, to
/// avoid such downsides, we choose one half of the nᵢ nodes based on the
/// successors, and another half based on the rack-aware nodes."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// All grid slots on ring successors of the home node.
    Ring,
    /// All grid slots inside the home node's rack (falling back to ring
    /// successors when the rack is too small).
    Rack,
    /// Half rack mates, half ring successors — the MOVE choice.
    Hybrid,
}

impl PlacementStrategy {
    /// Picks up to `want` distinct live-or-dead nodes (liveness is the
    /// dissemination path's concern), excluding `home` itself. Returns
    /// fewer when the cluster is too small.
    pub fn select(&self, cluster: &SimCluster, home: NodeId, want: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::with_capacity(want);
        let push_all = |candidates: Vec<NodeId>, out: &mut Vec<NodeId>, limit: usize| {
            for c in candidates {
                if out.len() >= limit {
                    break;
                }
                if c != home && !out.contains(&c) {
                    out.push(c);
                }
            }
        };
        match self {
            Self::Ring => {
                push_all(cluster.ring().successors(home, want), &mut out, want);
            }
            Self::Rack => {
                push_all(cluster.topology().rack_mates(home), &mut out, want);
                // Rack exhausted: fall back to the ring for the remainder.
                push_all(cluster.ring().successors(home, want), &mut out, want);
            }
            Self::Hybrid => {
                // Interleave ring successors and rack mates so that every
                // prefix of the slot list — grids consume prefixes — is
                // roughly half-and-half, as §V prescribes, even when the
                // rack has few mates.
                let ring = cluster.ring().successors(home, want);
                let rack = cluster.topology().rack_mates(home);
                let mut ring_it = ring.iter();
                let mut rack_it = rack.iter();
                loop {
                    let mut advanced = false;
                    for pick in [rack_it.next(), ring_it.next()].into_iter().flatten() {
                        advanced = true;
                        if out.len() < want && *pick != home && !out.contains(pick) {
                            out.push(*pick);
                        }
                    }
                    if out.len() >= want || !advanced {
                        break;
                    }
                }
                // Tiny clusters: top up with anything reachable on the ring.
                push_all(cluster.ring().successors(home, want), &mut out, want);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_cluster::CostModel;

    fn cluster() -> SimCluster {
        SimCluster::new(12, 3, CostModel::default()).unwrap()
    }

    #[test]
    fn never_includes_home_and_never_duplicates() {
        let c = cluster();
        for strategy in [
            PlacementStrategy::Ring,
            PlacementStrategy::Rack,
            PlacementStrategy::Hybrid,
        ] {
            let picked = strategy.select(&c, NodeId(0), 6);
            assert!(!picked.contains(&NodeId(0)), "{strategy:?}");
            let set: std::collections::HashSet<_> = picked.iter().collect();
            assert_eq!(set.len(), picked.len(), "{strategy:?}");
            assert_eq!(picked.len(), 6, "{strategy:?}");
        }
    }

    #[test]
    fn rack_prefers_rack_mates() {
        let c = cluster(); // 4 per rack → 3 mates
        let picked = PlacementStrategy::Rack.select(&c, NodeId(0), 3);
        assert!(picked.iter().all(|&n| c.topology().same_rack(n, NodeId(0))));
    }

    #[test]
    fn rack_falls_back_to_ring_when_exhausted() {
        let c = cluster();
        let picked = PlacementStrategy::Rack.select(&c, NodeId(0), 8);
        assert_eq!(picked.len(), 8);
        let in_rack = picked
            .iter()
            .filter(|&&n| c.topology().same_rack(n, NodeId(0)))
            .count();
        assert_eq!(in_rack, 3, "all three rack mates first");
    }

    #[test]
    fn hybrid_mixes_rack_and_ring() {
        let c = cluster();
        let picked = PlacementStrategy::Hybrid.select(&c, NodeId(0), 6);
        let in_rack = picked
            .iter()
            .filter(|&&n| c.topology().same_rack(n, NodeId(0)))
            .count();
        assert!(in_rack >= 2, "expected rack half, got {in_rack} in-rack");
        assert!(in_rack < 6, "expected some ring nodes too");
    }

    #[test]
    fn want_larger_than_cluster_is_clamped() {
        let c = cluster();
        let picked = PlacementStrategy::Hybrid.select(&c, NodeId(0), 50);
        assert_eq!(picked.len(), 11); // everyone but home
    }

    #[test]
    fn zero_want_returns_empty() {
        let c = cluster();
        assert!(PlacementStrategy::Ring.select(&c, NodeId(0), 0).is_empty());
    }
}
