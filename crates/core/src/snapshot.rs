//! Immutable, epoch-stamped routing snapshots and the sharded statistics
//! residue — the split that lets many ingest threads route concurrently
//! while one control thread keeps exclusive ownership of the mutable
//! scheme state.
//!
//! [`Dissemination::route`](crate::Dissemination::route) takes `&mut self`
//! only because routing was historically entangled with MOVE's `q′ᵢ`
//! statistics collection and the schemes' fan-out RNGs. A [`RoutingView`]
//! is the pure-function remainder: everything per-document routing reads —
//! the frozen term→home table, the registered-terms Bloom filter, the
//! allocation grids, the liveness vector — captured at one *epoch*. The
//! control plane publishes a fresh view (epoch + 1) whenever registration,
//! allocation, or membership changes it; ingest threads route any number
//! of documents against the current view with a caller-owned RNG, and bump
//! the mutable residue (document-frequency counters) into a local
//! [`StatsDelta`] the control plane merges back at refresh epochs via
//! [`Dissemination::absorb_stats`](crate::Dissemination::absorb_stats).

use crate::{Grid, MatchTask, RouteStep};
use move_bloom::CountingBloomFilter;
use move_cluster::TermHomeTable;
use move_types::{Document, NodeId, TermId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The mutable residue of routing: MOVE's per-node document-frequency
/// sample and per-term hit counters, accumulated locally by one ingest
/// thread and merged into the scheme by the control plane at
/// allocation-refresh epochs. IL and RS collect no routing statistics, so
/// their deltas stay empty.
#[derive(Debug, Clone, Default)]
pub struct StatsDelta {
    /// Documents observed into this delta.
    pub docs: u64,
    /// `q′ᵢ` sample: routing hits per node, indexed by node id.
    pub doc_hits: Vec<u64>,
    /// Load sample: posting entries the home would scan, per node.
    pub hit_postings: Vec<u64>,
    /// Routing hits per term (`qₜ` sample), dense by term id.
    pub term_hits: Vec<u64>,
}

impl StatsDelta {
    /// An empty delta sized for `nodes` cluster nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            docs: 0,
            doc_hits: vec![0; nodes],
            hit_postings: vec![0; nodes],
            term_hits: Vec::new(),
        }
    }

    /// Whether the delta carries no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs == 0
    }

    /// Folds `other` into `self` (shard merge at a refresh epoch).
    pub fn merge(&mut self, other: &StatsDelta) {
        self.docs += other.docs;
        if self.doc_hits.len() < other.doc_hits.len() {
            self.doc_hits.resize(other.doc_hits.len(), 0);
        }
        for (a, b) in self.doc_hits.iter_mut().zip(&other.doc_hits) {
            *a += b;
        }
        if self.hit_postings.len() < other.hit_postings.len() {
            self.hit_postings.resize(other.hit_postings.len(), 0);
        }
        for (a, b) in self.hit_postings.iter_mut().zip(&other.hit_postings) {
            *a += b;
        }
        if self.term_hits.len() < other.term_hits.len() {
            self.term_hits.resize(other.term_hits.len(), 0);
        }
        for (a, b) in self.term_hits.iter_mut().zip(&other.term_hits) {
            *a += b;
        }
    }

    fn bump_term(&mut self, t: TermId) {
        let i = t.as_usize();
        if self.term_hits.len() <= i {
            self.term_hits.resize(i + 1, 0);
        }
        self.term_hits[i] += 1;
    }
}

/// The per-scheme shape of a [`RoutingView`].
#[derive(Debug, Clone)]
enum ViewKind {
    /// Distributed inverted list: Bloom-pruned term homes.
    Il {
        homes: Arc<TermHomeTable>,
        bloom: Arc<CountingBloomFilter>,
        use_bloom: bool,
    },
    /// Rendezvous flooding: one randomly chosen replica group.
    Rs { groups: Arc<Vec<Vec<NodeId>>> },
    /// MOVE: IL fronting per-home (and per-term) allocation grids.
    Move {
        homes: Arc<TermHomeTable>,
        bloom: Arc<CountingBloomFilter>,
        use_bloom: bool,
        allocations: Arc<Vec<Option<Grid>>>,
        term_allocations: Arc<HashMap<TermId, Grid>>,
        /// Registered pairs per term (posting lengths at the home) —
        /// feeds the load sample of [`RoutingView::observe`].
        term_pairs: Arc<Vec<u64>>,
    },
}

/// The MOVE-specific ingredients of a snapshot, bundled so
/// [`RoutingView::r#move`] stays a three-argument constructor: the frozen
/// term→home table, the registered-terms Bloom filter, and both allocation
/// grid maps plus the per-term posting lengths the observer samples.
#[derive(Debug, Clone)]
pub struct MoveViewParts {
    /// Frozen term→home table.
    pub homes: TermHomeTable,
    /// Registered-terms counting Bloom filter at snapshot time.
    pub bloom: CountingBloomFilter,
    /// Whether routing consults the Bloom filter (the ablation toggle).
    pub use_bloom: bool,
    /// Per-home allocation grids (`None` where a home has no grid).
    pub allocations: Vec<Option<Grid>>,
    /// Per-term allocation grids (the term-granular ablation mode).
    pub term_allocations: HashMap<TermId, Grid>,
    /// Registered pairs per term (posting lengths at the home).
    pub term_pairs: Vec<u64>,
}

/// An immutable snapshot of everything per-document routing reads,
/// stamped with the epoch it was published at. Cheap to clone (the bulky
/// parts are `Arc`-shared) and safe to consult from any number of threads;
/// see the module docs for the publication protocol.
#[derive(Debug, Clone)]
pub struct RoutingView {
    /// The control plane's publication counter: a view with a higher epoch
    /// supersedes every lower one.
    pub epoch: u64,
    /// The cluster-layout version the snapshot was frozen under (0 for
    /// static clusters). Lets the migration engine tell pre- and post-join
    /// views apart independently of the publication epoch.
    pub layout_version: u64,
    /// Liveness per node at snapshot time.
    alive: Arc<Vec<bool>>,
    /// During a join's handover window: re-homed terms mapped to their
    /// *old* home, which [`RoutingView::route_handover`] double-routes to.
    handover: Option<Arc<HashMap<TermId, NodeId>>>,
    kind: ViewKind,
}

impl RoutingView {
    /// An IL snapshot (also the base of the MOVE one).
    #[must_use]
    pub fn il(
        epoch: u64,
        alive: Vec<bool>,
        homes: TermHomeTable,
        bloom: CountingBloomFilter,
        use_bloom: bool,
    ) -> Self {
        Self {
            epoch,
            layout_version: 0,
            alive: Arc::new(alive),
            handover: None,
            kind: ViewKind::Il {
                homes: Arc::new(homes),
                bloom: Arc::new(bloom),
                use_bloom,
            },
        }
    }

    /// An RS snapshot over the round-robin replica groups.
    #[must_use]
    pub fn rs(epoch: u64, alive: Vec<bool>, groups: Vec<Vec<NodeId>>) -> Self {
        Self {
            epoch,
            layout_version: 0,
            alive: Arc::new(alive),
            handover: None,
            kind: ViewKind::Rs {
                groups: Arc::new(groups),
            },
        }
    }

    /// A MOVE snapshot: term homes, Bloom filter, and allocation grids.
    #[must_use]
    pub fn r#move(epoch: u64, alive: Vec<bool>, parts: MoveViewParts) -> Self {
        Self {
            epoch,
            layout_version: 0,
            alive: Arc::new(alive),
            handover: None,
            kind: ViewKind::Move {
                homes: Arc::new(parts.homes),
                bloom: Arc::new(parts.bloom),
                use_bloom: parts.use_bloom,
                allocations: Arc::new(parts.allocations),
                term_allocations: Arc::new(parts.term_allocations),
                term_pairs: Arc::new(parts.term_pairs),
            },
        }
    }

    /// Stamps the snapshot with the cluster-layout version it was frozen
    /// under.
    #[must_use]
    pub fn with_layout_version(mut self, version: u64) -> Self {
        self.layout_version = version;
        self
    }

    /// Attaches a handover map (re-homed term → old home) for a join's
    /// double-route window. [`RoutingView::route_handover`] sends moved
    /// terms to *both* homes until the join is retired and a view without
    /// a handover map is published.
    #[must_use]
    pub fn with_handover(mut self, moved: HashMap<TermId, NodeId>) -> Self {
        self.handover = if moved.is_empty() {
            None
        } else {
            Some(Arc::new(moved))
        };
        self
    }

    /// Number of terms in the attached handover map (0 outside a window).
    #[must_use]
    pub fn handover_terms(&self) -> usize {
        self.handover.as_ref().map_or(0, |h| h.len())
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.as_usize()).copied().unwrap_or(false)
    }

    /// Computes the routing plan for one document against this snapshot —
    /// the same plan the owning scheme's
    /// [`route`](crate::Dissemination::route) would produce at the moment
    /// the snapshot was frozen. Pure except for `rng`, which makes the
    /// randomized fan-out choices (MOVE's replica row, RS's replica
    /// group); replicas hold identical filter subsets, so the *delivery
    /// set* of the plan is RNG-independent.
    #[must_use]
    pub fn route(&self, doc: &Document, rng: &mut StdRng) -> Vec<RouteStep> {
        match &self.kind {
            ViewKind::Il {
                homes,
                bloom,
                use_bloom,
            } => {
                let mut by_home: BTreeMap<NodeId, Vec<TermId>> = BTreeMap::new();
                for &t in doc.terms() {
                    if *use_bloom && !bloom.contains(&t.0) {
                        continue;
                    }
                    let home = homes.home_of_term(t);
                    if !self.is_alive(home) {
                        continue;
                    }
                    by_home.entry(home).or_default().push(t);
                }
                by_home
                    .into_iter()
                    .map(|(home, terms)| RouteStep::direct(home, MatchTask::Terms(terms)))
                    .collect()
            }
            ViewKind::Rs { groups } => {
                let group = rng.gen_range(0..groups.len());
                groups[group]
                    .iter()
                    .filter(|&&node| self.is_alive(node))
                    .map(|&node| RouteStep::direct(node, MatchTask::FullIndex))
                    .collect()
            }
            ViewKind::Move {
                homes,
                bloom,
                use_bloom,
                allocations,
                term_allocations,
                ..
            } => {
                let mut by_home: BTreeMap<NodeId, Vec<TermId>> = BTreeMap::new();
                for &t in doc.terms() {
                    if *use_bloom && !bloom.contains(&t.0) {
                        continue;
                    }
                    let home = homes.home_of_term(t);
                    if !self.is_alive(home) {
                        continue;
                    }
                    by_home.entry(home).or_default().push(t);
                }
                let mut steps: Vec<RouteStep> = Vec::new();
                for (home, mut terms) in by_home {
                    if !term_allocations.is_empty() {
                        let mut kept = Vec::with_capacity(terms.len());
                        let mut routed_any = false;
                        for t in terms {
                            let Some(grid) = term_allocations.get(&t) else {
                                kept.push(t);
                                continue;
                            };
                            if !routed_any {
                                steps.push(RouteStep::direct(home, MatchTask::Forward));
                                routed_any = true;
                            }
                            let preferred = rng.gen_range(0..grid.rows());
                            for col in 0..grid.cols() {
                                let node = (0..grid.rows())
                                    .map(|dr| grid.node((preferred + dr) % grid.rows(), col))
                                    .find(|&n| self.is_alive(n));
                                let Some(node) = node else {
                                    continue;
                                };
                                steps.push(RouteStep::forwarded(
                                    node,
                                    MatchTask::Terms(vec![t]),
                                    home,
                                ));
                            }
                        }
                        terms = kept;
                        if terms.is_empty() {
                            continue;
                        }
                    }
                    match allocations[home.as_usize()].as_ref() {
                        None => {
                            steps.push(RouteStep::direct(home, MatchTask::Terms(terms)));
                        }
                        Some(grid) => {
                            steps.push(RouteStep::direct(home, MatchTask::Forward));
                            let preferred = rng.gen_range(0..grid.rows());
                            for col in 0..grid.cols() {
                                let node = (0..grid.rows())
                                    .map(|dr| grid.node((preferred + dr) % grid.rows(), col))
                                    .find(|&n| self.is_alive(n));
                                let Some(node) = node else {
                                    continue;
                                };
                                steps.push(RouteStep::forwarded(
                                    node,
                                    MatchTask::Terms(terms.clone()),
                                    home,
                                ));
                            }
                        }
                    }
                }
                steps
            }
        }
    }

    /// [`RoutingView::route`] plus the join-window double-route: any
    /// document term found in the attached handover map also gets a direct
    /// step to the term's *old* home, so documents in flight while
    /// partitions hand over are matched by whichever copy is complete.
    /// Returns the plan and whether the document was double-routed.
    /// Duplicate deliveries from the two copies are benign — delivery sets
    /// are unions. Identical to `route` when no handover map is attached.
    #[must_use]
    pub fn route_handover(&self, doc: &Document, rng: &mut StdRng) -> (Vec<RouteStep>, bool) {
        let mut steps = self.route(doc, rng);
        let Some(handover) = &self.handover else {
            return (steps, false);
        };
        let mut by_old: BTreeMap<NodeId, Vec<TermId>> = BTreeMap::new();
        for &t in doc.terms() {
            if let Some(&old) = handover.get(&t) {
                if self.is_alive(old) {
                    by_old.entry(old).or_default().push(t);
                }
            }
        }
        let doubled = !by_old.is_empty();
        for (old, terms) in by_old {
            steps.push(RouteStep::direct(old, MatchTask::Terms(terms)));
        }
        (steps, doubled)
    }

    /// Records one document into `delta` — the snapshot counterpart of
    /// MOVE's statistics observer (`q′ᵢ` per home node, posting load,
    /// per-term hits). A no-op for schemes without routing statistics.
    pub fn observe(&self, doc: &Document, delta: &mut StatsDelta) {
        let ViewKind::Move {
            homes,
            bloom,
            term_pairs,
            ..
        } = &self.kind
        else {
            return;
        };
        for &t in doc.terms() {
            if bloom.contains(&t.0) {
                let home = homes.home_of_term(t).as_usize();
                if delta.doc_hits.len() <= home {
                    delta.doc_hits.resize(home + 1, 0);
                    delta.hit_postings.resize(home + 1, 0);
                }
                delta.doc_hits[home] += 1;
                delta.hit_postings[home] += term_pairs.get(t.as_usize()).copied().unwrap_or(0);
                delta.bump_term(t);
            }
        }
        delta.docs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
    use move_types::Filter;
    use rand::SeedableRng;

    fn filter(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    fn doc(id: u64, terms: &[u32]) -> Document {
        Document::from_distinct_terms(id, terms.iter().map(|&t| TermId(t)))
    }

    fn docs() -> Vec<Document> {
        (0..40u64)
            .map(|id| {
                let mut terms: Vec<u32> = vec![(id % 37) as u32, ((id * 13) % 53) as u32, 200];
                terms.sort_unstable();
                terms.dedup();
                doc(id, &terms)
            })
            .collect()
    }

    #[test]
    fn il_view_route_matches_scheme_route() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        for id in 0..120u64 {
            il.register(&filter(id, &[(id % 37) as u32])).unwrap();
        }
        let view = il.routing_view(3);
        assert_eq!(view.epoch, 3);
        let mut rng = StdRng::seed_from_u64(0);
        for d in &docs() {
            assert_eq!(view.route(d, &mut rng), il.route(d), "doc {}", d.id());
        }
    }

    #[test]
    fn il_view_is_a_point_in_time_snapshot() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[7])).unwrap();
        let view = il.routing_view(0);
        il.register(&filter(2, &[9])).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let d = doc(0, &[9]);
        // The old view does not know term 9 yet (Bloom prunes it)…
        assert!(view.route(&d, &mut rng).is_empty());
        // …while a re-published view does.
        assert_eq!(il.routing_view(1).route(&d, &mut rng), il.route(&d));
    }

    #[test]
    fn rs_view_route_matches_scheme_route_given_same_group_choice() {
        let mut rs = RsScheme::new(SystemConfig::small_test()).unwrap();
        for id in 0..60u64 {
            rs.register(&filter(id, &[(id % 11) as u32])).unwrap();
        }
        let view = rs.routing_view(1);
        let d = doc(0, &[3]);
        // Replica groups are interchangeable: whatever group either side
        // picks, the flooded node count is one full group.
        let mut rng = StdRng::seed_from_u64(9);
        let via_view = view.route(&d, &mut rng);
        let via_scheme = rs.route(&d);
        assert_eq!(via_view.len(), via_scheme.len());
        assert!(via_view
            .iter()
            .all(|s| s.task == MatchTask::FullIndex && s.from.is_none()));
    }

    #[test]
    fn move_view_route_matches_scheme_route_unallocated() {
        let mut mv = MoveScheme::new(SystemConfig::small_test()).unwrap();
        for id in 0..120u64 {
            mv.register(&filter(id, &[(id % 37) as u32])).unwrap();
        }
        let view = mv.routing_view(2);
        let mut rng = StdRng::seed_from_u64(0);
        for d in &docs() {
            assert_eq!(view.route(d, &mut rng), mv.route(d), "doc {}", d.id());
        }
    }

    #[test]
    fn move_view_route_covers_grid_columns_after_allocation() {
        let mut cfg = SystemConfig::small_test();
        cfg.capacity_per_node = 60;
        let mut mv = MoveScheme::new(cfg).unwrap();
        for id in 0..300u64 {
            mv.register(&filter(id, &[(id % 3) as u32])).unwrap();
        }
        mv.observe_corpus(&docs());
        mv.allocate().unwrap();
        let view = mv.routing_view(1);
        let mut rng = StdRng::seed_from_u64(7);
        for d in &docs() {
            let via_view = view.route(d, &mut rng);
            let via_scheme = mv.route(d);
            // Row choices are independent draws, but the *shape* of the
            // plan — which (from, task-kind) pairs appear, and how many
            // grid columns are fanned to — is layout-determined.
            let shape = |steps: &[RouteStep]| {
                let mut s: Vec<(Option<NodeId>, bool)> = steps
                    .iter()
                    .map(|st| (st.from, st.task == MatchTask::Forward))
                    .collect();
                s.sort();
                s
            };
            assert_eq!(shape(&via_view), shape(&via_scheme), "doc {}", d.id());
        }
    }

    #[test]
    fn move_view_observe_matches_scheme_observe() {
        let mut a = MoveScheme::new(SystemConfig::small_test()).unwrap();
        let mut b = MoveScheme::new(SystemConfig::small_test()).unwrap();
        for id in 0..120u64 {
            let f = filter(id, &[(id % 37) as u32]);
            a.register(&f).unwrap();
            b.register(&f).unwrap();
        }
        let view = b.routing_view(0);
        let mut delta = StatsDelta::new(0);
        for d in &docs() {
            a.note_published(d);
            view.observe(d, &mut delta);
        }
        assert_eq!(delta.docs, docs().len() as u64);
        b.absorb_stats(&delta);
        assert_eq!(a.doc_hits_per_node(), b.doc_hits_per_node());
        assert_eq!(a.node_stats(), b.node_stats());
    }

    #[test]
    fn route_handover_double_routes_moved_terms_to_their_old_home() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[7])).unwrap();
        let d = doc(0, &[7]);
        let mut rng = StdRng::seed_from_u64(0);
        let new_home = il.routing_view(0).route(&d, &mut rng)[0].node;
        let nodes = il.cluster().ring().len() as u32;
        let old_home = NodeId((new_home.0 + 1) % nodes);
        let mut moved = HashMap::new();
        moved.insert(TermId(7), old_home);
        let view = il
            .routing_view(1)
            .with_handover(moved)
            .with_layout_version(1);
        assert_eq!(view.layout_version, 1);
        assert_eq!(view.handover_terms(), 1);
        let (steps, doubled) = view.route_handover(&d, &mut rng);
        assert!(doubled);
        assert!(steps.iter().any(|s| s.node == old_home && s.from.is_none()));
        assert!(steps.iter().any(|s| s.node == new_home));
        // A document without re-homed terms is not double-routed…
        let (other, doubled) = view.route_handover(&doc(1, &[9]), &mut rng);
        assert!(!doubled);
        assert_eq!(other, view.route(&doc(1, &[9]), &mut rng));
        // …and a window-free view routes identically to `route`.
        let plain = il.routing_view(2);
        assert_eq!(plain.handover_terms(), 0);
        let (steps, doubled) = plain.route_handover(&d, &mut rng);
        assert!(!doubled);
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn stats_delta_merge_grows_and_sums() {
        let mut a = StatsDelta::new(2);
        a.docs = 1;
        a.doc_hits[1] = 3;
        let mut b = StatsDelta::new(4);
        b.docs = 2;
        b.doc_hits[3] = 5;
        b.term_hits = vec![0, 7];
        a.merge(&b);
        assert_eq!(a.docs, 3);
        assert_eq!(a.doc_hits, vec![0, 3, 0, 5]);
        assert_eq!(a.term_hits, vec![0, 7]);
        assert!(!a.is_empty());
        assert!(StatsDelta::new(3).is_empty());
    }
}
