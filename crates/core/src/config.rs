//! System configuration shared by the three schemes.

use crate::PlacementStrategy;
use move_cluster::CostModel;
use move_types::{MatchSemantics, MoveError, Result};
use serde::{Deserialize, Serialize};

/// When MOVE (re)computes filter allocations (§V, "Allocation Policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Allocate before documents flow, from registered filters and an
    /// offline corpus sample, then refresh periodically — the paper's
    /// choice ("filters are registered before document publication, \[so\] it
    /// is easy to learn the pattern of filters").
    Proactive,
    /// Start unallocated; learn `qᵢ` from live traffic and allocate after
    /// `refresh_every_docs` documents. Suffers the hot-spot-aggravation the
    /// paper warns about (movement happens while the node is already hot).
    Passive,
}

/// Configuration of a simulated deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cluster nodes `N` (paper default 20, up to ~100).
    pub nodes: usize,
    /// Number of racks.
    pub racks: usize,
    /// Per-node storage capacity `C`, counted in filter copies
    /// (paper: 3 × 10⁶ including replicas).
    pub capacity_per_node: u64,
    /// Matching semantics (the paper evaluates Boolean).
    pub semantics: MatchSemantics,
    /// The latency cost model.
    pub cost: CostModel,
    /// Replica groups of the rendezvous comparator (paper: key/value
    /// platforms "replicate each object with three replicas").
    pub rs_replica_groups: usize,
    /// Placement of allocated filters (§V: ring / rack / the MOVE hybrid).
    pub placement: PlacementStrategy,
    /// Allocation timing policy.
    pub allocation_policy: AllocationPolicy,
    /// Under the passive policy, re-allocate after this many published
    /// documents; under the proactive policy, refresh `qᵢ` at the same
    /// period ("every 10 minutes, the values of qᵢ are renewed").
    pub refresh_every_docs: u64,
    /// Whether document terms are pruned against the registered-terms
    /// Bloom filter before forwarding (§V; the ablation switches it off).
    pub use_bloom: bool,
    /// Target false-positive rate of the registered-terms Bloom filter.
    pub bloom_fpr: f64,
    /// Expected number of distinct filter terms (sizes the Bloom filter).
    pub expected_terms: usize,
    /// RNG seed (partition row choice, rounding).
    pub seed: u64,
    /// Charge per filter copy moved during (re-)allocation, in virtual
    /// seconds, billed to the source home node.
    pub move_cost_per_copy: f64,
    /// Whether the control plane aggregates identical predicates onto one
    /// canonical filter with a compressed subscriber fan-out set
    /// (DESIGN.md §12). Off, every subscription stores its own posting
    /// entries — the verbatim baseline `bench_control` compares against.
    #[serde(default)]
    pub aggregate_filters: bool,
}

impl Default for SystemConfig {
    /// The paper's cluster defaults: `N = 20` nodes over 4 racks,
    /// `C = 3×10⁶`, boolean matching, 3 rendezvous replica groups, hybrid
    /// placement, proactive allocation.
    fn default() -> Self {
        Self {
            nodes: 20,
            racks: 4,
            capacity_per_node: 3_000_000,
            semantics: MatchSemantics::Boolean,
            cost: CostModel::default(),
            rs_replica_groups: 3,
            placement: PlacementStrategy::Hybrid,
            allocation_policy: AllocationPolicy::Proactive,
            refresh_every_docs: 10_000,
            use_bloom: true,
            bloom_fpr: 0.01,
            expected_terms: 1_000_000,
            seed: 0x5eed,
            move_cost_per_copy: 2e-6,
            aggregate_filters: true,
        }
    }
}

impl SystemConfig {
    /// A tiny deterministic deployment for unit tests and doc examples:
    /// 6 nodes, 2 racks, small capacity.
    pub fn small_test() -> Self {
        Self {
            nodes: 6,
            racks: 2,
            capacity_per_node: 10_000,
            expected_terms: 10_000,
            refresh_every_docs: 1_000,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::InvalidConfig`] for zero-sized clusters,
    /// capacities, or replica groups, and out-of-range rates.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 || self.racks == 0 {
            return Err(MoveError::InvalidConfig(
                "nodes and racks must be positive".into(),
            ));
        }
        if self.capacity_per_node == 0 {
            return Err(MoveError::InvalidConfig(
                "capacity_per_node must be positive".into(),
            ));
        }
        if self.rs_replica_groups == 0 {
            return Err(MoveError::InvalidConfig(
                "rs_replica_groups must be positive".into(),
            ));
        }
        if !(0.0..0.5).contains(&self.bloom_fpr) || self.bloom_fpr <= 0.0 {
            return Err(MoveError::InvalidConfig(format!(
                "bloom_fpr {} must be in (0, 0.5)",
                self.bloom_fpr
            )));
        }
        if self.refresh_every_docs == 0 {
            return Err(MoveError::InvalidConfig(
                "refresh_every_docs must be positive".into(),
            ));
        }
        if self.move_cost_per_copy < 0.0 {
            return Err(MoveError::InvalidConfig(
                "move_cost_per_copy must be >= 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_vi() {
        let c = SystemConfig::default();
        assert_eq!(c.nodes, 20);
        assert_eq!(c.capacity_per_node, 3_000_000);
        assert_eq!(c.rs_replica_groups, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_test_is_valid() {
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        for mutate in [
            (|c: &mut SystemConfig| c.nodes = 0) as fn(&mut SystemConfig),
            |c| c.racks = 0,
            |c| c.capacity_per_node = 0,
            |c| c.rs_replica_groups = 0,
            |c| c.bloom_fpr = 0.0,
            |c| c.bloom_fpr = 0.7,
            |c| c.refresh_every_docs = 0,
            |c| c.move_cost_per_copy = -1.0,
        ] {
            let mut c = SystemConfig::default();
            mutate(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
