//! Load and availability metrics for the maintenance figures (Fig. 9).

use crate::{Dissemination, MoveScheme};
use serde::{Deserialize, Serialize};

/// The two per-node load vectors of Figs. 9a–9b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadVectors {
    /// Filter copies stored per node (storage cost).
    pub storage: Vec<f64>,
    /// Documents received for matching per node (matching cost — "the
    /// number of received documents that a node needs to retrieve the local
    /// inverted list").
    pub matching: Vec<f64>,
}

/// Extracts the load vectors of a scheme from its storage accounting and
/// cost ledgers.
pub fn load_vectors(scheme: &dyn Dissemination) -> LoadVectors {
    let storage = scheme
        .storage_per_node()
        .into_iter()
        .map(|s| s as f64)
        .collect();
    let matching = scheme
        .cluster()
        .ledgers()
        .all()
        .iter()
        .map(|l| l.docs_received as f64)
        .collect();
    LoadVectors { storage, matching }
}

/// Normalizes `values` against a reference mean — the paper plots each
/// node's load as "the rate between the load of each node and the overall
/// average load of the RS scheme" (Fig. 9a–9b).
///
/// Returns zeros when the reference mean is zero.
///
/// # Examples
///
/// ```
/// let normalized = move_core::normalize_to(&[2.0, 4.0], 2.0);
/// assert_eq!(normalized, vec![1.0, 2.0]);
/// ```
pub fn normalize_to(values: &[f64], reference_mean: f64) -> Vec<f64> {
    if reference_mean <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / reference_mean).collect()
}

/// The fraction of registered filters still reachable on the MOVE scheme
/// given current node liveness (Fig. 9d's y-axis).
pub fn availability(scheme: &MoveScheme) -> f64 {
    scheme.filter_availability()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IlScheme, SystemConfig};
    use move_types::{Document, Filter, TermId};

    #[test]
    fn load_vectors_reflect_activity() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&Filter::new(1u64, [TermId(3)])).unwrap();
        il.publish(0.0, &Document::from_distinct_terms(0u64, [TermId(3)]))
            .unwrap();
        let lv = load_vectors(&il);
        assert_eq!(lv.storage.iter().sum::<f64>(), 1.0);
        assert_eq!(lv.matching.iter().sum::<f64>(), 1.0);
        assert_eq!(lv.storage.len(), 6);
    }

    #[test]
    fn normalize_handles_zero_reference() {
        assert_eq!(normalize_to(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
        assert_eq!(normalize_to(&[3.0], 3.0), vec![1.0]);
    }
}
