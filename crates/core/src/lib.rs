//! The MOVE content filtering and dissemination system — the paper's
//! primary contribution, plus the two comparator schemes of its evaluation.
//!
//! Three schemes implement the common [`Dissemination`] trait:
//!
//! * [`IlScheme`] — the baseline *distributed inverted list* (§III): filters
//!   registered on the home node of each of their terms, documents forwarded
//!   to the home nodes of their (Bloom-filtered) terms, each home node
//!   retrieving exactly one posting list;
//! * [`RsScheme`] — the *rendezvous/flooding* comparator (§VI-A, after
//!   Google web search and ROAR): filters spread uniformly with `g`
//!   replica groups, each document flooded to every node of one group,
//!   matched there with the centralized SIFT algorithm;
//! * [`MoveScheme`] — MOVE itself (§IV–V): the IL layout plus *adaptive
//!   filter allocation*. Per-node statistics `(p'ᵢ, q'ᵢ)` feed the optimizer
//!   ([`AllocationFactors`]), which assigns each overloaded home node an
//!   `nᵢ`-node grid of `1/rᵢ` replica rows × `rᵢ·nᵢ` separation columns;
//!   documents hit one random row in parallel.
//!
//! Every `publish` returns both the matched filters (checked against the
//! [`move_index::brute_force`] oracle in the test suite) and a virtual-time
//! [`move_cluster::Job`] that the discrete-event simulator converts into the
//! paper's throughput figures.
//!
//! # Examples
//!
//! ```
//! use move_core::{Dissemination, MoveScheme, SystemConfig};
//! use move_types::{Document, Filter, TermId};
//!
//! let mut system = MoveScheme::new(SystemConfig::small_test()).unwrap();
//! system.register(&Filter::new(1u64, [TermId(7)])).unwrap();
//! let doc = Document::from_distinct_terms(1u64, [TermId(7), TermId(9)]);
//! let out = system.publish(0.0, &doc).unwrap();
//! assert_eq!(out.matched, vec![move_types::FilterId(1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod codec;
mod config;
mod il;
mod metrics;
mod move_scheme;
mod placement;
mod rs;
mod scheme;
mod single_node;
mod snapshot;
mod stats;

pub use allocation::{AllocationFactors, FactorRule, Grid, GridMode};
pub use codec::{decode_filter, encode_filter};
pub use config::{AllocationPolicy, SystemConfig};
pub use il::{IlScheme, RegistrationMode};
pub use metrics::{availability, load_vectors, normalize_to, LoadVectors};
pub use move_scheme::MoveScheme;
pub use placement::PlacementStrategy;
pub use rs::RsScheme;
pub use scheme::{
    Dissemination, JoinSummary, MatchTask, RegisterOp, RegisterOps, RouteStep, SchemeOutput,
    UnregisterOp,
};
pub use single_node::{run_single_node, SingleNodeReport};
pub use snapshot::{MoveViewParts, RoutingView, StatsDelta};
pub use stats::NodeStats;
