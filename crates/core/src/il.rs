//! The baseline: the pure distributed inverted list (paper §III).

use crate::scheme::{execute_steps, JoinSummary};
use crate::{
    encode_filter, Dissemination, MatchTask, RegisterOp, RegisterOps, RouteStep, RoutingView,
    SchemeOutput, SystemConfig, UnregisterOp,
};
use move_bloom::CountingBloomFilter;
use move_cluster::{partition_of_term, Job, SimCluster, Stage};
use move_index::{
    FanoutTable, FilterAggregator, InvertedIndex, MatchScratch, RegisterOutcome, UnregisterOutcome,
};
use move_types::{Document, Filter, FilterId, NodeId, Result, TermId};
use std::collections::HashMap;
use std::sync::Arc;

/// The `IL` scheme of the evaluation: a filter is registered on the home
/// node of *each* of its terms; the home node of `t` indexes it under `t`
/// only. A published document is forwarded (in parallel) to the home nodes
/// of its Bloom-filtered terms, each of which retrieves exactly one posting
/// list.
///
/// Correct but throughput-limited: the skew of term popularity `pᵢ` and
/// term frequency `qᵢ` concentrates both storage and matching on a few hot
/// home nodes (§III-C) — precisely what Figs. 8–9 show and what MOVE's
/// allocation fixes.
///
/// # Examples
///
/// ```
/// use move_core::{Dissemination, IlScheme, SystemConfig};
/// use move_types::{Document, Filter, TermId};
///
/// let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
/// il.register(&Filter::new(1u64, [TermId(3), TermId(5)])).unwrap();
/// let doc = Document::from_distinct_terms(1u64, [TermId(5)]);
/// assert_eq!(il.publish(0.0, &doc).unwrap().matched.len(), 1);
/// ```
#[derive(Debug)]
pub struct IlScheme {
    config: SystemConfig,
    cluster: SimCluster,
    indexes: Vec<Arc<InvertedIndex>>,
    /// Counting Bloom filter over all registered filter terms (§V).
    bloom: CountingBloomFilter,
    /// Filter copies (registration pairs) per node.
    storage: Vec<u64>,
    /// Directory for unregistration (the metadata any real deployment keeps
    /// alongside the DHT). Bodies are shared with the serving indexes.
    directory: HashMap<FilterId, Arc<Filter>>,
    /// Which of a filter's terms it was registered under (differs from all
    /// of them only in [`RegistrationMode::NeededTerms`]).
    registered_under: HashMap<FilterId, Vec<TermId>>,
    /// How many registered filters contain each term — the rarity signal
    /// the needed-terms mode selects by.
    term_popularity: HashMap<TermId, u64>,
    registration: RegistrationMode,
    /// Canonicalizing aggregation layer: identical predicates collapse to
    /// one canonical filter whose postings are stored once (DESIGN.md §12).
    aggregator: FilterAggregator,
    /// Whether aggregation is on ([`SystemConfig::aggregate_filters`]);
    /// off, every subscription is its own canonical — the verbatim
    /// baseline.
    aggregate: bool,
    /// Reusable match-kernel working memory for `publish`.
    scratch: MatchScratch,
}

/// How many of a filter's terms the distributed inverted list registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegistrationMode {
    /// Every term, as in the paper — required for boolean semantics, where
    /// any single shared term constitutes a match.
    #[default]
    AllTerms,
    /// Only the `|f| − ⌈θ·|f|⌉ + 1` *rarest* terms. Under the
    /// similarity-threshold semantics `θ`, a matching document shares at
    /// least `⌈θ·|f|⌉` of the filter's terms, and by pigeonhole at least
    /// one of them is registered — completeness is preserved while storage
    /// and posting traffic shrink (for conjunctive matching, `θ = 1`, a
    /// single registration per filter suffices). This is the
    /// term-selection idea of STAIRS [17, 21] applied to the registration
    /// side; the paper discards selection on the *forwarding* side for
    /// throughput, which this mode does not touch.
    NeededTerms,
}

impl IlScheme {
    /// Builds the scheme on a fresh simulated cluster.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Result<Self> {
        config.validate()?;
        let cluster = SimCluster::new(config.nodes, config.racks, config.cost)?;
        let indexes = (0..config.nodes)
            .map(|_| Arc::new(InvertedIndex::new(config.semantics)))
            .collect();
        let bloom = CountingBloomFilter::new(config.expected_terms, config.bloom_fpr);
        let storage = vec![0; config.nodes];
        let aggregate = config.aggregate_filters;
        Ok(Self {
            config,
            cluster,
            indexes,
            bloom,
            storage,
            directory: HashMap::new(),
            registered_under: HashMap::new(),
            term_popularity: HashMap::new(),
            registration: RegistrationMode::default(),
            aggregator: FilterAggregator::new(),
            aggregate,
            scratch: MatchScratch::new(),
        })
    }

    /// Selects the registration mode. Call before registering filters;
    /// already-registered filters keep their original registration terms.
    ///
    /// # Panics
    ///
    /// Panics if [`RegistrationMode::NeededTerms`] is combined with boolean
    /// semantics, where it would lose matches.
    pub fn set_registration_mode(&mut self, mode: RegistrationMode) {
        if mode == RegistrationMode::NeededTerms {
            assert!(
                matches!(
                    self.config.semantics,
                    move_types::MatchSemantics::SimilarityThreshold(_)
                ),
                "needed-terms registration requires similarity-threshold semantics"
            );
        }
        self.registration = mode;
    }

    /// The terms a filter must be registered under in the current mode.
    fn registration_terms(&self, filter: &Filter) -> Vec<TermId> {
        match (self.registration, self.config.semantics) {
            (
                RegistrationMode::NeededTerms,
                move_types::MatchSemantics::SimilarityThreshold(th),
            ) => {
                let f_len = filter.len();
                let required = (th * f_len as f64).ceil().max(1.0) as usize;
                let k = f_len - required + 1;
                let mut terms: Vec<TermId> = filter.terms().to_vec();
                // Rarest first (fewest registered filters contain them).
                terms.sort_by_key(|t| self.term_popularity.get(t).copied().unwrap_or(0));
                terms.truncate(k);
                terms
            }
            _ => filter.terms().to_vec(),
        }
    }

    /// Installs a canonical body's posting entries on the home node of each
    /// registration term — the pre-aggregation `register` body.
    fn register_canonical(&mut self, shared: &Arc<Filter>) -> Result<()> {
        let reg_terms = self.registration_terms(shared);
        for &t in &reg_terms {
            let home = self.cluster.home_of_term(t);
            Arc::make_mut(&mut self.indexes[home.as_usize()])
                .insert_shared_for_term(Arc::clone(shared), t);
            self.storage[home.as_usize()] += 1;
            self.bloom.insert(&t.0);
            // Persist the full filter body in the home node's filter store.
            self.cluster
                .store_mut(home)
                .cf("filters")
                .put(shared.id().0.to_be_bytes().to_vec(), encode_filter(shared));
        }
        for &t in shared.terms() {
            *self.term_popularity.entry(t).or_insert(0) += 1;
        }
        // §III invariant: the filter is findable under every registration
        // term's home node, or routing that term can never deliver it.
        debug_assert!(
            reg_terms.iter().all(|&t| {
                self.indexes[self.cluster.home_of_term(t).as_usize()]
                    .has_term_posting(shared.id(), t)
            }),
            "IL registration must post the filter at each registration term's home node"
        );
        self.registered_under.insert(shared.id(), reg_terms);
        self.directory.insert(shared.id(), Arc::clone(shared));
        Ok(())
    }

    /// Drops a canonical body's posting entries — the pre-aggregation
    /// `unregister` body. Returns whether the canonical was registered.
    fn unregister_canonical(&mut self, id: FilterId) -> bool {
        let Some(filter) = self.directory.remove(&id) else {
            return false;
        };
        let reg_terms = self
            .registered_under
            .remove(&id)
            .unwrap_or_else(|| filter.terms().to_vec());
        for &t in &reg_terms {
            let home = self.cluster.home_of_term(t);
            if Arc::make_mut(&mut self.indexes[home.as_usize()]).remove_term_posting(id, t) {
                self.storage[home.as_usize()] = self.storage[home.as_usize()].saturating_sub(1);
            }
            self.bloom.remove(&t.0);
            self.cluster
                .store_mut(home)
                .cf("filters")
                .delete(id.0.to_be_bytes().to_vec());
        }
        for &t in filter.terms() {
            if let Some(c) = self.term_popularity.get_mut(&t) {
                *c = c.saturating_sub(1);
            }
        }
        true
    }

    /// Where a live canonical's serving copies currently are, grouped per
    /// node — the removal targets of [`UnregisterOp::RemoveCanonical`].
    fn unregistration_targets(&self, id: FilterId) -> Vec<(NodeId, Option<Vec<TermId>>)> {
        let mut by_home: std::collections::BTreeMap<NodeId, Vec<TermId>> =
            std::collections::BTreeMap::new();
        for &t in self
            .registered_under
            .get(&id)
            .map_or(&[][..], Vec::as_slice)
        {
            by_home
                .entry(self.cluster.home_of_term(t))
                .or_default()
                .push(t);
        }
        by_home.into_iter().map(|(n, ts)| (n, Some(ts))).collect()
    }

    /// Expands matched canonical ids to subscriber ids (identity without
    /// aggregation).
    fn expand_matched(&mut self, canonical: Vec<FilterId>) -> Vec<FilterId> {
        if !self.aggregate {
            return canonical;
        }
        let mut out = Vec::with_capacity(canonical.len());
        self.aggregator.expand_into(&canonical, &mut out);
        self.scratch.sort_dedup(&mut out);
        out
    }
}

impl Dissemination for IlScheme {
    fn name(&self) -> &'static str {
        "il"
    }

    fn register(&mut self, filter: &Filter) -> Result<()> {
        self.register_op(filter).map(|_| ())
    }

    fn unregister(&mut self, id: FilterId) -> Result<bool> {
        Ok(!matches!(
            self.unregister_op(id)?,
            UnregisterOp::NotRegistered
        ))
    }

    fn register_op(&mut self, filter: &Filter) -> Result<RegisterOps> {
        if !self.aggregate {
            // Verbatim baseline: every subscription is its own canonical.
            let targets = self.registration_targets(filter);
            let shared = Arc::new(filter.clone());
            self.register_canonical(&shared)?;
            return Ok(RegisterOps {
                displaced: None,
                op: RegisterOp::NewCanonical {
                    canonical: shared,
                    subscriber: filter.id(),
                    targets,
                },
            });
        }
        let displaced = match self.aggregator.canonical_of(filter.id()) {
            Some(c) => {
                let same = self
                    .aggregator
                    .canonical_body(c)
                    .is_some_and(|b| b.terms() == filter.terms());
                if same {
                    return Ok(RegisterOps {
                        displaced: None,
                        op: RegisterOp::NoOp,
                    });
                }
                // Same subscriber id, new predicate: displace the old
                // subscription first so the ops stream stays replayable.
                Some(self.unregister_op(filter.id())?)
            }
            None => None,
        };
        match self.aggregator.register(filter) {
            RegisterOutcome::AlreadyRegistered => Ok(RegisterOps {
                displaced,
                op: RegisterOp::NoOp,
            }),
            RegisterOutcome::Subscribed { canonical } => Ok(RegisterOps {
                displaced,
                op: RegisterOp::Subscribe {
                    canonical: canonical.as_filter_id(),
                    subscriber: filter.id(),
                },
            }),
            RegisterOutcome::NewCanonical { canonical } => {
                let targets = self.registration_targets(&canonical);
                self.register_canonical(&canonical)?;
                Ok(RegisterOps {
                    displaced,
                    op: RegisterOp::NewCanonical {
                        canonical,
                        subscriber: filter.id(),
                        targets,
                    },
                })
            }
        }
    }

    fn unregister_op(&mut self, id: FilterId) -> Result<UnregisterOp> {
        if !self.aggregate {
            let targets = self.unregistration_targets(id);
            return Ok(if self.unregister_canonical(id) {
                UnregisterOp::RemoveCanonical {
                    canonical: id,
                    subscriber: id,
                    targets,
                }
            } else {
                UnregisterOp::NotRegistered
            });
        }
        match self.aggregator.unregister(id) {
            UnregisterOutcome::NotRegistered => Ok(UnregisterOp::NotRegistered),
            UnregisterOutcome::Unsubscribed { canonical } => Ok(UnregisterOp::Unsubscribe {
                canonical: canonical.as_filter_id(),
                subscriber: id,
            }),
            UnregisterOutcome::RemovedCanonical { canonical } => {
                let cid = canonical.id();
                let targets = self.unregistration_targets(cid);
                self.unregister_canonical(cid);
                Ok(UnregisterOp::RemoveCanonical {
                    canonical: cid,
                    subscriber: id,
                    targets,
                })
            }
        }
    }

    fn fanout_table(&self) -> Arc<FanoutTable> {
        self.aggregator.fanout_snapshot()
    }

    fn canonical_filters(&self) -> u64 {
        self.directory.len() as u64
    }

    fn aggregation_bytes(&self) -> u64 {
        if self.aggregate {
            self.aggregator.estimated_bytes() as u64
        } else {
            0
        }
    }

    fn join_node(&mut self) -> Result<JoinSummary> {
        let (node, delta) = self.cluster.join_node();
        self.config.nodes = self.cluster.len();
        self.indexes
            .push(Arc::new(InvertedIndex::new(self.config.semantics)));
        self.storage.push(0);
        let moved_to: HashMap<usize, (NodeId, NodeId)> = delta
            .moved
            .iter()
            .map(|&(p, old, new)| (p, (old, new)))
            .collect();
        // Copy the serving state of every re-homed registered pair onto
        // its new owner; the old homes keep their copies until
        // `retire_join`, so both the pre- and post-join views deliver.
        let mut moved_terms: std::collections::BTreeMap<TermId, NodeId> =
            std::collections::BTreeMap::new();
        let regs: Vec<(FilterId, Vec<TermId>)> = self
            .registered_under
            .iter()
            .map(|(id, ts)| (*id, ts.clone()))
            .collect();
        for (id, reg_terms) in regs {
            let Some(shared) = self.directory.get(&id).cloned() else {
                continue;
            };
            for t in reg_terms {
                let Some(&(old, new)) = moved_to.get(&partition_of_term(t)) else {
                    continue;
                };
                Arc::make_mut(&mut self.indexes[new.as_usize()])
                    .insert_shared_for_term(Arc::clone(&shared), t);
                self.storage[new.as_usize()] += 1;
                self.cluster
                    .store_mut(new)
                    .cf("filters")
                    .put(id.0.to_be_bytes().to_vec(), encode_filter(&shared));
                moved_terms.insert(t, old);
            }
        }
        Ok(JoinSummary {
            node,
            layout_version: delta.version,
            partitions_moved: delta.moved.len() as u64,
            moved_terms: moved_terms.into_iter().collect(),
        })
    }

    fn retire_join(&mut self, summary: &JoinSummary) -> Result<()> {
        // Drop the retained old-home copies; the joiner has served these
        // terms since `join_node`, so delivery is unaffected. Bodies in
        // the old stores are left to compaction-time garbage collection.
        for &(t, old) in &summary.moved_terms {
            let ids: Vec<FilterId> = self
                .registered_under
                .iter()
                .filter(|(_, ts)| ts.contains(&t))
                .map(|(id, _)| *id)
                .collect();
            for id in ids {
                if Arc::make_mut(&mut self.indexes[old.as_usize()]).remove_term_posting(id, t) {
                    self.storage[old.as_usize()] = self.storage[old.as_usize()].saturating_sub(1);
                }
            }
        }
        // The old copies are gone: ring-memoized homes for the moved terms
        // must not outlive them (the layout commit bumps no ring epoch).
        self.cluster.invalidate_term_homes();
        Ok(())
    }

    fn publish(&mut self, at: f64, doc: &Document) -> Result<SchemeOutput> {
        let ingress = self.ingress_of(doc);
        let steps = self.route(doc);
        let (matched, tasks, _) = execute_steps(
            &steps,
            doc,
            ingress,
            &mut self.cluster,
            &self.indexes,
            &self.storage,
            &mut self.scratch,
        );
        let matched = self.expand_matched(matched);
        Ok(SchemeOutput {
            matched,
            job: Job {
                arrival: at,
                stages: vec![Stage::new(tasks)],
            },
        })
    }

    fn route(&mut self, doc: &Document) -> Vec<RouteStep> {
        // The document travels to each involved home node once; the node
        // then retrieves one posting list per routing term it owns.
        let mut by_home: std::collections::BTreeMap<NodeId, Vec<TermId>> =
            std::collections::BTreeMap::new();
        for &t in doc.terms() {
            if self.config.use_bloom && !self.bloom.contains(&t.0) {
                continue; // the membership check that prunes forwarding (§V)
            }
            let home = self.cluster.home_of_term(t);
            if !self.cluster.is_alive(home) {
                continue; // filters homed there are unreachable
            }
            by_home.entry(home).or_default().push(t);
        }
        by_home
            .into_iter()
            .map(|(home, terms)| RouteStep::direct(home, MatchTask::Terms(terms)))
            .collect()
    }

    fn node_index(&self, node: NodeId) -> &InvertedIndex {
        &self.indexes[node.as_usize()]
    }

    fn shared_node_index(&self, node: NodeId) -> Arc<InvertedIndex> {
        Arc::clone(&self.indexes[node.as_usize()])
    }

    fn routing_view(&self, epoch: u64) -> RoutingView {
        let alive = (0..self.cluster.len())
            .map(|n| self.cluster.is_alive(NodeId(n as u32)))
            .collect();
        let terms = self
            .term_popularity
            .keys()
            .map(|t| t.as_usize() + 1)
            .max()
            .unwrap_or(0);
        RoutingView::il(
            epoch,
            alive,
            self.cluster.freeze_term_homes(terms),
            self.bloom.clone(),
            self.config.use_bloom,
        )
        .with_layout_version(self.cluster.layout().version())
    }

    fn registration_targets(&self, filter: &Filter) -> Vec<(NodeId, Option<Vec<TermId>>)> {
        let mut by_home: std::collections::BTreeMap<NodeId, Vec<TermId>> =
            std::collections::BTreeMap::new();
        for t in self.registration_terms(filter) {
            by_home
                .entry(self.cluster.home_of_term(t))
                .or_default()
                .push(t);
        }
        by_home.into_iter().map(|(n, ts)| (n, Some(ts))).collect()
    }

    fn storage_per_node(&self) -> Vec<u64> {
        self.storage.clone()
    }

    fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    fn registered_filters(&self) -> u64 {
        if self.aggregate {
            self.aggregator.subscriber_count() as u64
        } else {
            self.directory.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use move_index::brute_force;
    use move_types::{MatchSemantics, TermId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filter(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    fn doc(id: u64, terms: &[u32]) -> Document {
        Document::from_distinct_terms(id, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn delivery_is_complete_random_workload() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let filters: Vec<Filter> = (0..300)
            .map(|id| {
                let len = rng.gen_range(1..=3);
                let terms: Vec<u32> = (0..len).map(|_| rng.gen_range(0..200u32)).collect();
                filter(id, &terms)
            })
            .collect();
        for f in &filters {
            il.register(f).unwrap();
        }
        for did in 0..50u64 {
            let terms: Vec<u32> = (0..rng.gen_range(1..30usize))
                .map(|_| rng.gen_range(0..250u32))
                .collect();
            let mut dedup = terms.clone();
            dedup.sort_unstable();
            dedup.dedup();
            let d = doc(did, &dedup);
            let got = il.publish(0.0, &d).unwrap();
            let want = brute_force(&filters, &d, MatchSemantics::Boolean);
            assert_eq!(got.matched, want, "doc {did}");
        }
    }

    #[test]
    fn storage_counts_pairs() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[1, 2, 3])).unwrap();
        il.register(&filter(2, &[1])).unwrap();
        assert_eq!(il.storage_per_node().iter().sum::<u64>(), 4);
        assert_eq!(il.registered_filters(), 2);
    }

    #[test]
    fn unregister_stops_delivery() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[7])).unwrap();
        assert!(il.unregister(FilterId(1)).unwrap());
        assert!(!il.unregister(FilterId(1)).unwrap());
        let got = il.publish(0.0, &doc(0, &[7])).unwrap();
        assert!(got.matched.is_empty());
        assert_eq!(il.storage_per_node().iter().sum::<u64>(), 0);
    }

    #[test]
    fn bloom_prunes_unregistered_terms() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[1])).unwrap();
        // A document of entirely unknown terms should produce (almost) no
        // tasks thanks to the Bloom check.
        let got = il.publish(0.0, &doc(0, &[100, 101, 102, 103])).unwrap();
        assert!(got.job.stages[0].tasks.len() <= 1, "bloom should prune");
        assert!(got.matched.is_empty());
    }

    #[test]
    fn ledgers_are_charged() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[5])).unwrap();
        il.publish(0.0, &doc(0, &[5])).unwrap();
        let busy: f64 = il
            .cluster()
            .ledgers()
            .all()
            .iter()
            .map(|l| l.busy_seconds)
            .sum();
        assert!(busy > 0.0);
    }

    #[test]
    fn dead_home_node_drops_its_filters() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.register(&filter(1, &[5])).unwrap();
        let home = il.cluster().home_of_term(TermId(5));
        il.cluster_mut().membership_mut().crash(home);
        let got = il.publish(0.0, &doc(0, &[5])).unwrap();
        assert!(got.matched.is_empty());
    }

    #[test]
    fn needed_terms_mode_stays_complete_under_thresholds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for th in [0.5, 0.67, 1.0] {
            let mut cfg = SystemConfig::small_test();
            cfg.semantics = MatchSemantics::similarity_threshold(th);
            let mut il = IlScheme::new(cfg).unwrap();
            il.set_registration_mode(RegistrationMode::NeededTerms);
            let mut rng = StdRng::seed_from_u64(th.to_bits());
            let filters: Vec<Filter> = (0..300)
                .map(|id| {
                    let len = rng.gen_range(1..=4);
                    Filter::new(id, (0..len).map(|_| TermId(rng.gen_range(0..80u32))))
                })
                .collect();
            for f in &filters {
                il.register(f).unwrap();
            }
            for did in 0..40u64 {
                let mut terms: Vec<u32> = (0..rng.gen_range(1..15usize))
                    .map(|_| rng.gen_range(0..90u32))
                    .collect();
                terms.sort_unstable();
                terms.dedup();
                let d = doc(did, &terms);
                let got = il.publish(0.0, &d).unwrap().matched;
                let want = brute_force(&filters, &d, MatchSemantics::similarity_threshold(th));
                assert_eq!(got, want, "threshold {th}, doc {did}");
            }
        }
    }

    #[test]
    fn needed_terms_mode_shrinks_storage() {
        let mut cfg = SystemConfig::small_test();
        cfg.semantics = MatchSemantics::similarity_threshold(1.0); // conjunctive
        let mut all = IlScheme::new(cfg.clone()).unwrap();
        let mut needed = IlScheme::new(cfg).unwrap();
        needed.set_registration_mode(RegistrationMode::NeededTerms);
        for id in 0..200u64 {
            let f = filter(
                id,
                &[
                    (id % 17) as u32,
                    (id % 31) as u32 + 20,
                    (id % 7) as u32 + 60,
                ],
            );
            all.register(&f).unwrap();
            needed.register(&f).unwrap();
        }
        let all_pairs: u64 = all.storage_per_node().iter().sum();
        let needed_pairs: u64 = needed.storage_per_node().iter().sum();
        // Conjunctive ⇒ a single registration per filter.
        assert_eq!(needed_pairs, 200);
        assert!(
            all_pairs >= 2 * needed_pairs,
            "{all_pairs} vs {needed_pairs}"
        );
        // Unregistration cleans up the reduced registrations too.
        assert!(needed.unregister(FilterId(0)).unwrap());
        assert_eq!(needed.storage_per_node().iter().sum::<u64>(), 199);
    }

    #[test]
    #[should_panic(expected = "similarity-threshold")]
    fn needed_terms_mode_rejects_boolean_semantics() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        il.set_registration_mode(RegistrationMode::NeededTerms);
    }

    #[test]
    fn join_keeps_delivery_complete_through_window_and_retirement() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let filters: Vec<Filter> = (0..300)
            .map(|id| {
                let len = rng.gen_range(1..=3);
                let terms: Vec<u32> = (0..len).map(|_| rng.gen_range(0..200u32)).collect();
                filter(id, &terms)
            })
            .collect();
        for f in &filters {
            il.register(f).unwrap();
        }
        let pairs_before: u64 = il.storage_per_node().iter().sum();
        let summary = il.join_node().unwrap();
        assert!(summary.partitions_moved >= 1);
        assert!(!summary.moved_terms.is_empty());
        for &(t, old) in &summary.moved_terms {
            assert_eq!(il.cluster().home_of_term(t), summary.node);
            assert_ne!(old, summary.node);
        }
        // Handover window open: old + new copies coexist, delivery complete.
        assert!(il.storage_per_node().iter().sum::<u64>() > pairs_before);
        let mut check = |il: &mut IlScheme, base: u64| {
            for did in 0..40u64 {
                let mut terms: Vec<u32> = (0..8).map(|_| rng.gen_range(0..250u32)).collect();
                terms.sort_unstable();
                terms.dedup();
                let d = doc(base + did, &terms);
                let got = il.publish(0.0, &d).unwrap().matched;
                let want = brute_force(&filters, &d, MatchSemantics::Boolean);
                assert_eq!(got, want, "doc {did}");
            }
        };
        check(&mut il, 0);
        // Retirement drops exactly the retained old copies.
        il.retire_join(&summary).unwrap();
        assert_eq!(il.storage_per_node().iter().sum::<u64>(), pairs_before);
        check(&mut il, 1000);
    }

    #[test]
    fn join_with_zero_registered_filters_moves_partitions_but_no_terms() {
        // Growing an empty cluster: the layout still rebalances partitions
        // onto the joiner, but with no registered filters there is nothing
        // to hand over, and retirement is a clean no-op on storage.
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        assert_eq!(il.storage_per_node().iter().sum::<u64>(), 0);
        let summary = il.join_node().unwrap();
        assert!(summary.partitions_moved >= 1);
        assert!(summary.moved_terms.is_empty());
        assert_eq!(il.storage_per_node().iter().sum::<u64>(), 0);
        il.retire_join(&summary).unwrap();
        assert_eq!(il.storage_per_node().iter().sum::<u64>(), 0);
        // The grown cluster still registers and matches normally.
        il.register(&filter(0, &[7])).unwrap();
        let got = il.publish(0.0, &doc(1, &[7])).unwrap().matched;
        assert_eq!(got, vec![FilterId(0)]);
    }

    #[test]
    fn a_retired_join_drops_ring_homes_memoized_in_the_window() {
        // Regression: `retire_join` commits a layout change without any
        // ring-membership change, so ring term-home entries memoized during
        // the handover window survive the commit unless the retirement
        // explicitly invalidates them.
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        for id in 0..200u64 {
            il.register(&filter(id, &[(id % 120) as u32])).unwrap();
        }
        let summary = il.join_node().unwrap();
        assert!(!summary.moved_terms.is_empty());
        // Warm the ring memo under the post-join epoch, mid-window — the
        // exact entries the retirement must not let outlive the old copies.
        for &(t, _) in &summary.moved_terms {
            let _ = il.cluster().ring().home_of_term(t);
        }
        assert!(il.cluster().ring().memoized_term_homes() > 0);
        il.retire_join(&summary).unwrap();
        assert_eq!(
            il.cluster().ring().memoized_term_homes(),
            0,
            "retire_join must drop ring homes memoized during the window"
        );
        // The moved terms keep serving from the joiner after retirement.
        for &(t, _) in &summary.moved_terms {
            assert_eq!(il.cluster().home_of_term(t), summary.node);
        }
    }

    #[test]
    fn filter_bodies_persisted_in_store() {
        let mut il = IlScheme::new(SystemConfig::small_test()).unwrap();
        let f = filter(9, &[4, 6]);
        il.register(&f).unwrap();
        let home = il.cluster().home_of_term(TermId(4));
        let bytes = il
            .cluster_mut()
            .store_mut(home)
            .cf("filters")
            .get(&9u64.to_be_bytes())
            .expect("stored");
        assert_eq!(crate::decode_filter(&bytes).unwrap(), f);
    }
}
